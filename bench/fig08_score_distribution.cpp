// Fig. 8 — the distribution of winner scores against the whole population,
// for CIFAR-10 (a) and HPNews (b). The paper shows FMore's winners
// concentrated in the top score buckets while RandFL/FixFL winners mirror
// the population ("Total") distribution.
//
// Scores for every node come from the FMore score board of each round;
// RandFL/FixFL winner sets are sampled on the same board so the comparison
// isolates the selection rule.

#include <algorithm>

#include "bench_util.hpp"
#include "fmore/stats/histogram.hpp"

namespace {

using namespace fmore;

void run_dataset(core::DatasetKind dataset) {
    core::ExperimentSpec spec = core::named_scenario("paper/fig08");
    spec.training.dataset = dataset;
    if (dataset == core::DatasetKind::hpnews) {
        // Match the per-dataset hyperparameters of the accuracy figures.
        const core::ExperimentSpec lstm = core::default_experiment(dataset);
        spec.training.learning_rate = lstm.training.learning_rate;
        spec.training.local_epochs = lstm.training.local_epochs;
    }
    const std::size_t num_nodes = spec.population.num_nodes;
    const std::size_t winners = spec.auction.winners;
    const std::size_t trials = bench::trial_count(2);

    stats::Rng pick_rng(1234);
    std::vector<double> total_scores;
    std::vector<double> fmore_scores;
    std::vector<double> rand_scores;
    std::vector<double> fix_scores;

    for (std::size_t t = 0; t < trials; ++t) {
        core::ExperimentTrial trial(spec, t);
        const fl::RunResult run = trial.run("fmore");
        // Fixed set per trial for the FixFL column.
        const std::vector<std::size_t> fixed =
            pick_rng.sample_without_replacement(num_nodes, winners);
        for (const auto& round : run.rounds) {
            const auto& by_node = round.selection.scores_by_node;
            total_scores.insert(total_scores.end(), by_node.begin(), by_node.end());
            for (const auto& sel : round.selection.selected) {
                fmore_scores.push_back(sel.score);
            }
            for (const std::size_t node :
                 pick_rng.sample_without_replacement(num_nodes, winners)) {
                rand_scores.push_back(by_node[node]);
            }
            for (const std::size_t node : fixed) {
                fix_scores.push_back(by_node[node]);
            }
        }
    }

    const auto [mn, mx] = std::minmax_element(total_scores.begin(), total_scores.end());
    constexpr std::size_t bins = 8;
    stats::Histogram h_total(*mn, *mx + 1e-9, bins);
    stats::Histogram h_fmore(*mn, *mx + 1e-9, bins);
    stats::Histogram h_rand(*mn, *mx + 1e-9, bins);
    stats::Histogram h_fix(*mn, *mx + 1e-9, bins);
    h_total.add_all(total_scores);
    h_fmore.add_all(fmore_scores);
    h_rand.add_all(rand_scores);
    h_fix.add_all(fix_scores);

    std::cout << "\n--- " << core::to_string(dataset)
              << ": winner-score distribution (proportion % per score bucket) ---\n";
    core::TablePrinter table(std::cout,
                             {"score_mid", "Total%", "FMore%", "RandFL%", "FixFL%"});
    for (std::size_t b = 0; b < bins; ++b) {
        table.row({h_total.bin_center(b), 100.0 * h_total.proportion(b),
                   100.0 * h_fmore.proportion(b), 100.0 * h_rand.proportion(b),
                   100.0 * h_fix.proportion(b)},
                  2);
    }

    // Headline statistic: fraction of FMore winners inside the top quartile
    // of population scores.
    std::vector<double> sorted = total_scores;
    std::sort(sorted.begin(), sorted.end());
    const double q75 = sorted[static_cast<std::size_t>(0.75 * (sorted.size() - 1))];
    auto top_share = [&](const std::vector<double>& xs) {
        std::size_t top = 0;
        for (const double x : xs) {
            if (x >= q75) ++top;
        }
        return static_cast<double>(top) / static_cast<double>(xs.size());
    };
    std::cout << "share of winners in the population's top score quartile: FMore "
              << core::percent(top_share(fmore_scores)) << ", RandFL "
              << core::percent(top_share(rand_scores)) << ", FixFL "
              << core::percent(top_share(fix_scores)) << '\n';
}

} // namespace

int main() {
    std::cout << "Fig. 8: the distribution of score (winners vs population)\n";
    run_dataset(fmore::core::DatasetKind::cifar10);
    run_dataset(fmore::core::DatasetKind::hpnews);
    fmore::bench::print_paper_reference(
        std::cout, "Fig. 8",
        {"FMore winners sit almost entirely in the top score buckets,",
         "RandFL/FixFL winner histograms track the population (Total) curve."});
    return 0;
}
