// Fig. 5 — accuracy and loss for the CNN on Fashion-MNIST (synthetic
// stand-in), FMore vs RandFL vs FixFL.
#include "fig_accuracy_common.hpp"

int main() {
    using namespace fmore::bench;
    FigAccuracySpec spec;
    spec.figure = "Fig. 5";
    spec.scenario = "paper/fig05";
    spec.model_name = "CNN";
    spec.paper_reference = {
        "FMore : r4 ~0.70, r8 ~0.78, r12 ~0.82, r20 ~0.86",
        "RandFL: r4 ~0.62, r8 ~0.72, r12 ~0.77, r20 ~0.81",
        "FixFL : r4 ~0.55, r8 ~0.66, r12 ~0.71, r20 ~0.76",
        "claim : FMore reaches 84% accuracy in ~42% fewer rounds than RandFL",
    };
    spec.speedup_target = 0.78;
    return run_fig_accuracy(spec);
}
