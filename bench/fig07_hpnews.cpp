// Fig. 7 — accuracy and loss for the LSTM on HPNews (synthetic Markov-chain
// stand-in), FMore vs RandFL vs FixFL. Paper: at round 20 FMore 60.4%,
// FixFL 40.6%.
#include "fig_accuracy_common.hpp"

int main() {
    using namespace fmore::bench;
    FigAccuracySpec spec;
    spec.figure = "Fig. 7";
    spec.scenario = "paper/fig07";
    spec.model_name = "LSTM";
    spec.paper_reference = {
        "FMore : r4 ~0.30, r8 ~0.45, r12 ~0.52, r20 ~0.604",
        "RandFL: r4 ~0.25, r8 ~0.36, r12 ~0.43, r20 ~0.50",
        "FixFL : r4 ~0.22, r8 ~0.31, r12 ~0.36, r20 ~0.406",
        "claim : FMore reaches 46% accuracy in ~68% fewer rounds than RandFL",
    };
    spec.speedup_target = 0.42;
    return run_fig_accuracy(spec);
}
