// Fig. 13 — the testbed experiment's wall-clock behaviour for CIFAR-10:
// cumulative training time per round and time-to-accuracy, FMore vs RandFL
// under the cluster time model (round = slowest winner's download +
// compute + upload). Paper: 20 rounds take 1119.3 s under FMore (-38.4%);
// reaching 50% takes RandFL ~17 rounds (1552.7 s) vs FMore 8 (427.7 s).

#include "bench_util.hpp"

int main() {
    using namespace fmore;
    const core::ExperimentSpec spec = core::named_scenario("paper/fig13");
    const std::size_t trials = bench::trial_count(2);

    std::cout << "Fig. 13: realistic deployment training time (CIFAR-10, "
              << spec.population.num_nodes << " nodes, K=" << spec.auction.winners
              << ")\n\n";

    const auto fmore_runs = bench::run_spec(spec, "fmore", trials);
    const auto rand_runs = bench::run_spec(spec, "randfl", trials);
    const auto fmore = core::average_runs(fmore_runs);
    const auto rand = core::average_runs(rand_runs);

    std::cout << "cumulative training time by round (seconds):\n";
    core::TablePrinter table(std::cout, {"round", "FMore_s", "RandFL_s", "FMore_acc",
                                         "RandFL_acc"});
    for (std::size_t r = 0; r < fmore.rounds(); ++r) {
        table.row({static_cast<double>(r + 1), fmore.cumulative_seconds[r],
                   rand.cumulative_seconds[r], fmore.accuracy[r], rand.accuracy[r]},
                  2);
    }

    std::cout << "\ntime to reach accuracy (seconds):\n";
    core::TablePrinter t2(std::cout, {"accuracy", "FMore_s", "RandFL_s"});
    for (const double target : {0.35, 0.40, 0.45, 0.50, 0.55, 0.60}) {
        t2.row({std::string(core::percent(target, 0)),
                core::fixed(core::mean_seconds_to_accuracy(fmore_runs, target), 1),
                core::fixed(core::mean_seconds_to_accuracy(rand_runs, target), 1)});
    }

    bench::print_paper_reference(
        std::cout, "Fig. 13",
        {"20 rounds: 1119.3 s (FMore) vs ~1817 s (RandFL) -> 38.4% less time",
         "to 50% accuracy: FMore 8 rounds (427.7 s) vs RandFL ~17 rounds (1552.7 s)"});

    const double reduction =
        1.0 - fmore.cumulative_seconds.back() / rand.cumulative_seconds.back();
    std::cout << "\nmeasured total-time reduction over " << fmore.rounds()
              << " rounds: " << core::percent(reduction) << '\n';
    return 0;
}
