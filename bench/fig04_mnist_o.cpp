// Fig. 4 — accuracy and loss for the CNN on MNIST-O (synthetic stand-in),
// FMore vs RandFL vs FixFL, N=100, K=20, 20 rounds.
#include "fig_accuracy_common.hpp"

int main() {
    using namespace fmore::bench;
    FigAccuracySpec spec;
    spec.figure = "Fig. 4";
    spec.scenario = "paper/fig04";
    spec.model_name = "CNN";
    spec.paper_reference = {
        "FMore : r4 ~0.85, r8 ~0.93, r12 ~0.95, r20 ~0.97",
        "RandFL: r4 ~0.75, r8 ~0.88, r12 ~0.92, r20 ~0.95",
        "FixFL : r4 ~0.72, r8 ~0.85, r12 ~0.89, r20 ~0.92",
        "claim : FMore reaches 95% accuracy in ~50% fewer rounds than RandFL",
    };
    spec.speedup_target = 0.90;
    return run_fig_accuracy(spec);
}
