#pragma once

// Shared driver for Figs. 4-7: accuracy & loss vs round for FMore, RandFL
// and FixFL on one dataset. Each fig binary supplies its dataset and the
// paper's reference points.

#include "bench_util.hpp"

namespace fmore::bench {

struct FigAccuracySpec {
    const char* figure;                 ///< e.g. "Fig. 4"
    core::DatasetKind dataset;
    const char* model_name;             ///< "CNN" / "LSTM"
    std::vector<std::string> paper_reference;
    double speedup_target;              ///< accuracy the paper quotes a speedup at
};

inline int run_fig_accuracy(const FigAccuracySpec& spec) {
    const core::SimulationConfig config = core::default_simulation(spec.dataset);
    const std::size_t trials = trial_count();

    std::cout << spec.figure << ": accuracy and loss for " << spec.model_name << " with "
              << core::to_string(spec.dataset) << " (N=" << config.num_nodes
              << ", K=" << config.winners << ", non-IID, " << trials
              << " trial(s) averaged)\n\n";

    const auto fmore = core::average_runs(run_sim(config, core::Strategy::fmore, trials));
    const auto rand = core::average_runs(run_sim(config, core::Strategy::randfl, trials));
    const auto fix = core::average_runs(run_sim(config, core::Strategy::fixfl, trials));

    print_accuracy_loss(std::cout, {{"FMore", fmore}, {"RandFL", rand}, {"FixFL", fix}});
    print_paper_reference(std::cout, spec.figure, spec.paper_reference);

    std::cout << "\nDerived comparisons (measured):\n";
    print_speedup(std::cout, "FMore", fmore, "RandFL", rand, spec.speedup_target);
    std::cout << "final accuracy: FMore " << core::percent(fmore.accuracy.back())
              << ", RandFL " << core::percent(rand.accuracy.back()) << ", FixFL "
              << core::percent(fix.accuracy.back()) << '\n';
    const double gain_rand =
        (fmore.accuracy.back() - rand.accuracy.back()) / rand.accuracy.back();
    const double gain_fix =
        (fmore.accuracy.back() - fix.accuracy.back()) / fix.accuracy.back();
    std::cout << "relative accuracy gain at final round: vs RandFL "
              << core::percent(gain_rand) << ", vs FixFL " << core::percent(gain_fix)
              << '\n';
    return 0;
}

} // namespace fmore::bench
