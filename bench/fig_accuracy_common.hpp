#pragma once

// Shared driver for Figs. 4-7: accuracy & loss vs round for FMore, RandFL
// and FixFL on one dataset. Each fig binary names its scenario and supplies
// the paper's reference points.

#include "bench_util.hpp"

namespace fmore::bench {

struct FigAccuracySpec {
    const char* figure;                 ///< e.g. "Fig. 4"
    const char* scenario;               ///< e.g. "paper/fig04"
    const char* model_name;             ///< "CNN" / "LSTM"
    std::vector<std::string> paper_reference;
    double speedup_target;              ///< accuracy the paper quotes a speedup at
};

inline int run_fig_accuracy(const FigAccuracySpec& fig) {
    const core::ExperimentSpec spec = core::named_scenario(fig.scenario);
    const std::size_t trials = trial_count();

    std::cout << fig.figure << ": accuracy and loss for " << fig.model_name << " with "
              << core::to_string(spec.training.dataset)
              << " (N=" << spec.population.num_nodes << ", K=" << spec.auction.winners
              << ", non-IID, " << trials << " trial(s) averaged)\n\n";

    const auto fmore = core::averaged_experiment(spec, "fmore", trials);
    const auto rand = core::averaged_experiment(spec, "randfl", trials);
    const auto fix = core::averaged_experiment(spec, "fixfl", trials);

    print_accuracy_loss(std::cout, {{"FMore", fmore}, {"RandFL", rand}, {"FixFL", fix}});
    print_paper_reference(std::cout, fig.figure, fig.paper_reference);

    std::cout << "\nDerived comparisons (measured):\n";
    print_speedup(std::cout, "FMore", fmore, "RandFL", rand, fig.speedup_target);
    std::cout << "final accuracy: FMore " << core::percent(fmore.accuracy.back())
              << ", RandFL " << core::percent(rand.accuracy.back()) << ", FixFL "
              << core::percent(fix.accuracy.back()) << '\n';
    const double gain_rand =
        (fmore.accuracy.back() - rand.accuracy.back()) / rand.accuracy.back();
    const double gain_fix =
        (fmore.accuracy.back() - fix.accuracy.back()) / fix.accuracy.back();
    std::cout << "relative accuracy gain at final round: vs RandFL "
              << core::percent(gain_rand) << ", vs FixFL " << core::percent(gain_fix)
              << '\n';
    return 0;
}

} // namespace fmore::bench
