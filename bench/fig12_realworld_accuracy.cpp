// Fig. 12 — the testbed experiment's accuracy and loss for CIFAR-10:
// 31 edge nodes + 1 aggregator, three-dimensional resources priced by
// S = 0.4 q_cpu + 0.3 q_bw + 0.3 q_data - p, FMore vs RandFL.
// Paper: 59.9% accuracy for FMore after round 20 (+44.9% over RandFL),
// with visible accuracy jitter in RandFL.

#include "bench_util.hpp"

int main() {
    using namespace fmore;
    const core::ExperimentSpec spec = core::named_scenario("paper/fig12");
    const std::size_t trials = bench::trial_count(2);

    std::cout << "Fig. 12: realistic deployment accuracy/loss (CIFAR-10, "
              << spec.population.num_nodes << " nodes, K=" << spec.auction.winners
              << ", " << trials << " trial(s) averaged)\n\n";

    const auto fmore = core::averaged_experiment(spec, "fmore", trials);
    const auto rand = core::averaged_experiment(spec, "randfl", trials);

    bench::print_accuracy_loss(std::cout, {{"FMore", fmore}, {"RandFL", rand}});
    bench::print_paper_reference(
        std::cout, "Fig. 12",
        {"FMore : r5 ~0.35, r10 ~0.48, r15 ~0.55, r20 ~0.599",
         "RandFL: r5 ~0.25, r10 ~0.33, r15 ~0.38, r20 ~0.41 (with jitter)",
         "claim : accuracy improved by 44.9% over RandFL at round 20"});

    std::cout << "\nDerived comparisons (measured):\n";
    const double gain =
        (fmore.accuracy.back() - rand.accuracy.back()) / rand.accuracy.back();
    std::cout << "final accuracy: FMore " << core::percent(fmore.accuracy.back())
              << ", RandFL " << core::percent(rand.accuracy.back())
              << "  (relative gain " << core::percent(gain) << ")\n";
    return 0;
}
