// Fig. 9 — the impact of the population size N.
//  (a) rounds needed to reach accuracy targets, N = 50 vs N = 100
//      (more nodes -> more data diversity and better winners -> fewer
//      rounds; the paper reports 28% fewer rounds to 84%).
//  (b) equilibrium payment p and winner score versus N in [50, 200]
//      (competition drives payments down and scores up).

#include <chrono>

#include "bench_util.hpp"
#include "fmore/auction/game.hpp"
#include "fmore/core/sweep.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/stats/normalizer.hpp"

namespace {

using namespace fmore;

void part_a() {
    std::cout << "(a) rounds to reach accuracy, N=50 vs N=100 (MNIST-F, K=20)\n\n";
    const std::size_t trials = bench::trial_count(2);
    const std::vector<double> targets{0.70, 0.75, 0.78, 0.82, 0.84};

    // The paper grows the MARKET, not a fixed data pie cut finer: hold the
    // per-node data distribution constant (90 samples/node) while N rises,
    // so a larger N gives the aggregator genuinely better top-K picks. The
    // two knobs co-vary, which is exactly what a zipped sweep expresses.
    core::SweepAxis nodes{"population.num_nodes", {}};
    core::SweepAxis samples{"training.train_samples", {}};
    for (const std::size_t n : {50u, 100u}) {
        nodes.values.push_back(std::to_string(n));
        samples.values.push_back(std::to_string(90 * n));
    }
    const std::vector<core::SweepPoint> points =
        core::zip_sweep(core::named_scenario("paper/fig09"), {nodes, samples});
    const std::vector<core::SweepSummary> summaries =
        core::summarize_points(points, {"fmore"}, trials);
    const core::AveragedSeries& n50 = summaries[0].series[0].series;
    const core::AveragedSeries& n100 = summaries[1].series[0].series;

    core::TablePrinter table(std::cout, {"accuracy", "rounds_N50", "rounds_N100"});
    for (const double target : targets) {
        const auto r50 = bench::rounds_to(n50, target);
        const auto r100 = bench::rounds_to(n100, target);
        table.row({std::string(core::percent(target, 0)),
                   r50 ? std::to_string(*r50) : ">24", r100 ? std::to_string(*r100) : ">24"});
    }
    bench::print_paper_reference(std::cout, "Fig. 9(a)",
                                 {"N=100 reaches 84% in ~28% fewer rounds than N=50;",
                                  "per-round accuracy with N=100 dominates N=50."});
}

void part_b() {
    std::cout << "\n(b) equilibrium payment p and winner score vs N (pure auction, K=20)\n\n";
    const stats::UniformDistribution theta(0.5, 1.5);
    const double data_hi = 150.0;
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, data_hi);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / data_hi, 2.0});

    core::TablePrinter table(std::cout, {"N", "payment_p", "winner_score"});
    for (const std::size_t n : {50u, 80u, 110u, 140u, 170u, 200u}) {
        auction::EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = 20;
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 20;
        const auction::AuctionGame game(scoring, cost, theta, {1.0, 0.05},
                                        {data_hi, 1.0}, eq, wd);
        stats::Rng rng(99);
        double payment = 0.0;
        double score = 0.0;
        constexpr int reps = 12;
        for (int r = 0; r < reps; ++r) {
            const auction::GameResult result = game.play(rng);
            payment += result.mean_winner_payment;
            score += result.mean_winner_score;
        }
        table.row({static_cast<double>(n), payment / reps, score / reps});
    }
    bench::print_paper_reference(
        std::cout, "Fig. 9(b)",
        {"payment p falls monotonically (~4600 -> ~3650 on the paper's scale)",
         "winner score rises monotonically (~500 -> ~1300) as N grows 50 -> 200."});
}

/// Part (b) continued past the paper's N=200 onto the SoA population
/// store: the same market (Section V.A scoring/cost, K=20) run as live
/// auction rounds over a synthetic shard-free population, through the
/// fused BidFrame collect+rank path. The paper's monotone trends — payment
/// down, winner score up with competition — extend three more orders of
/// magnitude, and the ms/round column shows why the fused path is what
/// makes an N=100k grid point a bench row instead of a coffee break.
void part_b_scale() {
    std::cout << "\n(b, extended) equilibrium payment p and winner score, "
                 "N to 100k on the SoA store (K=20, fused top-K)\n\n";
    const stats::UniformDistribution theta(0.5, 1.5);
    const double data_hi = 150.0;
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, data_hi);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / data_hi, 2.0});

    core::TablePrinter table(std::cout, {"N", "payment_p", "winner_score", "ms_per_round"});
    for (const std::size_t n : {1000u, 10000u, 100000u}) {
        auction::EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = 20;
        const auction::EquilibriumStrategy strategy =
            auction::EquilibriumSolver(scoring, cost, theta, {1.0, 0.05}, {data_hi, 1.0},
                                       eq)
                .solve();

        mec::PopulationSpec pop_spec;
        mec::SyntheticDataSpec data;
        data.data_hi = data_hi;
        stats::Rng pop_rng(41 + n);
        mec::MecPopulation population(
            mec::PopulationStore(n, data, theta, pop_spec, pop_rng));

        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 20;
        wd.full_ranking = false;
        mec::AuctionSelector selector(population, scoring, strategy, wd,
                                      mec::data_category_extractor(),
                                      /*data_dimension=*/0);

        stats::Rng rng(99);
        double payment = 0.0;
        double score = 0.0;
        double seconds = 0.0;
        std::size_t winners = 0;
        constexpr std::size_t rounds = 6;
        for (std::size_t round = 1; round <= rounds; ++round) {
            const auto start = std::chrono::steady_clock::now();
            const auction::AuctionOutcome& outcome =
                selector.run_auction_round(round, 20, rng);
            if (round > 1) {
                seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
            }
            for (const auction::Winner& w : outcome.winners) {
                payment += w.payment;
                score += w.score;
                ++winners;
            }
        }
        table.row({static_cast<double>(n), payment / static_cast<double>(winners),
                   score / static_cast<double>(winners),
                   seconds * 1e3 / static_cast<double>(rounds - 1)});
    }
    std::cout << "\n(winners bid their equilibrium quality clipped to live resources;\n"
                 " the paper's N-competition trends continue at market scale)\n";
}

} // namespace

int main() {
    std::cout << "Fig. 9: the impacts of parameter N\n\n";
    part_a();
    part_b();
    part_b_scale();
    return 0;
}
