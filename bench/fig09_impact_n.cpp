// Fig. 9 — the impact of the population size N.
//  (a) rounds needed to reach accuracy targets, N = 50 vs N = 100
//      (more nodes -> more data diversity and better winners -> fewer
//      rounds; the paper reports 28% fewer rounds to 84%).
//  (b) equilibrium payment p and winner score versus N in [50, 200]
//      (competition drives payments down and scores up).

#include "bench_util.hpp"
#include "fmore/auction/game.hpp"
#include "fmore/core/sweep.hpp"
#include "fmore/stats/normalizer.hpp"

namespace {

using namespace fmore;

void part_a() {
    std::cout << "(a) rounds to reach accuracy, N=50 vs N=100 (MNIST-F, K=20)\n\n";
    const std::size_t trials = bench::trial_count(2);
    const std::vector<double> targets{0.70, 0.75, 0.78, 0.82, 0.84};

    // The paper grows the MARKET, not a fixed data pie cut finer: hold the
    // per-node data distribution constant (90 samples/node) while N rises,
    // so a larger N gives the aggregator genuinely better top-K picks. The
    // two knobs co-vary, which is exactly what a zipped sweep expresses.
    core::SweepAxis nodes{"population.num_nodes", {}};
    core::SweepAxis samples{"training.train_samples", {}};
    for (const std::size_t n : {50u, 100u}) {
        nodes.values.push_back(std::to_string(n));
        samples.values.push_back(std::to_string(90 * n));
    }
    const std::vector<core::SweepPoint> points =
        core::zip_sweep(core::named_scenario("paper/fig09"), {nodes, samples});
    const std::vector<core::SweepSummary> summaries =
        core::summarize_points(points, {"fmore"}, trials);
    const core::AveragedSeries& n50 = summaries[0].series[0].series;
    const core::AveragedSeries& n100 = summaries[1].series[0].series;

    core::TablePrinter table(std::cout, {"accuracy", "rounds_N50", "rounds_N100"});
    for (const double target : targets) {
        const auto r50 = bench::rounds_to(n50, target);
        const auto r100 = bench::rounds_to(n100, target);
        table.row({std::string(core::percent(target, 0)),
                   r50 ? std::to_string(*r50) : ">24", r100 ? std::to_string(*r100) : ">24"});
    }
    bench::print_paper_reference(std::cout, "Fig. 9(a)",
                                 {"N=100 reaches 84% in ~28% fewer rounds than N=50;",
                                  "per-round accuracy with N=100 dominates N=50."});
}

void part_b() {
    std::cout << "\n(b) equilibrium payment p and winner score vs N (pure auction, K=20)\n\n";
    const stats::UniformDistribution theta(0.5, 1.5);
    const double data_hi = 150.0;
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, data_hi);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / data_hi, 2.0});

    core::TablePrinter table(std::cout, {"N", "payment_p", "winner_score"});
    for (const std::size_t n : {50u, 80u, 110u, 140u, 170u, 200u}) {
        auction::EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = 20;
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 20;
        const auction::AuctionGame game(scoring, cost, theta, {1.0, 0.05},
                                        {data_hi, 1.0}, eq, wd);
        stats::Rng rng(99);
        double payment = 0.0;
        double score = 0.0;
        constexpr int reps = 12;
        for (int r = 0; r < reps; ++r) {
            const auction::GameResult result = game.play(rng);
            payment += result.mean_winner_payment;
            score += result.mean_winner_score;
        }
        table.row({static_cast<double>(n), payment / reps, score / reps});
    }
    bench::print_paper_reference(
        std::cout, "Fig. 9(b)",
        {"payment p falls monotonically (~4600 -> ~3650 on the paper's scale)",
         "winner score rises monotonically (~500 -> ~1300) as N grows 50 -> 200."});
}

} // namespace

int main() {
    std::cout << "Fig. 9: the impacts of parameter N\n\n";
    part_a();
    part_b();
    return 0;
}
