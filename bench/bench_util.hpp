#pragma once

// Shared harness for the figure-reproduction benches. Every fig binary
// follows the same pattern: fetch its named scenario from the
// ScenarioRegistry (tweaking the spec where the figure sweeps a knob), run
// a few trials per selection policy on the parallel runner, print the
// measured series next to the paper's reference points, and finish with
// the derived headline quantities (rounds-to-accuracy, speedups).

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fmore/core/experiment.hpp"
#include "fmore/core/report.hpp"
#include "fmore/core/scenarios.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::bench {

/// Trials per policy; override with FMORE_BENCH_TRIALS (1 for smoke runs,
/// 5 to match the paper's protocol). One contract shared with
/// run_scenario via core::bench_trial_count.
inline std::size_t trial_count(std::size_t fallback = 3) {
    return core::bench_trial_count(fallback);
}

/// Run `trials` trials of one selection policy on the parallel trial
/// runner (thread count auto-sized; override with FMORE_TRIAL_THREADS).
/// Results are deterministic for a fixed spec.seed regardless of threads.
inline std::vector<fl::RunResult> run_spec(const core::ExperimentSpec& spec,
                                           const std::string& policy,
                                           std::size_t trials) {
    return core::run_experiment_trials(spec, policy, trials);
}

/// One labelled accuracy/loss curve (alias of the core type the table
/// printer consumes).
using core::NamedSeries;
using core::print_accuracy_loss;

/// Print the paper's reference points (approximate values read off the
/// figure) so the shape comparison is explicit.
inline void print_paper_reference(std::ostream& out, const std::string& what,
                                  const std::vector<std::string>& lines) {
    out << "\nPaper reference (" << what << ", approximate values read from figure):\n";
    for (const std::string& line : lines) out << "  " << line << '\n';
}

/// First round reaching `target` (averaged runs), or nullopt.
inline std::optional<std::size_t> rounds_to(const core::AveragedSeries& series,
                                            double target) {
    for (std::size_t r = 0; r < series.rounds(); ++r) {
        if (series.accuracy[r] >= target) return r + 1;
    }
    return std::nullopt;
}

/// "x reached 50% in 8 rounds vs y in 15 -> 46.7% fewer rounds".
inline void print_speedup(std::ostream& out, const std::string& fast_name,
                          const core::AveragedSeries& fast, const std::string& slow_name,
                          const core::AveragedSeries& slow, double target) {
    const auto rf = rounds_to(fast, target);
    const auto rs = rounds_to(slow, target);
    out << "rounds to " << core::percent(target, 0) << ": " << fast_name << " = "
        << (rf ? std::to_string(*rf) : std::string(">") + std::to_string(fast.rounds()))
        << ", " << slow_name << " = "
        << (rs ? std::to_string(*rs) : std::string(">") + std::to_string(slow.rounds()));
    if (rf && rs && *rs > 0) {
        const double saved = 1.0 - static_cast<double>(*rf) / static_cast<double>(*rs);
        out << "  (" << fast_name << " saves " << core::percent(saved) << " of rounds)";
    }
    out << '\n';
}

} // namespace fmore::bench
