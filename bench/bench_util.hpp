#pragma once

// Shared harness for the figure-reproduction benches. Every fig binary
// follows the same pattern: run the relevant experiment for a few trials
// per strategy (the paper averages five runs), print the measured series
// next to the paper's reference points, and finish with the derived
// headline quantities (rounds-to-accuracy, speedups).

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fmore/core/config.hpp"
#include "fmore/core/realworld.hpp"
#include "fmore/core/report.hpp"
#include "fmore/core/simulation.hpp"
#include "fmore/core/trials.hpp"

namespace fmore::bench {

/// Trials per strategy; override with FMORE_BENCH_TRIALS (1 for smoke runs,
/// 5 to match the paper's protocol).
inline std::size_t trial_count(std::size_t fallback = 3) {
    if (const char* env = std::getenv("FMORE_BENCH_TRIALS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

/// Run `trials` simulation trials of one strategy on the parallel trial
/// runner (thread count auto-sized; override with FMORE_TRIAL_THREADS).
/// Results are deterministic for a fixed config.seed regardless of threads.
inline std::vector<fl::RunResult> run_sim(const core::SimulationConfig& config,
                                          core::Strategy strategy, std::size_t trials) {
    return core::run_simulation_trials(config, strategy, trials);
}

/// Run `trials` testbed trials of one strategy on the parallel trial runner.
inline std::vector<fl::RunResult> run_real(const core::RealWorldConfig& config,
                                           core::Strategy strategy, std::size_t trials) {
    return core::run_realworld_trials(config, strategy, trials);
}

/// One labelled accuracy/loss curve.
struct NamedSeries {
    std::string name;
    core::AveragedSeries series;
};

/// Print round-by-round accuracy and loss for several strategies.
inline void print_accuracy_loss(std::ostream& out, const std::vector<NamedSeries>& all) {
    std::vector<std::string> headers{"round"};
    for (const NamedSeries& s : all) headers.push_back(s.name + "_acc");
    for (const NamedSeries& s : all) headers.push_back(s.name + "_loss");
    core::TablePrinter table(out, headers);
    const std::size_t rounds = all.front().series.rounds();
    for (std::size_t r = 0; r < rounds; ++r) {
        std::vector<double> row{static_cast<double>(r + 1)};
        for (const NamedSeries& s : all) row.push_back(s.series.accuracy[r]);
        for (const NamedSeries& s : all) row.push_back(s.series.loss[r]);
        table.row(row);
    }
}

/// Print the paper's reference points (approximate values read off the
/// figure) so the shape comparison is explicit.
inline void print_paper_reference(std::ostream& out, const std::string& what,
                                  const std::vector<std::string>& lines) {
    out << "\nPaper reference (" << what << ", approximate values read from figure):\n";
    for (const std::string& line : lines) out << "  " << line << '\n';
}

/// First round reaching `target` (averaged runs), or nullopt.
inline std::optional<std::size_t> rounds_to(const core::AveragedSeries& series,
                                            double target) {
    for (std::size_t r = 0; r < series.rounds(); ++r) {
        if (series.accuracy[r] >= target) return r + 1;
    }
    return std::nullopt;
}

/// "x reached 50% in 8 rounds vs y in 15 -> 46.7% fewer rounds".
inline void print_speedup(std::ostream& out, const std::string& fast_name,
                          const core::AveragedSeries& fast, const std::string& slow_name,
                          const core::AveragedSeries& slow, double target) {
    const auto rf = rounds_to(fast, target);
    const auto rs = rounds_to(slow, target);
    out << "rounds to " << core::percent(target, 0) << ": " << fast_name << " = "
        << (rf ? std::to_string(*rf) : std::string(">") + std::to_string(fast.rounds()))
        << ", " << slow_name << " = "
        << (rs ? std::to_string(*rs) : std::string(">") + std::to_string(slow.rounds()));
    if (rf && rs && *rs > 0) {
        const double saved = 1.0 - static_cast<double>(*rf) / static_cast<double>(*rs);
        out << "  (" << fast_name << " saves " << core::percent(saved) << " of rounds)";
    }
    out << '\n';
}

} // namespace fmore::bench
