// micro_kernels: the performance ledger of the compute substrate. Measures
//  (1) the ml::gemm micro-kernel against the naive triple loop (GFLOP/s),
//  (2) Conv2d / Dense / Lstm forward+backward at the paper's MNIST/HPNews
//      shapes, GEMM path vs the FMORE_NAIVE_KERNELS reference loops,
//  (3) end-to-end round time of the `paper/fig04` scenario: the pre-PR
//      baseline (naive kernels, serial round) vs the GEMM path at 1/2/4/8
//      round threads,
// and writes everything to a machine-readable BENCH_kernels.json so future
// PRs have a perf trajectory to regress against.
//
//   micro_kernels [--smoke] [--out path.json]
//
// --smoke shrinks repetitions (CI); the JSON is written either way.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fmore/core/experiment.hpp"
#include "fmore/core/scenarios.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/ml/activations.hpp"
#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/dropout.hpp"
#include "fmore/ml/gemm.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/pooling.hpp"
#include "fmore/ml/tensor.hpp"
#include "fmore/stats/rng.hpp"

#ifdef _WIN32
#include <cstdlib>
static void set_env(const char* k, const char* v) { _putenv_s(k, v); }
#else
#include <cstdlib>
static void set_env(const char* k, const char* v) { setenv(k, v, 1); }
#endif

namespace {

using namespace fmore;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Time `fn` over `reps` repetitions, best-of to shed scheduler noise.
template <typename Fn>
double best_seconds(std::size_t reps, Fn&& fn) {
    double best = 1e300;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto start = clock_type::now();
        fn();
        best = std::min(best, seconds_since(start));
    }
    return best;
}

std::vector<float> random_vec(std::size_t n, stats::Rng& rng) {
    std::vector<float> out(n);
    for (float& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return out;
}

/// Naive reference GEMM (the kernel's semantics, textbook loops).
void naive_gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
                const float* b, float* c) {
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float acc = c[i * n + j];
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

struct GemmResult {
    std::size_t m, n, k;
    double naive_gflops;
    double gemm_gflops;
};

GemmResult bench_gemm(std::size_t m, std::size_t n, std::size_t k, std::size_t reps) {
    stats::Rng rng(42);
    const std::vector<float> a = random_vec(m * k, rng);
    const std::vector<float> b = random_vec(k * n, rng);
    std::vector<float> c(m * n, 0.0F);
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n)
                         * static_cast<double>(k);
    const double t_naive =
        best_seconds(reps, [&] { naive_gemm(m, n, k, a.data(), b.data(), c.data()); });
    const double t_fast = best_seconds(reps, [&] {
        ml::gemm_acc(m, n, k, a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
                     static_cast<std::ptrdiff_t>(n), c.data(),
                     static_cast<std::ptrdiff_t>(n));
    });
    return {m, n, k, flops / t_naive / 1e9, flops / t_fast / 1e9};
}

struct LayerResult {
    std::string name;
    std::string shape;
    double fwd_naive_us, fwd_gemm_us;
    double bwd_naive_us, bwd_gemm_us;
};

/// Forward+backward timings of one layer under both kernel paths.
template <typename MakeLayer>
LayerResult bench_layer(const std::string& name, const std::string& shape,
                        MakeLayer&& make, const std::vector<std::size_t>& in_shape,
                        std::size_t reps) {
    stats::Rng rng(7);
    auto layer = make();
    layer->initialize(rng);
    ml::Tensor input(in_shape);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    LayerResult out{name, shape, 0, 0, 0, 0};
    for (const bool naive : {true, false}) {
        ml::set_naive_kernels(naive ? 1 : 0);
        ml::Tensor y = layer->forward(input, true);
        ml::Tensor gy(y.shape());
        for (std::size_t i = 0; i < gy.size(); ++i)
            gy[i] = static_cast<float>(rng.uniform(-0.1, 0.1));
        const double t_f =
            best_seconds(reps, [&] { y = layer->forward(input, true); });
        const double t_b =
            best_seconds(reps, [&] { ml::Tensor gx = layer->backward(gy); });
        if (naive) {
            out.fwd_naive_us = t_f * 1e6;
            out.bwd_naive_us = t_b * 1e6;
        } else {
            out.fwd_gemm_us = t_f * 1e6;
            out.bwd_gemm_us = t_b * 1e6;
        }
    }
    ml::set_naive_kernels(-1);
    return out;
}

struct ElementwiseResult {
    std::string shape;
    double alloc_us = 0.0;  ///< allocating forward/backward API (pre-arena)
    double arena_us = 0.0;  ///< forward_into/backward_into over reused slots
};

/// The elementwise stack of the paper's CNN blocks (ReLU -> MaxPool ->
/// Dropout), fwd+bwd, via the allocating Layer API versus the in-place
/// protocol over persistent output slots — the "scratch arena" follow-up
/// from the kernel PR. Arithmetic is identical; the delta is pure
/// allocator traffic.
ElementwiseResult bench_elementwise(std::size_t reps) {
    stats::Rng rng(11);
    ml::ReLU relu;
    ml::MaxPool2d pool;
    ml::Dropout dropout(0.25);
    stats::Rng dropout_rng(12);
    dropout.attach_rng(&dropout_rng);

    ml::Tensor input({16, 8, 12, 12});
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    ElementwiseResult out;
    out.shape = "B16 8x12x12, ReLU+pool2x2+drop.25";

    const double t_alloc = best_seconds(reps, [&] {
        const ml::Tensor a = relu.forward(input, true);
        const ml::Tensor b = pool.forward(a, true);
        const ml::Tensor c = dropout.forward(b, true);
        const ml::Tensor gc = dropout.backward(c);
        const ml::Tensor gb = pool.backward(gc);
        const ml::Tensor ga = relu.backward(gb);
    });

    ml::Tensor a, b, c, gc, gb, ga; // persistent slots: the arena
    const double t_arena = best_seconds(reps, [&] {
        relu.forward_into(input, a, true);
        pool.forward_into(a, b, true);
        dropout.forward_into(b, c, true);
        dropout.backward_into(c, gc);
        pool.backward_into(gc, gb);
        relu.backward_into(gb, ga);
    });
    out.alloc_us = t_alloc * 1e6;
    out.arena_us = t_arena * 1e6;
    return out;
}

struct RoundResult {
    double naive_serial_ms = 0.0; ///< the pre-PR configuration
    double gemm_serial_ms = 0.0;
    std::vector<std::pair<std::size_t, double>> gemm_threads_ms; ///< (threads, ms)
};

/// Mean per-round wall time of `paper/fig04` (FMore policy, 1 trial).
double time_round_ms(const core::ExperimentSpec& spec, std::size_t threads) {
    set_env("FMORE_ROUND_THREADS", std::to_string(threads).c_str());
    core::ExperimentTrial trial(spec, 0);
    const auto start = clock_type::now();
    const fl::RunResult result = trial.run("fmore");
    const double total = seconds_since(start);
    set_env("FMORE_ROUND_THREADS", "0");
    return total * 1e3 / static_cast<double>(result.rounds.size());
}

RoundResult bench_round(bool smoke) {
    core::ExperimentSpec spec = core::named_scenario("paper/fig04");
    spec.training.rounds = smoke ? 2 : 5;

    RoundResult out;
    ml::set_naive_kernels(1);
    out.naive_serial_ms = time_round_ms(spec, 1);
    ml::set_naive_kernels(0);
    out.gemm_serial_ms = time_round_ms(spec, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        out.gemm_threads_ms.emplace_back(threads, time_round_ms(spec, threads));
    }
    ml::set_naive_kernels(-1);
    return out;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: micro_kernels [--smoke] [--out path.json]\n";
            return 2;
        }
    }
    const std::size_t reps = smoke ? 3 : 20;

    std::cout << "micro_kernels: GEMM-backed ml kernels vs the naive reference"
              << (smoke ? " (smoke)" : "") << "\n\n";

    // (1) Raw GEMM across representative shapes: the tiny conv-lowered
    // matmuls the CNNs actually run, plus square sizes for the trajectory.
    std::vector<GemmResult> gemms;
    gemms.push_back(bench_gemm(8, 100, 9, reps * 50));    // MNIST conv1 per image
    gemms.push_back(bench_gemm(16, 25, 72, reps * 50));   // CIFAR conv2 per image
    gemms.push_back(bench_gemm(16, 64, 800, reps * 10));  // MNIST dense, batch 16
    gemms.push_back(bench_gemm(64, 64, 64, reps * 10));
    gemms.push_back(bench_gemm(128, 128, 128, reps));
    std::cout << "GEMM (GFLOP/s):\n";
    for (const GemmResult& g : gemms) {
        std::printf("  %4zux%-4zux%-4zu  naive %6.2f   gemm %6.2f   speedup %.2fx\n",
                    g.m, g.n, g.k, g.naive_gflops, g.gemm_gflops,
                    g.gemm_gflops / g.naive_gflops);
    }

    // (2) The layers at the shapes the paper's models use.
    std::vector<LayerResult> layers;
    layers.push_back(bench_layer(
        "conv2d", "B16 1x12x12 -> 8@3x3",
        [] { return std::make_unique<ml::Conv2d>(1, 8, 3); },
        {16, 1, 12, 12}, reps * 5));
    layers.push_back(bench_layer(
        "conv2d_deep", "B16 8x6x6 -> 16@3x3",
        [] { return std::make_unique<ml::Conv2d>(8, 16, 3); },
        {16, 8, 6, 6}, reps * 5));
    layers.push_back(bench_layer(
        "dense", "B16 800 -> 64",
        [] { return std::make_unique<ml::Dense>(800, 64); },
        {16, 800}, reps * 5));
    layers.push_back(bench_layer(
        "lstm", "B16 T16 E16 H32",
        [] { return std::make_unique<ml::Lstm>(16, 32); },
        {16, 16, 16}, reps));
    std::cout << "\nlayers (microseconds per call, naive -> gemm):\n";
    for (const LayerResult& l : layers) {
        std::printf("  %-12s %-22s fwd %8.1f -> %8.1f (%.2fx)   bwd %8.1f -> %8.1f (%.2fx)\n",
                    l.name.c_str(), l.shape.c_str(), l.fwd_naive_us, l.fwd_gemm_us,
                    l.fwd_naive_us / l.fwd_gemm_us, l.bwd_naive_us, l.bwd_gemm_us,
                    l.bwd_naive_us / l.bwd_gemm_us);
    }

    // (2b) The elementwise stack: allocating API vs the in-place arena.
    const ElementwiseResult elementwise = bench_elementwise(reps * 5);
    std::cout << "\nelementwise stack (" << elementwise.shape << "), fwd+bwd:\n";
    std::printf("  alloc-per-call %8.1f us   arena %8.1f us   (%.2fx)\n",
                elementwise.alloc_us, elementwise.arena_us,
                elementwise.alloc_us / elementwise.arena_us);

    // (3) End-to-end rounds: pre-PR baseline vs the new path at 1/2/4/8
    // round threads.
    std::cout << "\npaper/fig04 round time (ms/round, 1 trial):\n";
    const RoundResult round = bench_round(smoke);
    std::printf("  naive kernels, serial round (pre-PR baseline): %8.1f\n",
                round.naive_serial_ms);
    std::printf("  gemm kernels,  1 thread:  %8.1f  (%.2fx vs baseline)\n",
                round.gemm_serial_ms, round.naive_serial_ms / round.gemm_serial_ms);
    double best_parallel = round.gemm_serial_ms;
    for (const auto& [threads, ms] : round.gemm_threads_ms) {
        std::printf("  gemm kernels, %2zu threads: %8.1f  (%.2fx vs baseline)\n", threads,
                    ms, round.naive_serial_ms / ms);
        best_parallel = std::min(best_parallel, ms);
    }

    // Machine-readable ledger.
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::cerr << "micro_kernels: cannot write " << out_path << '\n';
        return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
    // The parallel-round axis needs hardware threads; record what this box
    // had so the threads rows are interpretable.
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"gemm\": [\n");
    for (std::size_t i = 0; i < gemms.size(); ++i) {
        const GemmResult& g = gemms[i];
        std::fprintf(f,
                     "    {\"m\": %zu, \"n\": %zu, \"k\": %zu, \"naive_gflops\": %.4g, "
                     "\"gemm_gflops\": %.4g, \"speedup\": %.4g}%s\n",
                     g.m, g.n, g.k, g.naive_gflops, g.gemm_gflops,
                     g.gemm_gflops / g.naive_gflops, i + 1 < gemms.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"layers\": [\n");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerResult& l = layers[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"shape\": \"%s\", \"fwd_naive_us\": %.4g, "
            "\"fwd_gemm_us\": %.4g, \"fwd_speedup\": %.4g, \"bwd_naive_us\": %.4g, "
            "\"bwd_gemm_us\": %.4g, \"bwd_speedup\": %.4g}%s\n",
            l.name.c_str(), l.shape.c_str(), l.fwd_naive_us, l.fwd_gemm_us,
            l.fwd_naive_us / l.fwd_gemm_us, l.bwd_naive_us, l.bwd_gemm_us,
            l.bwd_naive_us / l.bwd_gemm_us, i + 1 < layers.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"elementwise\": {\"shape\": \"%s\", \"alloc_us\": %.4g, "
                 "\"arena_us\": %.4g, \"speedup\": %.4g},\n",
                 elementwise.shape.c_str(), elementwise.alloc_us, elementwise.arena_us,
                 elementwise.alloc_us / elementwise.arena_us);
    std::fprintf(f, "  \"round\": {\n    \"scenario\": \"paper/fig04\",\n");
    std::fprintf(f, "    \"baseline_naive_serial_ms\": %.4g,\n", round.naive_serial_ms);
    std::fprintf(f, "    \"gemm_serial_ms\": %.4g,\n", round.gemm_serial_ms);
    std::fprintf(f, "    \"gemm_threads_ms\": {");
    for (std::size_t i = 0; i < round.gemm_threads_ms.size(); ++i) {
        const auto& [threads, ms] = round.gemm_threads_ms[i];
        std::fprintf(f, "\"%zu\": %.4g%s", threads, ms,
                     i + 1 < round.gemm_threads_ms.size() ? ", " : "");
    }
    const double at8 = round.gemm_threads_ms.empty()
                           ? round.gemm_serial_ms
                           : round.gemm_threads_ms.back().second;
    std::fprintf(f, "},\n    \"speedup_at_8_threads_vs_baseline\": %.4g,\n",
                 round.naive_serial_ms / at8);
    std::fprintf(f, "    \"best_speedup_vs_baseline\": %.4g\n  }\n}\n",
                 round.naive_serial_ms / best_parallel);
    std::fclose(f);
    std::cout << "\nwrote " << out_path << '\n';
    return 0;
}
