// fig_straggler — the straggler scenarios the paper's testbed figures hint
// at but its synchronous coordinator cannot reach. The heavy-straggler
// world (lognormal latency factors, sigma 1.2) makes every synchronous
// round as long as its slowest winner; the semi-sync/async modes aggregate
// at min_updates=4 of K=8 and merge late updates with staleness weight
// 1/(1+s)^alpha, so they pay the straggler tail only when it actually
// delivers something.
//  (a) simulated seconds to reach accuracy targets, sync vs semi_sync vs
//      async on the straggler/async_vs_sync world (FMore policy).
//  (b) the async round anatomy: per-round seconds, merged updates and mean
//      staleness — what early aggregation actually trades away.

#include "bench_util.hpp"
#include "fmore/core/sweep.hpp"

namespace {

using namespace fmore;

void part_a() {
    std::cout << "(a) seconds to reach accuracy, sync vs semi_sync vs async "
                 "(heavy stragglers, K=8, min_updates=4)\n\n";
    const std::size_t trials = bench::trial_count(2);
    // The grid machinery end to end: one round_mode axis, FMore per point,
    // raw runs kept for the seconds-to-accuracy statistics.
    const std::vector<core::SweepSummary> summaries = core::summarize_points(
        core::expand_sweep(
            core::named_scenario("straggler/async_vs_sync"),
            {core::SweepAxis{"timing.round_mode", {"sync", "semi_sync", "async"}}}),
        {"fmore"}, trials);
    const std::vector<fl::RunResult>& sync_runs = summaries[0].runs[0];
    const std::vector<fl::RunResult>& async_runs = summaries[2].runs[0];

    core::TablePrinter table(std::cout,
                             {"accuracy", "sync_s", "semi_sync_s", "async_s"});
    for (const double target : {0.25, 0.30, 0.35, 0.40, 0.45}) {
        std::vector<std::string> row{std::string(core::percent(target, 0))};
        for (const core::SweepSummary& summary : summaries) {
            row.push_back(core::fixed(
                core::mean_seconds_to_accuracy(summary.runs[0], target), 1));
        }
        table.row(row);
    }

    const core::AveragedSeries& sync_avg = summaries[0].series[0].series;
    const core::AveragedSeries& async_avg = summaries[2].series[0].series;
    std::cout << "\ntotal simulated seconds over " << sync_avg.rounds()
              << " rounds: sync " << core::fixed(sync_avg.cumulative_seconds.back(), 1)
              << ", async " << core::fixed(async_avg.cumulative_seconds.back(), 1)
              << '\n';
    // The headline quantity: how much faster async reaches what both modes
    // reach (simulated-time-per-accuracy-target).
    const double target = 0.35;
    const double sync_s = core::mean_seconds_to_accuracy(sync_runs, target);
    const double async_s = core::mean_seconds_to_accuracy(async_runs, target);
    if (async_s > 0.0) {
        std::cout << "time-to-" << core::percent(target, 0) << " speedup, async over sync: "
                  << core::fixed(sync_s / async_s, 2) << "x\n";
    }
}

void part_b() {
    std::cout << "\n(b) async round anatomy on straggler/heavy (1 trial): "
                 "merged updates and staleness\n\n";
    const core::ExperimentSpec spec = core::named_scenario("straggler/heavy");
    const std::vector<fl::RunResult> runs = bench::run_spec(spec, "fmore", 1);
    const fl::RunResult& run = runs.front();

    core::TablePrinter table(std::cout,
                             {"round", "seconds", "merged", "staleness", "accuracy"});
    for (const fl::RoundMetrics& m : run.rounds) {
        table.row({static_cast<double>(m.round), m.round_seconds,
                   static_cast<double>(m.aggregated_updates), m.mean_staleness,
                   m.test_accuracy},
                  2);
    }
    std::cout << "\n(dropouts and the min_updates=4 trigger keep merged < K=8; "
                 "carried updates surface as staleness > 0)\n";
}

} // namespace

int main() {
    std::cout << "Straggler scenarios: asynchronous aggregation vs the "
                 "synchronous barrier\n\n";
    part_a();
    part_b();
    return 0;
}
