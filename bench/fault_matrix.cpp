// fault_matrix: the sharded market's fault-tolerance ledger. Where
// scale_round times the happy path, this bench runs the fork-per-shard
// ProcessShardAggregator under a matrix of deterministic fault plans
// (util::FaultInjector) with the supervisor respawning evicted workers,
// and records per plan
//
//   - rounds_degraded: rounds that lost at least one shard head,
//   - evictions / respawns / retired workers and the corrupt-frame
//     detection counters (every corrupt frame must be caught by the wire
//     CRC, retried once, and never consumed),
//   - mean/max recovery latency in rounds (eviction -> first round the
//     respawned worker contributes a head again),
//   - bit_identity_after_rejoin: every round in which no shard was down
//     must match a never-faulted twin aggregator bit for bit — the
//     respawn re-sync (salt-history replay) is what makes this true.
//
// Results land in the `faults` section of BENCH_scale.json, spliced
// section-bounded via util/json_ledger.hpp: only the `faults` member is
// replaced, wherever it sits, so the co-owning benches can run in any
// order.
//
//   fault_matrix [--smoke] [--out path.json] [--check committed.json]
//
// --smoke shrinks N, the shard count and the round count (CI). --check
// gates on structure and semantics only — bit-identity flags, corrupt
// frames detected (not consumed) at positive corruption rates, respawns
// happening at positive crash rates. No timing gates: fault-recovery
// latency is dominated by deliberate stalls and deadlines, not by code.

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/metrics.hpp"
#include "fmore/mec/population_store.hpp"
#include "fmore/mec/shard_aggregator.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/stats/rng.hpp"
#include "fmore/util/fault_injector.hpp"
#include "fmore/util/json_ledger.hpp"

namespace {

using namespace fmore;
using clock_type = std::chrono::steady_clock;

constexpr std::size_t kWinners = 32;
constexpr double kDataHi = 150.0;
constexpr double kTimeoutS = 0.25;
constexpr std::size_t kMaxRespawns = 3;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// The simulator's market (Section V.A scoring/cost), solved once.
struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    explicit Market(std::size_t n) {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = kWinners;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

mec::PopulationStore make_store(std::size_t n, const Market& market,
                                std::uint64_t seed) {
    mec::PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    mec::SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return mec::PopulationStore(n, data, *market.theta, spec, rng);
}

auction::WinnerDeterminationConfig wire_config() {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = kWinners;
    wd.tie_break = auction::TieBreak::salted;
    wd.full_ranking = false;
    return wd;
}

bool outcomes_equal(const auction::AuctionOutcome& a,
                    const auction::AuctionOutcome& b) {
    if (a.winners.size() != b.winners.size()) return false;
    for (std::size_t w = 0; w < a.winners.size(); ++w) {
        if (a.winners[w].node != b.winners[w].node
            || a.winners[w].score != b.winners[w].score
            || a.winners[w].payment != b.winners[w].payment)
            return false;
    }
    if (a.ranking.size() != b.ranking.size()) return false;
    for (std::size_t r = 0; r < a.ranking.size(); ++r) {
        if (a.ranking[r].bid.node != b.ranking[r].bid.node
            || a.ranking[r].score != b.ranking[r].score)
            return false;
    }
    return true;
}

struct PlanSpec {
    const char* name;
    const char* plan;  ///< FaultInjector::from_spec grammar; "" = clean
};

struct MatrixRow {
    std::string name;
    std::string plan;
    std::size_t rounds = 0;
    std::size_t rounds_degraded = 0;
    std::size_t evictions = 0;
    std::size_t respawns = 0;
    std::size_t retired = 0;
    std::size_t corrupt_frames = 0;
    std::size_t frame_retries = 0;
    double mean_recovery_rounds = 0.0;
    std::size_t max_recovery_rounds = 0;
    bool bit_identity_after_rejoin = true;
    std::size_t clean_rounds_compared = 0;
    double round_ms_mean = 0.0;
};

MatrixRow run_plan(const PlanSpec& plan_spec, const Market& market, std::size_t n,
                   std::size_t shards, std::size_t rounds, std::uint64_t seed) {
    MatrixRow row;
    row.name = plan_spec.name;
    row.plan = plan_spec.plan;
    row.rounds = rounds;

    mec::ShardSupervisorConfig sup;
    if (plan_spec.plan[0] != '\0')
        sup.faults = util::FaultInjector::from_spec(plan_spec.plan);
    sup.max_respawns = kMaxRespawns;
    sup.respawn_backoff_s = 0.0;  // eligible again at the next round boundary

    const auction::WinnerDeterminationConfig wd = wire_config();
    mec::ProcessShardAggregator faulty(make_store(n, market, seed), *market.scoring,
                                       *market.strategy, wd,
                                       {mec::ResourceDim::data_size,
                                        mec::ResourceDim::category_proportion},
                                       shards, kTimeoutS, sup);
    mec::ProcessShardAggregator clean(make_store(n, market, seed), *market.scoring,
                                      *market.strategy, wd,
                                      {mec::ResourceDim::data_size,
                                       mec::ResourceDim::category_proportion},
                                      shards, /*shard_timeout_s=*/30.0);

    stats::Rng rng_faulty(seed ^ 0xf00dULL);
    stats::Rng rng_clean(seed ^ 0xf00dULL);
    // down_since[s]: the round shard s stopped contributing, 0 = contributing.
    std::vector<std::size_t> down_since(shards, 0);
    std::vector<std::size_t> recoveries;
    double total_s = 0.0;
    for (std::size_t round = 1; round <= rounds; ++round) {
        const auto start = clock_type::now();
        const auction::AuctionOutcome& b =
            faulty.run_round(round, kWinners, rng_faulty);
        total_s += seconds_since(start);
        const auction::AuctionOutcome& a = clean.run_round(round, kWinners, rng_clean);

        const std::vector<std::size_t>& dropped = faulty.last_dropped_shards();
        if (!dropped.empty()) ++row.rounds_degraded;
        for (std::size_t s = 0; s < shards; ++s) {
            const bool down =
                std::binary_search(dropped.begin(), dropped.end(), s);
            if (down && down_since[s] == 0) down_since[s] = round;
            if (!down && down_since[s] != 0) {
                recoveries.push_back(round - down_since[s]);
                down_since[s] = 0;
            }
        }
        if (dropped.empty()) {
            ++row.clean_rounds_compared;
            if (!outcomes_equal(a, b)) row.bit_identity_after_rejoin = false;
        }
    }
    const mec::ShardHealth& lifetime = faulty.lifetime_health();
    row.evictions = lifetime.evictions;
    row.respawns = lifetime.respawns;
    row.retired = shards - faulty.live_shards();
    row.corrupt_frames = lifetime.corrupt_frames;
    row.frame_retries = lifetime.frame_retries;
    if (!recoveries.empty()) {
        std::size_t sum = 0;
        for (const std::size_t r : recoveries) {
            sum += r;
            row.max_recovery_rounds = std::max(row.max_recovery_rounds, r);
        }
        row.mean_recovery_rounds =
            static_cast<double>(sum) / static_cast<double>(recoveries.size());
    }
    row.round_ms_mean = total_s / static_cast<double>(rounds) * 1e3;
    return row;
}

// ---------------------------------------------------------------------------
// coordinator_crash: the durable-run scenario. A checkpointed trial runs to
// completion, a mid-run checkpoint is re-loaded as if the coordinator had
// been SIGKILLed there, and the resumed run's full metrics tape is diffed
// field-exact against the reference — `resume_bit_identical` is the
// headline durability invariant, `recovery_rounds` the work replayed.
// ---------------------------------------------------------------------------

struct CrashRow {
    std::size_t rounds = 0;
    std::size_t kill_round = 0;       ///< checkpoint the resume starts from
    std::size_t recovery_rounds = 0;  ///< rounds re-executed after resume
    bool resume_bit_identical = false;
    double resume_s = 0.0;  ///< wall-clock of restore + replay
};

bool tapes_equal(const std::vector<fl::RoundMetrics>& a,
                 const std::vector<fl::RoundMetrics>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const fl::RoundMetrics& x = a[i];
        const fl::RoundMetrics& y = b[i];
        if (x.round != y.round || x.test_accuracy != y.test_accuracy
            || x.test_loss != y.test_loss || x.train_loss != y.train_loss
            || x.mean_winner_payment != y.mean_winner_payment
            || x.mean_winner_score != y.mean_winner_score
            || x.round_seconds != y.round_seconds
            || x.aggregated_updates != y.aggregated_updates
            || x.dropped_shards != y.dropped_shards
            || x.selection.close_reason != y.selection.close_reason
            || x.selection.close_time_s != y.selection.close_time_s)
            return false;
        if (x.selection.selected.size() != y.selection.selected.size())
            return false;
        for (std::size_t j = 0; j < x.selection.selected.size(); ++j) {
            if (x.selection.selected[j].client != y.selection.selected[j].client
                || x.selection.selected[j].payment
                       != y.selection.selected[j].payment
                || x.selection.selected[j].score
                       != y.selection.selected[j].score)
                return false;
        }
    }
    return true;
}

CrashRow run_coordinator_crash(bool smoke) {
    namespace fs = std::filesystem;
    const fs::path scratch =
        fs::temp_directory_path()
        / ("fmore_fault_matrix_" + std::to_string(::getpid()));
    fs::create_directories(scratch);

    core::ExperimentSpec spec =
        core::default_experiment(core::DatasetKind::mnist_o);
    spec.seed = 0x2026ULL;
    spec.population.num_nodes = smoke ? 12 : 40;
    spec.population.data_lo = 10;
    spec.population.data_hi = 40;
    spec.auction.winners = smoke ? 4 : 8;
    spec.training.train_samples = smoke ? 400 : 2000;
    spec.training.test_samples = smoke ? 120 : 400;
    spec.training.rounds = smoke ? 6 : 12;
    spec.training.eval_cap = 200;
    spec.timing.checkpoint_every = 2;
    spec.timing.checkpoint_dir = (scratch / "ckpt").string();
    // Keep every cadence point so the mid-run checkpoint survives retention
    // until the resume leg re-loads it.
    spec.timing.checkpoint_keep = spec.training.rounds;

    CrashRow row;
    row.rounds = spec.training.rounds;
    // Mid-run, rounded up onto the checkpoint cadence.
    row.kill_round = spec.training.rounds / 2;
    row.kill_round += row.kill_round % spec.timing.checkpoint_every;
    row.recovery_rounds = spec.training.rounds - row.kill_round;

    core::ExperimentTrial reference_trial(spec, /*trial_index=*/0);
    const fl::RunResult reference =
        reference_trial.run_resumable("fmore", nullptr);

    const auto start = clock_type::now();
    const core::RunCheckpoint ckpt = core::load_checkpoint(
        core::checkpoint_run_dir(spec.timing.checkpoint_dir, "fmore", 0) + "/"
        + core::checkpoint_filename(row.kill_round));
    core::ExperimentTrial resumed_trial(spec, /*trial_index=*/0);
    const fl::RunResult resumed = resumed_trial.run_resumable("fmore", &ckpt);
    row.resume_s = seconds_since(start);

    row.resume_bit_identical = tapes_equal(reference.rounds, resumed.rounds);
    std::error_code ec;
    fs::remove_all(scratch, ec);
    return row;
}

// ---------------------------------------------------------------------------
// Ledger I/O: splice the `faults` section into BENCH_scale.json via the
// section-bounded helpers (util/json_ledger.hpp) — the section is replaced
// in place wherever it sits, so the order the co-owning benches run in is
// irrelevant.
// ---------------------------------------------------------------------------

std::string render_section(const std::vector<MatrixRow>& rows,
                           const CrashRow& crash, bool smoke, std::size_t n,
                           std::size_t shards, std::size_t rounds) {
    std::ostringstream out;
    char buf[768];
    std::snprintf(buf, sizeof buf,
                  "\"faults\": {\n"
                  "    \"smoke\": %s,\n"
                  "    \"n\": %zu,\n"
                  "    \"k\": %zu,\n"
                  "    \"shards\": %zu,\n"
                  "    \"rounds\": %zu,\n"
                  "    \"timeout_s\": %.4g,\n"
                  "    \"max_respawns\": %zu,\n"
                  "    \"rows\": [\n",
                  smoke ? "true" : "false", n, kWinners, shards, rounds, kTimeoutS,
                  kMaxRespawns);
    out << buf;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const MatrixRow& row = rows[i];
        std::snprintf(
            buf, sizeof buf,
            "      {\"name\": \"%s\", \"plan\": \"%s\", \"rounds\": %zu, "
            "\"rounds_degraded\": %zu, \"evictions\": %zu, \"respawns\": %zu, "
            "\"retired\": %zu, \"corrupt_frames\": %zu, \"frame_retries\": %zu, "
            "\"mean_recovery_rounds\": %.4g, \"max_recovery_rounds\": %zu, "
            "\"bit_identity_after_rejoin\": %s, \"clean_rounds_compared\": %zu, "
            "\"round_ms_mean\": %.4g}%s\n",
            row.name.c_str(), row.plan.c_str(), row.rounds, row.rounds_degraded,
            row.evictions, row.respawns, row.retired, row.corrupt_frames,
            row.frame_retries, row.mean_recovery_rounds, row.max_recovery_rounds,
            row.bit_identity_after_rejoin ? "true" : "false",
            row.clean_rounds_compared, row.round_ms_mean,
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "    ],\n";
    std::snprintf(buf, sizeof buf,
                  "    \"coordinator_crash\": {\"rounds\": %zu, "
                  "\"kill_round\": %zu, \"recovery_rounds\": %zu, "
                  "\"resume_bit_identical\": %s, \"resume_s\": %.4g}\n  }",
                  crash.rounds, crash.kill_round, crash.recovery_rounds,
                  crash.resume_bit_identical ? "true" : "false",
                  crash.resume_s);
    out << buf;
    return out.str();
}

void write_ledger(const std::string& path, const std::string& section) {
    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
    }
    const std::string merged =
        util::splice_ledger_section(std::move(text), "faults", section);

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "fault_matrix: cannot write " << path << '\n';
        std::exit(1);
    }
    out << merged;
    std::cout << "\nwrote the faults section of " << path << '\n';
}

/// Gate fresh rows and the committed ledger on semantics (no timing):
/// every fresh row keeps bit-identity on its clean rounds; plans with
/// positive corruption rates detected (and only detected) their corrupt
/// frames; plans with positive crash rates evicted AND respawned workers;
/// the committed section exists with every fresh row name present and
/// bit-identical.
bool check_against(const std::string& text, const std::vector<MatrixRow>& rows,
                   const CrashRow& crash) {
    bool ok = true;
    const std::string section = util::extract_ledger_section(text, "faults");
    if (section.empty()) {
        std::cerr << "fault_matrix --check: committed ledger has no \"faults\""
                     " section\n";
        return false;
    }
    if (!crash.resume_bit_identical) {
        std::cerr << "fault_matrix --check: coordinator_crash resume diverged"
                     " from the uninterrupted reference run\n";
        ok = false;
    }
    const std::size_t crash_at = section.find("\"coordinator_crash\"");
    if (crash_at == std::string::npos) {
        std::cerr << "fault_matrix --check: committed faults section has no"
                     " coordinator_crash scenario\n";
        ok = false;
    } else if (section.find("\"resume_bit_identical\": true", crash_at)
               == std::string::npos) {
        std::cerr << "fault_matrix --check: committed coordinator_crash lacks"
                     " resume_bit_identical = true\n";
        ok = false;
    }
    for (const MatrixRow& row : rows) {
        if (!row.bit_identity_after_rejoin || row.clean_rounds_compared == 0) {
            std::cerr << "fault_matrix --check: plan '" << row.name
                      << "' diverged from the never-faulted twin on a round with"
                         " all shards live (or never had one)\n";
            ok = false;
        }
        const bool wants_corruption =
            row.plan.find("corrupt=") != std::string::npos
            || row.plan.find("truncate=") != std::string::npos;
        if (wants_corruption && (row.corrupt_frames == 0 || row.frame_retries == 0)) {
            std::cerr << "fault_matrix --check: plan '" << row.name
                      << "' injected corrupt frames but none were detected/"
                         "retried\n";
            ok = false;
        }
        const bool wants_crashes = row.plan.find("crash=") != std::string::npos;
        if (wants_crashes && (row.evictions == 0 || row.respawns == 0)) {
            std::cerr << "fault_matrix --check: plan '" << row.name
                      << "' injected crashes but the supervisor recorded no"
                         " eviction+respawn cycle\n";
            ok = false;
        }
        const std::string tag = "\"name\": \"" + row.name + "\"";
        const std::size_t at = section.find(tag);
        if (at == std::string::npos) {
            std::cerr << "fault_matrix --check: committed faults section is"
                         " missing plan '" << row.name << "'\n";
            ok = false;
            continue;
        }
        const std::size_t end = section.find('}', at);
        if (section.substr(at, end - at)
                .find("\"bit_identity_after_rejoin\": true")
            == std::string::npos) {
            std::cerr << "fault_matrix --check: committed plan '" << row.name
                      << "' lacks bit_identity_after_rejoin = true\n";
            ok = false;
        }
    }
    if (ok)
        std::cout << "--check: faults section present, bit-identity and"
                     " detection gates hold\n";
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::cerr << "usage: fault_matrix [--smoke] [--out path.json]"
                         " [--check committed.json]\n";
            return 1;
        }
    }
    if (out_path.empty()) out_path = smoke ? "BENCH_scale_smoke.json" : "BENCH_scale.json";

    const std::size_t n = smoke ? 6'000 : 20'000;
    const std::size_t shards = smoke ? 4 : 8;
    const std::size_t rounds = smoke ? 6 : 14;
    const std::uint64_t seed = 0x17ULL;

    // The matrix: one clean baseline, crash churn at two rates, wire
    // corruption, and a flaky-latency mix. Rates are per shard-round.
    const std::vector<PlanSpec> plans = {
        {"clean", ""},
        {"crash_5", "seed=17,crash=0.05"},
        {"crash_15", "seed=17,crash=0.15"},
        {"corrupt", "seed=19,corrupt=0.1,truncate=0.05"},
        {"flaky", "seed=23,stall=0.08,stall_s=1,delay=0.15,delay_s=0.005"},
    };

    std::cout << "fault_matrix: N=" << n << " K=" << kWinners << " shards="
              << shards << " rounds=" << rounds << " timeout=" << kTimeoutS
              << "s max_respawns=" << kMaxRespawns << (smoke ? " (smoke)" : "")
              << "\n\n";
    const Market market(n);
    std::vector<MatrixRow> rows;
    rows.reserve(plans.size());
    for (const PlanSpec& plan : plans) {
        MatrixRow row = run_plan(plan, market, n, shards, rounds, seed);
        std::printf(
            "  %-9s degraded %2zu/%zu  evict %2zu  respawn %2zu  retired %zu  "
            "corrupt %2zu  retries %2zu  recover %.2f rds  identical %s\n",
            row.name.c_str(), row.rounds_degraded, row.rounds, row.evictions,
            row.respawns, row.retired, row.corrupt_frames, row.frame_retries,
            row.mean_recovery_rounds, row.bit_identity_after_rejoin ? "yes" : "NO");
        rows.push_back(std::move(row));
    }

    const CrashRow crash = run_coordinator_crash(smoke);
    std::printf(
        "  %-9s killed at round %zu/%zu  replayed %zu rds in %.2fs  "
        "identical %s\n",
        "coordinator_crash", crash.kill_round, crash.rounds,
        crash.recovery_rounds, crash.resume_s,
        crash.resume_bit_identical ? "yes" : "NO");

    bool ok = true;
    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "fault_matrix --check: cannot read " << check_path << '\n';
            ok = false;
        } else {
            std::stringstream buffer;
            buffer << in.rdbuf();
            ok = check_against(buffer.str(), rows, crash);
        }
    }
    if (check_path.empty() || out_path != check_path)
        write_ledger(out_path, render_section(rows, crash, smoke, n, shards, rounds));
    else
        std::cout << "(--check against the --out target: ledger left as"
                     " committed)\n";
    return ok ? 0 : 1;
}
