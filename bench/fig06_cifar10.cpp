// Fig. 6 — accuracy and loss for the deeper CNN on CIFAR-10 (synthetic
// stand-in), FMore vs RandFL vs FixFL. The paper's accuracy axis runs
// 0.1-0.6; gaps between strategies are widest on this workload.
#include "fig_accuracy_common.hpp"

int main() {
    using namespace fmore::bench;
    FigAccuracySpec spec;
    spec.figure = "Fig. 6";
    spec.scenario = "paper/fig06";
    spec.model_name = "CNN";
    spec.paper_reference = {
        "FMore : r4 ~0.30, r8 ~0.42, r12 ~0.50, r20 ~0.58",
        "RandFL: r4 ~0.22, r8 ~0.33, r12 ~0.40, r20 ~0.47",
        "FixFL : r4 ~0.20, r8 ~0.30, r12 ~0.35, r20 ~0.41",
        "claim : FMore reaches 50% accuracy in ~45% fewer rounds than RandFL",
    };
    spec.speedup_target = 0.42;
    return run_fig_accuracy(spec);
}
