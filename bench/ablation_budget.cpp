// Budget-constrained aggregator (the paper's stated future work, wired as
// an extension): sweep the per-round payment budget B and measure how many
// winners the prefix rule admits, what the aggregator spends, and what the
// tighter recruitment does to federated accuracy.

#include "bench_util.hpp"

int main() {
    using namespace fmore;
    std::cout << "Budget-constrained FMore (extension; paper Section VII future work)\n\n";

    const core::ExperimentSpec base = core::named_scenario("ablation/budget");
    const std::size_t trials = bench::trial_count(2);

    // Reference spend of the unconstrained auction.
    double reference_spend = 0.0;
    {
        core::ExperimentTrial trial(base, 0);
        const fl::RunResult run = trial.run("fmore");
        for (const auto& sel : run.rounds.front().selection.selected) {
            reference_spend += sel.payment;
        }
    }
    std::cout << "unconstrained per-round spend (K=" << base.auction.winners
              << "): " << core::fixed(reference_spend, 2) << "\n\n";

    core::TablePrinter table(std::cout, {"budget", "mean_winners", "mean_spend",
                                         "final_acc"});
    for (const double fraction : {0.0, 1.0, 0.75, 0.5, 0.25}) {
        core::ExperimentSpec spec = base;
        spec.auction.budget = fraction == 0.0 ? 0.0 : reference_spend * fraction;
        if (spec.auction.budget > 0.0) spec.auction.mechanism = "budget_feasible";
        double winners = 0.0;
        double spend = 0.0;
        double acc = 0.0;
        std::size_t rounds_seen = 0;
        for (std::size_t t = 0; t < trials; ++t) {
            core::ExperimentTrial trial(spec, t);
            const fl::RunResult run = trial.run("fmore");
            acc += run.final_accuracy() / static_cast<double>(trials);
            for (const auto& round : run.rounds) {
                winners += static_cast<double>(round.selection.selected.size());
                for (const auto& sel : round.selection.selected) spend += sel.payment;
                ++rounds_seen;
            }
        }
        winners /= static_cast<double>(rounds_seen);
        spend /= static_cast<double>(rounds_seen);
        table.row({fraction == 0.0 ? std::string("none")
                                   : core::fixed(spec.auction.budget, 2),
                   core::fixed(winners, 1), core::fixed(spend, 2), core::percent(acc)});
    }

    std::cout << "\ntakeaway: the prefix rule degrades gracefully — halving the budget\n"
                 "roughly halves the admitted winners and slows convergence without\n"
                 "breaking incentive compatibility (no bid can gain by underbidding\n"
                 "its way past the cutoff; see tests/auction/extensions_test.cpp).\n";
    return 0;
}
