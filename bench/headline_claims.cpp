// Headline claims of the abstract / Section V, regenerated end-to-end:
//   * simulations: "reduce training rounds by 51.3% on average and improve
//     the model accuracy by 28% for the tested CNN and LSTM models"
//   * testbed: "improvement of model accuracy by 44.9% and the reduction of
//     training time by 38.4%"
// We report the measured counterparts on the synthetic stand-in workloads;
// the comparison of interest is the SIGN and rough magnitude, not the
// absolute percentages (different datasets, scaled-down runs).

#include "bench_util.hpp"

namespace {

using namespace fmore;

struct DatasetOutcome {
    std::string name;
    double round_reduction;  // vs RandFL at a mid-curve target
    double accuracy_gain;    // relative, final round vs RandFL
};

DatasetOutcome measure(core::DatasetKind dataset, double target, std::size_t trials) {
    const core::ExperimentSpec spec = core::default_experiment(dataset);
    const auto fmore_runs = bench::run_spec(spec, "fmore", trials);
    const auto rand_runs = bench::run_spec(spec, "randfl", trials);
    const auto fmore = core::average_runs(fmore_runs);
    const auto rand = core::average_runs(rand_runs);

    const double rf = core::mean_rounds_to_accuracy(fmore_runs, target);
    const double rr = core::mean_rounds_to_accuracy(rand_runs, target);
    DatasetOutcome out;
    out.name = core::to_string(dataset);
    out.round_reduction = rr > 0.0 ? 1.0 - rf / rr : 0.0;
    out.accuracy_gain =
        (fmore.accuracy.back() - rand.accuracy.back()) / rand.accuracy.back();
    return out;
}

} // namespace

int main() {
    using namespace fmore;
    const std::size_t trials = bench::trial_count();
    std::cout << "Headline claims (abstract / Section V), measured on the synthetic "
                 "stand-ins, "
              << trials << " trial(s) per point\n\n";

    std::cout << "--- simulations (N=100, K=20, 20 rounds) ---\n";
    std::vector<DatasetOutcome> outcomes;
    outcomes.push_back(measure(core::DatasetKind::mnist_o, 0.90, trials));
    outcomes.push_back(measure(core::DatasetKind::mnist_f, 0.75, trials));
    outcomes.push_back(measure(core::DatasetKind::cifar10, 0.45, trials));
    outcomes.push_back(measure(core::DatasetKind::hpnews, 0.42, trials));

    core::TablePrinter table(std::cout,
                             {"dataset", "round_saving", "acc_gain_vs_RandFL"});
    double mean_saving = 0.0;
    for (const DatasetOutcome& o : outcomes) {
        table.row({o.name, core::percent(o.round_reduction),
                   core::percent(o.accuracy_gain)});
        mean_saving += o.round_reduction / static_cast<double>(outcomes.size());
    }
    std::cout << "\nmean round reduction across workloads: " << core::percent(mean_saving)
              << "   (paper claims 51.3% on its datasets)\n";
    std::cout << "LSTM accuracy gain: " << core::percent(outcomes.back().accuracy_gain)
              << "   (paper claims +28% for the LSTM model)\n";

    std::cout << "\n--- testbed (31 nodes + aggregator, CIFAR-10) ---\n";
    const core::ExperimentSpec rw = core::named_scenario("testbed/default");
    const auto fmore_runs = bench::run_spec(rw, "fmore", trials);
    const auto rand_runs = bench::run_spec(rw, "randfl", trials);
    const auto fmore = core::average_runs(fmore_runs);
    const auto rand = core::average_runs(rand_runs);
    const double acc_gain =
        (fmore.accuracy.back() - rand.accuracy.back()) / rand.accuracy.back();
    const double time_cut =
        1.0 - fmore.cumulative_seconds.back() / rand.cumulative_seconds.back();
    std::cout << "accuracy improvement vs RandFL: " << core::percent(acc_gain)
              << "   (paper claims +44.9%)\n";
    std::cout << "training-time reduction over 20 rounds: " << core::percent(time_cut)
              << "   (paper claims -38.4%)\n";
    return 0;
}
