// Fig. 10 — the impact of the winner-set size K.
//  (a) rounds needed to reach accuracy targets, K = 5 vs K = 25 (larger K
//      feeds the global model more data per round; the paper reports 20
//      rounds for 86% at K=5 vs 15 rounds at K=25).
//  (b) equilibrium payment p and winner score versus K in [5, 35]
//      (Theorem 3: easier wins -> higher payments; scores drop).

#include "bench_util.hpp"
#include "fmore/auction/game.hpp"
#include "fmore/core/sweep.hpp"
#include "fmore/stats/normalizer.hpp"

namespace {

using namespace fmore;

void part_a() {
    std::cout << "(a) rounds to reach accuracy, K=5 vs K=25 (MNIST-F, N=100)\n\n";
    const std::size_t trials = bench::trial_count(2);
    const std::vector<double> targets{0.70, 0.75, 0.78, 0.82, 0.84};

    // The K grid is a sweep over the registered scenario — the same
    // machinery as `run_scenario --sweep auction.winners=5,25`.
    const std::vector<core::SweepPoint> points = core::expand_sweep(
        core::named_scenario("paper/fig10"),
        {core::parse_sweep_axis("auction.winners=5,25")});
    const auto k5 = core::averaged_experiment(points[0].spec, "fmore", trials);
    const auto k25 = core::averaged_experiment(points[1].spec, "fmore", trials);

    core::TablePrinter table(std::cout, {"accuracy", "rounds_K5", "rounds_K25"});
    for (const double target : targets) {
        const auto r5 = bench::rounds_to(k5, target);
        const auto r25 = bench::rounds_to(k25, target);
        table.row({std::string(core::percent(target, 0)),
                   r5 ? std::to_string(*r5) : ">24", r25 ? std::to_string(*r25) : ">24"});
    }
    bench::print_paper_reference(std::cout, "Fig. 10(a)",
                                 {"to 86%: 20 rounds at K=5 vs 15 rounds at K=25;",
                                  "gains saturate for very large K (K=30 ~ K=35)."});
}

void part_b() {
    std::cout << "\n(b) equilibrium payment p and winner score vs K (pure auction, N=100)\n\n";
    const stats::UniformDistribution theta(0.5, 1.5);
    const double data_hi = 150.0;
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, data_hi);
    norms.emplace_back(0.0, 1.0);
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / data_hi, 2.0});

    core::TablePrinter table(std::cout, {"K", "payment_p", "winner_score"});
    for (const std::size_t k : {5u, 10u, 15u, 20u, 25u, 30u, 35u}) {
        auction::EquilibriumConfig eq;
        eq.num_bidders = 100;
        eq.num_winners = k;
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = k;
        const auction::AuctionGame game(scoring, cost, theta, {1.0, 0.05},
                                        {data_hi, 1.0}, eq, wd);
        stats::Rng rng(101);
        double payment = 0.0;
        double score = 0.0;
        constexpr int reps = 12;
        for (int r = 0; r < reps; ++r) {
            const auction::GameResult result = game.play(rng);
            payment += result.mean_winner_payment;
            score += result.mean_winner_score;
        }
        table.row({static_cast<double>(k), payment / reps, score / reps});
    }
    bench::print_paper_reference(
        std::cout, "Fig. 10(b)",
        {"payment p rises with K (~3920 -> ~4040 on the paper's scale, Thm 3)",
         "winner score falls with K (~1080 -> ~980) as weaker bids join the set."});
}

} // namespace

int main() {
    std::cout << "Fig. 10: the impacts of parameter K\n\n";
    part_a();
    part_b();
    return 0;
}
