// scale_round: the market-scale performance ledger. Auction-only rounds
// (evolve + collect + rank + select + price, no training) over synthetic
// SoA populations at N in {10k, 100k, 1M, 10M}, timing the fused BidFrame
// path against the classic per-bid reference (FMORE_BID_PATH=legacy, the
// pre-SoA round shape: AoS walk, one QualityVector per bid, a
// WinnerDetermination rebuilt per round) AND against the sharded
// marketplace (ShardedAuctionSelector, 8 owned shards, bounded-head
// merge). Winners and payments are asserted bit-identical between the
// monolithic legs every round, AND between the fused and sharded legs,
// and the fused leg's steady-state allocation count is measured with a
// global operator-new hook (the contract is ZERO per round once buffers
// are warm). At N = 10M only the fused and sharded legs run — the classic
// per-bid leg's AoS shadow walk is a multi-second-per-round detour that
// the three smaller rows already bound. Everything lands in a
// machine-readable BENCH_scale.json.
//
//   scale_round [--smoke] [--out path.json] [--check committed.json]
//
// --smoke shrinks the N grid to {10k, 100k} and the round count (CI).
// --check compares the fresh measurements against a committed ledger:
// exit 1 if required keys are missing (the N = 10M sharded row must be
// committed even when the fresh run is a smoke run), winners diverged on
// either comparison, allocations are nonzero, or the fused-vs-classic
// SPEEDUP (machine-relative, so it transfers across runners) regressed by
// more than FMORE_SCALE_TOLERANCE (default 0.20 = 20%).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/util/json_ledger.hpp"

// ---------------------------------------------------------------------------
// Global allocation hook: counts every operator-new in the process so the
// bench can prove the fused bid path's steady state allocates nothing.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
} // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace fmore;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

void set_env(const char* key, const char* value) {
    if (value == nullptr) ::unsetenv(key);
    else ::setenv(key, value, 1);
}

/// RAII env override that restores the caller's prior value (so e.g. an
/// explicit FMORE_ROUND_THREADS=4 run is measured at 4 threads for every
/// row, not just until the first internal override).
class ScopedEnv {
public:
    ScopedEnv(const char* key, const char* value) : key_(key) {
        const char* previous = std::getenv(key);
        had_previous_ = previous != nullptr;
        if (had_previous_) previous_ = previous;
        set_env(key, value);
    }
    ~ScopedEnv() { set_env(key_, had_previous_ ? previous_.c_str() : nullptr); }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* key_;
    bool had_previous_ = false;
    std::string previous_;
};

constexpr std::size_t kWinners = 32;
constexpr double kDataHi = 150.0;
constexpr std::size_t kShards = 8; ///< the scale/10m preset's shard count

/// The simulator's market (Section V.A scoring/cost) solved once per N —
/// the solve is O(grids), independent of N, so the equilibrium layer is
/// never the scale bottleneck.
struct Market {
    std::vector<stats::MinMaxNormalizer> norms;
    std::unique_ptr<auction::ScaledProductScoring> scoring;
    std::unique_ptr<auction::AdditiveCost> cost;
    std::unique_ptr<stats::UniformDistribution> theta;
    std::unique_ptr<auction::EquilibriumStrategy> strategy;

    explicit Market(std::size_t n) {
        norms.emplace_back(0.0, kDataHi);
        norms.emplace_back(0.0, 1.0);
        scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / kDataHi, 2.0});
        theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig eq;
        eq.num_bidders = n;
        eq.num_winners = kWinners;
        strategy = std::make_unique<auction::EquilibriumStrategy>(
            auction::EquilibriumSolver(*scoring, *cost, *theta, {1.0, 0.05},
                                       {kDataHi, 1.0}, eq)
                .solve());
    }
};

mec::PopulationStore make_store(std::size_t n, const Market& market,
                                std::uint64_t seed) {
    mec::PopulationSpec spec;
    spec.dynamics.resource_jitter = 0.08;
    spec.dynamics.theta_jitter = 0.02;
    mec::SyntheticDataSpec data;
    data.data_lo = 20.0;
    data.data_hi = kDataHi;
    stats::Rng rng(seed);
    return mec::PopulationStore(n, data, *market.theta, spec, rng);
}

mec::MecPopulation make_population(std::size_t n, const Market& market,
                                   std::uint64_t seed) {
    return mec::MecPopulation(make_store(n, market, seed));
}

mec::AuctionSelector make_selector(mec::MecPopulation& population, const Market& market) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = kWinners;
    wd.full_ranking = false; // the fused O(N log K) production configuration
    return mec::AuctionSelector(population, *market.scoring, *market.strategy, wd,
                                mec::data_category_extractor(), /*data_dimension=*/0);
}

struct RoundWinners {
    std::vector<auction::Winner> winners;
};

struct LegResult {
    double evolve_ms = 0.0;  ///< per round
    double bid_ms = 0.0;     ///< collect + rank + select + price, per round
    std::vector<RoundWinners> rounds;

    [[nodiscard]] double ms_per_round() const { return evolve_ms + bid_ms; }
};

/// Run `rounds` auction rounds on one leg; round 1 warms buffers and is
/// excluded from the timing.
///
/// Both legs drive their bids from the SAME store state (that is what
/// makes the per-round winner comparison exact), so the legacy leg's
/// evolve cost is measured on a shadow AoS copy walked by the retained
/// pre-SoA implementation — `EdgeNode::evolve`, four shared-stream
/// mt19937_64 draws per node — which is precisely what the pre-PR round
/// paid. The shared store drift is charged to the fused leg only; the
/// pre-PR system never ran it.
LegResult run_leg(std::size_t n, const Market& market, bool legacy, std::size_t rounds,
                  std::uint64_t seed) {
    mec::MecPopulation population = make_population(n, market, seed);
    std::optional<mec::AuctionSelector> selector;
    {
        const ScopedEnv path("FMORE_BID_PATH", legacy ? "legacy" : nullptr);
        selector.emplace(make_selector(population, market));
    }

    const mec::PopulationStore& store = population.store();
    std::vector<mec::EdgeNode> shadow;
    stats::Rng shadow_rng(seed ^ 0xa05ULL);
    if (legacy) {
        shadow.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            shadow.emplace_back(i, store.theta(i), store.resources(i), store.caps(i));
        }
    }

    stats::Rng rng(seed ^ 0xf00dULL);
    LegResult out;
    out.rounds.reserve(rounds);
    // Best-of across the timed rounds (round 1 excluded as warm-up), the
    // same scheduler-noise policy as micro_kernels.
    double evolve_best = 1e300;
    double bid_best = 1e300;
    for (std::size_t round = 1; round <= rounds; ++round) {
        if (round > 1) {
            if (legacy) {
                // The pre-PR evolve: serial AoS walk, one shared RNG.
                const auto start = clock_type::now();
                for (mec::EdgeNode& node : shadow) {
                    node.evolve(store.dynamics(), store.theta_lo(), store.theta_hi(),
                                shadow_rng);
                }
                evolve_best = std::min(evolve_best, seconds_since(start));
                population.evolve(rng); // shared state advance, uncharged
            } else {
                const auto start = clock_type::now();
                population.evolve(rng);
                evolve_best = std::min(evolve_best, seconds_since(start));
            }
        }
        const auto start = clock_type::now();
        const auction::AuctionOutcome& outcome =
            selector->run_auction_round(/*round=*/1, kWinners, rng);
        if (round > 1) bid_best = std::min(bid_best, seconds_since(start));
        out.rounds.push_back(RoundWinners{outcome.winners});
    }
    out.evolve_ms = evolve_best * 1e3;
    out.bid_ms = bid_best * 1e3;
    return out;
}

/// The sharded marketplace over the SAME market and seed: the store split
/// into kShards contiguous ranges, per-shard fused collect+score+top-K,
/// bounded-head merge. `run_auction_round` consumes the generator exactly
/// like the monolithic round (one drift salt, one global tie permutation),
/// so its winners must match the fused leg's bit for bit — the per-row
/// `sharded_winners_bit_identical` assertion.
LegResult run_sharded_leg(std::size_t n, const Market& market, std::size_t rounds,
                          std::uint64_t seed) {
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = kWinners;
    wd.full_ranking = false;
    mec::ShardedAuctionSelector selector(
        make_store(n, market, seed).split_even(kShards), *market.scoring,
        *market.strategy, wd,
        {mec::ResourceDim::data_size, mec::ResourceDim::category_proportion},
        /*data_dimension=*/0);

    stats::Rng rng(seed ^ 0xf00dULL);
    LegResult out;
    out.rounds.reserve(rounds);
    double round_best = 1e300;
    for (std::size_t round = 1; round <= rounds; ++round) {
        // Drift happens inside the sharded round (round > 1 draws the
        // salt), so the timed span is the whole evolve+bid pipeline —
        // comparable to the fused leg's evolve_ms + bid_ms.
        const auto start = clock_type::now();
        const auction::AuctionOutcome& outcome =
            selector.run_auction_round(round, kWinners, rng);
        if (round > 1) round_best = std::min(round_best, seconds_since(start));
        out.rounds.push_back(RoundWinners{outcome.winners});
    }
    out.bid_ms = round_best * 1e3;
    return out;
}

/// Steady-state allocations per fused round, measured on the serial path
/// (FMORE_ROUND_THREADS=1): rounds 3.. touch only warm buffers, so the
/// contract is a delta of zero.
std::uint64_t measure_steady_allocs(std::size_t n, const Market& market,
                                    std::uint64_t seed) {
    const ScopedEnv threads("FMORE_ROUND_THREADS", "1");
    mec::MecPopulation population = make_population(n, market, seed);
    mec::AuctionSelector selector = make_selector(population, market);
    stats::Rng rng(seed ^ 0xf00dULL);
    (void)selector.run_auction_round(1, kWinners, rng); // warm-up
    (void)selector.run_auction_round(2, kWinners, rng); // reach steady state
    const std::uint64_t before = g_alloc_count.load();
    constexpr std::size_t kSteadyRounds = 3;
    for (std::size_t round = 3; round < 3 + kSteadyRounds; ++round) {
        (void)selector.run_auction_round(round, kWinners, rng);
    }
    const std::uint64_t delta = g_alloc_count.load() - before;
    return delta / kSteadyRounds;
}

bool winners_match(const LegResult& a, const LegResult& b) {
    if (a.rounds.size() != b.rounds.size()) return false;
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        const auto& wa = a.rounds[r].winners;
        const auto& wb = b.rounds[r].winners;
        if (wa.size() != wb.size()) return false;
        for (std::size_t i = 0; i < wa.size(); ++i) {
            if (wa[i].node != wb[i].node || wa[i].payment != wb[i].payment
                || wa[i].score != wb[i].score) {
                return false;
            }
        }
    }
    return true;
}

struct ScaleRow {
    std::size_t n = 0;
    bool has_legacy = true;  ///< false at N=10M: fused + sharded legs only
    double legacy_ms = 0.0;
    double legacy_evolve_ms = 0.0;
    double legacy_bid_ms = 0.0;
    double soa_ms = 0.0;
    double soa_evolve_ms = 0.0;
    double soa_bid_ms = 0.0;
    double sharded_ms = 0.0;
    std::uint64_t steady_allocs = 0;
    bool identical = false;          ///< legacy vs fused (true when no legacy leg)
    bool sharded_identical = false;  ///< fused vs sharded
};

ScaleRow bench_scale(std::size_t n, std::size_t rounds, bool with_legacy) {
    const Market market(n);
    const std::uint64_t seed = 0x5ca1e000ULL + n;
    ScaleRow row;
    row.n = n;
    row.has_legacy = with_legacy;
    row.identical = true;
    const LegResult fused = run_leg(n, market, /*legacy=*/false, rounds, seed);
    row.soa_ms = fused.ms_per_round();
    row.soa_evolve_ms = fused.evolve_ms;
    row.soa_bid_ms = fused.bid_ms;
    if (with_legacy) {
        const LegResult legacy = run_leg(n, market, /*legacy=*/true, rounds, seed);
        row.legacy_ms = legacy.ms_per_round();
        row.legacy_evolve_ms = legacy.evolve_ms;
        row.legacy_bid_ms = legacy.bid_ms;
        row.identical = winners_match(legacy, fused);
    }
    const LegResult sharded = run_sharded_leg(n, market, rounds, seed);
    row.sharded_ms = sharded.ms_per_round();
    row.sharded_identical = winners_match(fused, sharded);
    row.steady_allocs = measure_steady_allocs(n, market, seed);
    return row;
}

// ---------------------------------------------------------------------------
// Ledger I/O + the --check regression gate
// ---------------------------------------------------------------------------

/// Write the ledger by SPLICING: this bench owns the grid scalars and the
/// `scale` rows; the `faults` / `streaming` / `streaming_sharded` sections
/// the other benches splice into the same file survive a rewrite verbatim
/// (historically this writer truncated the whole file, so a scale rerun
/// silently dropped every other bench's section).
void write_ledger(const std::string& path, const std::vector<ScaleRow>& rows,
                  bool smoke, std::size_t rounds) {
    std::ostringstream section;
    char buf[512];
    section << "\"scale\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow& row = rows[i];
        std::snprintf(buf, sizeof buf, "    {\"n\": %zu, ", row.n);
        section << buf;
        if (row.has_legacy) {
            std::snprintf(buf, sizeof buf,
                          "\"legacy_ms_per_round\": %.4g, "
                          "\"legacy_evolve_ms\": %.4g, \"legacy_bid_ms\": %.4g, ",
                          row.legacy_ms, row.legacy_evolve_ms, row.legacy_bid_ms);
            section << buf;
        }
        std::snprintf(buf, sizeof buf,
                      "\"soa_ms_per_round\": %.4g, "
                      "\"soa_evolve_ms\": %.4g, \"soa_bid_ms\": %.4g, ",
                      row.soa_ms, row.soa_evolve_ms, row.soa_bid_ms);
        section << buf;
        if (row.has_legacy) {
            std::snprintf(buf, sizeof buf,
                          "\"speedup\": %.4g, \"winners_bit_identical\": %s, ",
                          row.legacy_ms / row.soa_ms,
                          row.identical ? "true" : "false");
            section << buf;
        }
        std::snprintf(buf, sizeof buf,
                      "\"sharded_ms_per_round\": %.4g, "
                      "\"sharded_winners_bit_identical\": %s, "
                      "\"steady_state_allocs_per_round\": %llu}%s\n",
                      row.sharded_ms, row.sharded_identical ? "true" : "false",
                      static_cast<unsigned long long>(row.steady_allocs),
                      i + 1 < rows.size() ? "," : "");
        section << buf;
    }
    section << "  ]";

    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
    }
    const auto scalar = [&text](const char* key, const std::string& value) {
        text = util::splice_ledger_section(std::move(text), key,
                                           "\"" + std::string(key) + "\": " + value);
    };
    scalar("smoke", smoke ? "true" : "false");
    scalar("hardware_threads", std::to_string(std::thread::hardware_concurrency()));
    scalar("k", std::to_string(kWinners));
    scalar("shards", std::to_string(kShards));
    scalar("rounds_timed", std::to_string(rounds - 1));
    text = util::splice_ledger_section(std::move(text), "scale", section.str());

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "scale_round: cannot write " << path << '\n';
        std::exit(1);
    }
    out << text;
    std::cout << "\nwrote the scale section of " << path << '\n';
}

/// Pull `"key": <number>` out of a JSON object snippet.
bool extract_number(const std::string& text, const std::string& key, double* out) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return false;
    *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

/// Compare fresh rows against the committed ledger's TEXT (slurped before
/// the fresh ledger is written, so `--out` and `--check` may name the same
/// file). Returns false (and explains) when keys are missing or the fused
/// path regressed.
bool check_against(const std::string& ledger, const std::vector<ScaleRow>& rows) {
    // Scope every row lookup to the `scale` section: the streaming rows in
    // the shared ledger carry the same `"n": ...` tags.
    const std::string text = util::extract_ledger_section(ledger, "scale");
    if (text.empty()) {
        std::cerr << "scale_round --check: committed ledger has no \"scale\" key\n";
        return false;
    }

    double tolerance = 0.20;
    if (const char* env = std::getenv("FMORE_SCALE_TOLERANCE")) {
        const double v = std::atof(env);
        if (v > 0.0) tolerance = v;
    }

    bool ok = true;
    // The 10M sharded row is the scale north-star: it must stay committed
    // even when the fresh run is a two-row smoke grid.
    {
        const std::string tag = "\"n\": 10000000,";
        const std::size_t at = text.find(tag);
        double committed_sharded = 0.0;
        if (at == std::string::npos) {
            std::cerr << "scale_round --check: committed ledger is missing the "
                         "N=10000000 sharded row\n";
            ok = false;
        } else {
            const std::size_t end = text.find('}', at);
            const std::string object = text.substr(at, end - at);
            if (!extract_number(object, "sharded_ms_per_round", &committed_sharded)
                || !(committed_sharded > 0.0)
                || object.find("\"sharded_winners_bit_identical\": true")
                       == std::string::npos) {
                std::cerr << "scale_round --check: committed N=10000000 row lacks a "
                             "positive sharded_ms_per_round with "
                             "sharded_winners_bit_identical=true\n";
                ok = false;
            }
        }
    }
    for (const ScaleRow& row : rows) {
        if (!row.identical) {
            std::cerr << "scale_round --check: winners diverged at N=" << row.n << '\n';
            ok = false;
        }
        if (!row.sharded_identical) {
            std::cerr << "scale_round --check: sharded winners diverged at N=" << row.n
                      << '\n';
            ok = false;
        }
        if (row.steady_allocs != 0) {
            std::cerr << "scale_round --check: " << row.steady_allocs
                      << " steady-state allocations per round at N=" << row.n
                      << " (contract: 0)\n";
            ok = false;
        }
        // Locate this N's committed object. The trailing comma keeps
        // "n": 10000 from matching the "n": 100000 row.
        const std::string tag = "\"n\": " + std::to_string(row.n) + ",";
        const std::size_t at = text.find(tag);
        if (at == std::string::npos) {
            std::cerr << "scale_round --check: committed ledger is missing N=" << row.n
                      << '\n';
            ok = false;
            continue;
        }
        const std::size_t end = text.find('}', at);
        const std::string object = text.substr(at, end - at);
        double committed_sharded = 0.0;
        if (!extract_number(object, "sharded_ms_per_round", &committed_sharded)
            || !(committed_sharded > 0.0)) {
            std::cerr << "scale_round --check: committed N=" << row.n
                      << " row is missing a positive sharded_ms_per_round key\n";
            ok = false;
        }
        if (!row.has_legacy) continue;
        double committed_speedup = 0.0;
        if (!extract_number(object, "speedup", &committed_speedup)
            || !(committed_speedup > 0.0)) {
            std::cerr << "scale_round --check: committed N=" << row.n
                      << " row is missing a positive speedup key\n";
            ok = false;
            continue;
        }
        // Gate on the fused-vs-classic SPEEDUP, not absolute ms: both legs
        // run on the same machine, so the ratio transfers across runner
        // generations while still catching fused-path regressions.
        const double measured_speedup = row.legacy_ms / row.soa_ms;
        if (measured_speedup < committed_speedup * (1.0 - tolerance)) {
            std::cerr << "scale_round --check: fused speedup at N=" << row.n
                      << " regressed: " << measured_speedup << "x vs committed "
                      << committed_speedup << "x (tolerance "
                      << static_cast<int>(tolerance * 100) << "%)\n";
            ok = false;
        }
    }
    if (ok) std::cout << "--check: ledger keys present, no regression beyond tolerance\n";
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::cerr << "usage: scale_round [--smoke] [--out path.json]"
                         " [--check committed.json]\n";
            return 2;
        }
    }
    // Only a FULL run may claim the committed ledger name by default: the
    // documented smoke command (`--smoke --check BENCH_scale.json`) must
    // not replace the full-grid baseline with a two-row smoke ledger.
    if (out_path.empty()) out_path = smoke ? "BENCH_scale_smoke.json" : "BENCH_scale.json";

    // Slurp the committed ledger up front: the fresh write below may target
    // the same path.
    std::string committed_text;
    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "scale_round --check: cannot read " << check_path << '\n';
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        committed_text = buffer.str();
    }

    std::vector<std::size_t> grid{10'000, 100'000};
    if (!smoke) {
        grid.push_back(1'000'000);
        grid.push_back(10'000'000);
    }
    const std::size_t rounds = smoke ? 4 : 8;

    std::cout << "scale_round: auction-only rounds, classic per-bid path vs fused SoA"
                 " vs sharded (S=" << kShards << ")" << (smoke ? " (smoke)" : "") << "\n"
              << "K=" << kWinners << ", " << rounds - 1
              << " timed rounds per leg (round 1 warms buffers);"
                 " N=10M runs the fused and sharded legs only\n\n";
    std::printf("%10s  %14s  %14s  %15s  %8s  %8s  %s\n", "N", "legacy ms/round",
                "fused ms/round", "sharded ms/round", "speedup", "allocs", "winners");

    std::vector<ScaleRow> rows;
    for (const std::size_t n : grid) {
        const bool with_legacy = n < 10'000'000;
        const ScaleRow row = bench_scale(n, rounds, with_legacy);
        char legacy_col[32];
        char speedup_col[32];
        if (row.has_legacy) {
            std::snprintf(legacy_col, sizeof legacy_col, "%.2f", row.legacy_ms);
            std::snprintf(speedup_col, sizeof speedup_col, "%.2fx",
                          row.legacy_ms / row.soa_ms);
        } else {
            std::snprintf(legacy_col, sizeof legacy_col, "-");
            std::snprintf(speedup_col, sizeof speedup_col, "-");
        }
        std::printf("%10zu  %14s  %14.2f  %15.2f  %8s  %8llu  %s\n", row.n, legacy_col,
                    row.soa_ms, row.sharded_ms, speedup_col,
                    static_cast<unsigned long long>(row.steady_allocs),
                    row.identical && row.sharded_identical ? "bit-identical"
                                                           : "DIVERGED");
        rows.push_back(row);
    }

    write_ledger(out_path, rows, smoke, rounds);

    for (const ScaleRow& row : rows) {
        if (!row.identical) {
            std::cerr << "scale_round: winners diverged at N=" << row.n << '\n';
            return 1;
        }
        if (!row.sharded_identical) {
            std::cerr << "scale_round: sharded winners diverged at N=" << row.n << '\n';
            return 1;
        }
    }
    if (!check_path.empty() && !check_against(committed_text, rows)) return 1;
    return 0;
}
