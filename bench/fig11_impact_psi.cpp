// Fig. 11 — the impact of the psi-FMore acceptance probability.
//  (a) rounds to reach accuracy, psi = 0.3 vs psi = 0.9, in the small-data
//      regime where diversity matters (the paper: psi = 0.3 only reaches
//      85%, which psi = 0.9 hits by round 11).
//  (b) how many selected nodes fall in the top-10/20/30 of the score board
//      as psi sweeps 0.3..0.9 (small psi scatters selection toward RandFL).

#include "bench_util.hpp"
#include "fmore/core/sweep.hpp"

namespace {

using namespace fmore;

// Small-data regime: shards are thin so repeated top-score selection
// overfits to few nodes and diversity has real value (the registered
// "paper/fig11" preset).
core::ExperimentSpec small_data_spec() {
    return core::named_scenario("paper/fig11");
}

void part_a() {
    std::cout << "(a) training speed: psi=0.3 vs psi=0.9 (small-data MNIST-F)\n\n";
    const std::size_t trials = bench::trial_count(2);
    // One axis, one policy per point — the generic sweep machinery replaces
    // the old hand-rolled psi loop.
    const std::vector<core::SweepSummary> summaries = core::summarize_points(
        core::expand_sweep(small_data_spec(),
                           {core::SweepAxis{"auction.psi", {"0.3", "0.9"}}}),
        {"psi_fmore"}, trials);
    const core::AveragedSeries& lo = summaries[0].series[0].series;
    const core::AveragedSeries& hi = summaries[1].series[0].series;
    core::TablePrinter table(std::cout, {"accuracy", "rounds_psi0.3", "rounds_psi0.9"});
    for (const double target : {0.60, 0.66, 0.70, 0.74, 0.78}) {
        const auto rl = bench::rounds_to(lo, target);
        const auto rh = bench::rounds_to(hi, target);
        table.row({std::string(core::percent(target, 0)),
                   rl ? std::to_string(*rl) : ">30", rh ? std::to_string(*rh) : ">30"});
    }
    std::cout << "final accuracy: psi=0.3 " << core::percent(lo.accuracy.back())
              << ", psi=0.9 " << core::percent(hi.accuracy.back()) << '\n';
    bench::print_paper_reference(
        std::cout, "Fig. 11(a)",
        {"psi=0.9 reaches by round 11 the accuracy (85%) psi=0.3 ends at;",
         "small psi trades training speed for data diversity."});
}

void part_b() {
    std::cout << "\n(b) # selected nodes among top-10/20/30 scores vs psi (K=20, N=100)\n\n";
    const std::size_t trials = bench::trial_count(2);
    core::TablePrinter table(std::cout, {"psi", "top10", "top20", "top30"});
    for (const double psi : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
        core::ExperimentSpec spec = small_data_spec();
        spec.auction.psi = psi;
        spec.training.rounds = 8;
        double top10 = 0.0;
        double top20 = 0.0;
        double top30 = 0.0;
        std::size_t rounds_seen = 0;
        for (std::size_t t = 0; t < trials; ++t) {
            core::ExperimentTrial trial(spec, t);
            const fl::RunResult run = trial.run("psi_fmore");
            for (const auto& round : run.rounds) {
                // all_scores is descending; the score at index m-1 is the
                // m-th best. Count winners above each cutoff.
                const auto& all = round.selection.all_scores;
                for (const auto& sel : round.selection.selected) {
                    if (sel.score >= all[9]) ++top10;
                    if (sel.score >= all[19]) ++top20;
                    if (sel.score >= all[29]) ++top30;
                }
                ++rounds_seen;
            }
        }
        const double inv = 1.0 / static_cast<double>(rounds_seen);
        table.row({psi, top10 * inv, top20 * inv, top30 * inv}, 1);
    }
    bench::print_paper_reference(
        std::cout, "Fig. 11(b)",
        {"at psi=0.8 about 2/3 of winners are inside the top-30 scores;",
         "at psi=0.2-0.3 selection scatters and approaches RandFL;",
         "winner scores at psi=0.2 are much more dispersed than at psi=0.9."});
}

} // namespace

int main() {
    std::cout << "Fig. 11: the performance impacts of parameter psi\n\n";
    part_a();
    part_b();
    return 0;
}
