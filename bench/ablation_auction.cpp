// Ablations over the design choices DESIGN.md calls out:
//  1. paper-form g(u) (no binomial coefficients) vs the exact
//     order-statistic win probability — induced payment difference;
//  2. payment evaluation: integral form vs the paper's Euler ODE vs RK4 —
//     accuracy against the integral reference across grid sizes;
//  3. first-price vs second-price payment rule — winner payments and
//     aggregator profit;
//  4. scoring family (additive / Leontief / Cobb-Douglas / scaled product)
//     — what the aggregator buys and what it pays;
//  5. psi identical vs distinct per node (the paper's open question).

#include <cmath>
#include <iostream>
#include <memory>

#include "fmore/auction/game.hpp"
#include "fmore/core/report.hpp"
#include "fmore/stats/normalizer.hpp"

namespace {

using namespace fmore;

const stats::UniformDistribution& theta_dist() {
    static const stats::UniformDistribution d(0.5, 1.5);
    return d;
}

auction::EquilibriumConfig eq_config(std::size_t n, std::size_t k,
                                     auction::WinModel model) {
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = n;
    cfg.num_winners = k;
    cfg.win_model = model;
    return cfg;
}

void ablation_win_model() {
    std::cout << "--- 1. paper g(u) vs exact order-statistic win probability ---\n";
    std::vector<stats::MinMaxNormalizer> norms{stats::MinMaxNormalizer(0.0, 150.0),
                                               stats::MinMaxNormalizer(0.0, 1.0)};
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    const auto paper = auction::EquilibriumSolver(
                           scoring, cost, theta_dist(), {1.0, 0.05}, {150.0, 1.0},
                           eq_config(100, 20, auction::WinModel::paper))
                           .solve();
    const auto exact = auction::EquilibriumSolver(
                           scoring, cost, theta_dist(), {1.0, 0.05}, {150.0, 1.0},
                           eq_config(100, 20, auction::WinModel::exact))
                           .solve();
    core::TablePrinter table(std::cout, {"theta", "p_paper", "p_exact", "rel_diff"});
    for (const double theta : {0.55, 0.7, 0.85, 1.0, 1.15, 1.3, 1.45}) {
        const double pp = paper.payment(theta);
        const double pe = exact.payment(theta);
        table.row({theta, pp, pe, (pe - pp) / pp}, 4);
    }
    std::cout << "takeaway: the dropped binomial coefficients bias win probability\n"
                 "down at mid scores, so the paper-form strategy shades slightly\n"
                 "differently; both stay individually rational.\n\n";
}

void ablation_payment_method() {
    std::cout << "--- 2. payment evaluation: Euler ODE (paper) vs RK4 vs integral ---\n";
    std::vector<stats::MinMaxNormalizer> norms{stats::MinMaxNormalizer(0.0, 150.0),
                                               stats::MinMaxNormalizer(0.0, 1.0)};
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    core::TablePrinter table(std::cout,
                             {"grid", "max|euler-int|", "max|rk4-int|", "ref_p(1.0)"});
    for (const std::size_t grid : {64u, 128u, 256u, 512u, 1024u}) {
        auction::EquilibriumConfig cfg = eq_config(100, 20, auction::WinModel::paper);
        cfg.score_grid_points = grid;
        const auto strategy = auction::EquilibriumSolver(scoring, cost, theta_dist(),
                                                         {1.0, 0.05}, {150.0, 1.0}, cfg)
                                  .solve();
        double worst_euler = 0.0;
        double worst_rk4 = 0.0;
        for (double theta = 0.55; theta <= 1.35; theta += 0.05) {
            const double ref = strategy.payment(theta, auction::PaymentMethod::integral);
            worst_euler = std::max(
                worst_euler,
                std::fabs(strategy.payment(theta, auction::PaymentMethod::euler_ode) - ref));
            worst_rk4 = std::max(
                worst_rk4,
                std::fabs(strategy.payment(theta, auction::PaymentMethod::rk4_ode) - ref));
        }
        table.row({static_cast<double>(grid), worst_euler, worst_rk4,
                   strategy.payment(1.0)},
                  5);
    }
    std::cout << "takeaway: Euler converges linearly toward the integral form —\n"
                 "the paper's linear-time prescription is adequate at a few hundred\n"
                 "steps; RK4 buys little because the stiff layer is seeded anyway.\n\n";
}

void ablation_payment_rule() {
    std::cout << "--- 3. first-price vs second-price (second-score) rule ---\n";
    std::vector<stats::MinMaxNormalizer> norms{stats::MinMaxNormalizer(0.0, 150.0),
                                               stats::MinMaxNormalizer(0.0, 1.0)};
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    core::TablePrinter table(std::cout,
                             {"rule", "mean_payment", "aggregator_V", "social_surplus"});
    for (const auto rule : {auction::PaymentRule::first_price,
                            auction::PaymentRule::second_price}) {
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 20;
        wd.payment_rule = rule;
        const auction::AuctionGame game(scoring, cost, theta_dist(), {1.0, 0.05},
                                        {150.0, 1.0},
                                        eq_config(100, 20, auction::WinModel::paper), wd);
        stats::Rng rng(31);
        double payment = 0.0;
        double profit = 0.0;
        double surplus = 0.0;
        constexpr int reps = 10;
        for (int r = 0; r < reps; ++r) {
            const auto result = game.play(rng);
            payment += result.mean_winner_payment / reps;
            profit += result.aggregator_profit / reps;
            surplus += result.social_surplus / reps;
        }
        table.row({rule == auction::PaymentRule::first_price ? "first" : "second",
                   core::fixed(payment, 3), core::fixed(profit, 2),
                   core::fixed(surplus, 2)});
    }
    std::cout << "takeaway: the second-score rule pays winners more (price set by\n"
                 "the best loser) and costs the aggregator part of its profit;\n"
                 "social surplus is unchanged — selection is identical (Thm 4).\n\n";
}

void ablation_scoring_family() {
    std::cout << "--- 4. scoring family ---\n";
    std::vector<stats::MinMaxNormalizer> norms{stats::MinMaxNormalizer(0.0, 150.0),
                                               stats::MinMaxNormalizer(0.0, 1.0)};
    struct Family {
        const char* name;
        std::unique_ptr<auction::ScoringRule> rule;
    };
    std::vector<Family> families;
    families.push_back({"additive", std::make_unique<auction::AdditiveScoring>(
                                        std::vector<double>{12.0, 12.0}, norms)});
    families.push_back({"leontief", std::make_unique<auction::LeontiefScoring>(
                                        std::vector<double>{24.0, 24.0}, norms)});
    families.push_back({"cobb-douglas", std::make_unique<auction::CobbDouglasScoring>(
                                            std::vector<double>{0.5, 0.5}, norms)});
    families.push_back({"scaled-product",
                        std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms)});
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    core::TablePrinter table(std::cout, {"family", "q1*(th=1)", "q2*(th=1)",
                                         "mean_payment", "winner_score"});
    for (const Family& family : families) {
        auction::WinnerDeterminationConfig wd;
        wd.num_winners = 20;
        const auction::AuctionGame game(*family.rule, cost, theta_dist(), {1.0, 0.05},
                                        {150.0, 1.0},
                                        eq_config(100, 20, auction::WinModel::paper), wd);
        stats::Rng rng(37);
        double payment = 0.0;
        double score = 0.0;
        constexpr int reps = 8;
        for (int r = 0; r < reps; ++r) {
            const auto result = game.play(rng);
            payment += result.mean_winner_payment / reps;
            score += result.mean_winner_score / reps;
        }
        const auto q = game.strategy().quality(1.0);
        table.row({family.name, core::fixed(q[0], 1), core::fixed(q[1], 2),
                   core::fixed(payment, 3), core::fixed(score, 3)});
    }
    std::cout << "takeaway: complementary (Leontief) scoring forces balanced\n"
                 "provision; additive lets the cheap dimension dominate; the\n"
                 "product families buy both — matching Section III.A's guidance.\n\n";
}

void ablation_psi_identical_vs_distinct() {
    std::cout << "--- 5. psi identical vs distinct per node (paper's open question) ---\n";
    std::vector<stats::MinMaxNormalizer> norms{stats::MinMaxNormalizer(0.0, 150.0),
                                               stats::MinMaxNormalizer(0.0, 1.0)};
    const auction::ScaledProductScoring scoring(25.0, 2, norms);
    const auction::AdditiveCost cost({6.0 / 150.0, 2.0});
    const auto strategy = auction::EquilibriumSolver(
                              scoring, cost, theta_dist(), {1.0, 0.05}, {150.0, 1.0},
                              eq_config(100, 20, auction::WinModel::paper))
                              .solve();
    stats::Rng rng(41);
    std::vector<auction::Bid> bids;
    std::vector<double> thetas;
    for (std::size_t i = 0; i < 100; ++i) {
        thetas.push_back(theta_dist().sample(rng));
        bids.push_back(strategy.bid(i, thetas.back()));
    }

    auto run_variant = [&](const char* name, auction::WinnerDeterminationConfig wd) {
        const auction::WinnerDetermination determination(scoring, wd);
        stats::Rng vrng(43);
        double mean_score = 0.0;
        std::vector<int> wins(100, 0);
        constexpr int reps = 400;
        for (int r = 0; r < reps; ++r) {
            const auto outcome = determination.run(bids, vrng);
            for (const auto& w : outcome.winners) {
                mean_score += w.score / (reps * 20.0);
                ++wins[w.node];
            }
        }
        std::size_t ever_selected = 0;
        for (const int w : wins) {
            if (w > 0) ++ever_selected;
        }
        std::cout << "  " << name << ": mean winner score " << core::fixed(mean_score, 3)
                  << ", distinct nodes ever selected " << ever_selected << "/100\n";
    };

    auction::WinnerDeterminationConfig identical;
    identical.num_winners = 20;
    identical.psi = 0.6;
    run_variant("identical psi=0.6      ", identical);

    // Distinct: give high-theta (expensive, low-score) nodes a higher psi —
    // an equity-flavoured assignment.
    auction::WinnerDeterminationConfig distinct;
    distinct.num_winners = 20;
    distinct.psi = 0.6;
    distinct.psi_per_node.resize(100);
    for (std::size_t i = 0; i < 100; ++i) {
        distinct.psi_per_node[i] = 0.3 + 0.6 * (thetas[i] - 0.5); // 0.3..0.9
    }
    run_variant("distinct psi~theta     ", distinct);

    auction::WinnerDeterminationConfig inverse;
    inverse.num_winners = 20;
    inverse.psi = 0.6;
    inverse.psi_per_node.resize(100);
    for (std::size_t i = 0; i < 100; ++i) {
        inverse.psi_per_node[i] = 0.9 - 0.6 * (thetas[i] - 0.5); // favour cheap nodes
    }
    run_variant("distinct psi~1/theta   ", inverse);

    std::cout << "takeaway: distinct psi is a real lever — tilting acceptance toward\n"
                 "expensive nodes broadens participation at a visible score cost,\n"
                 "tilting toward cheap nodes nearly recovers plain FMore.\n";
}

} // namespace

int main() {
    std::cout << "Auction design ablations (DESIGN.md section 6)\n\n";
    ablation_win_model();
    ablation_payment_method();
    ablation_payment_rule();
    ablation_scoring_family();
    ablation_psi_identical_vs_distinct();
    return 0;
}
