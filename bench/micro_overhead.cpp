// Micro-benchmarks backing the paper's "lightweight" claims (Sections III.A
// and IV): an edge node computes its Nash-equilibrium bid in linear time
// (Euler's method), and the aggregator's per-round work is scoring + a sort.
// google-benchmark binary: run with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/core/equilibrium_cache.hpp"
#include "fmore/stats/normalizer.hpp"

namespace {

using namespace fmore;

struct AuctionWorld {
    AuctionWorld()
        : theta(0.5, 1.5),
          norms{stats::MinMaxNormalizer(0.0, 150.0), stats::MinMaxNormalizer(0.0, 1.0)},
          scoring(25.0, 2, norms),
          cost({6.0 / 150.0, 2.0}) {}

    stats::UniformDistribution theta;
    std::vector<stats::MinMaxNormalizer> norms;
    auction::ScaledProductScoring scoring;
    auction::AdditiveCost cost;
};

AuctionWorld& world() {
    static AuctionWorld w;
    return w;
}

/// Full strategy tabulation as a function of the score-grid size (the
/// Euler/quadrature step count): should scale linearly -> the paper's
/// "complexity of linear time" for a bidder.
void BM_EquilibriumSolve(benchmark::State& state) {
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = 100;
    cfg.num_winners = 20;
    cfg.score_grid_points = static_cast<std::size_t>(state.range(0));
    cfg.theta_grid_points = 65;
    const auction::EquilibriumSolver solver(world().scoring, world().cost, world().theta,
                                            {1.0, 0.05}, {150.0, 1.0}, cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.solve());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EquilibriumSolve)->Range(64, 4096)->Complexity(benchmark::oN);

/// Per-round bid computation once the strategy is tabulated — what a node
/// actually does online. Should be O(1) lookups.
void BM_BidLookup(benchmark::State& state) {
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = 100;
    cfg.num_winners = 20;
    const auto strategy = auction::EquilibriumSolver(world().scoring, world().cost,
                                                     world().theta, {1.0, 0.05},
                                                     {150.0, 1.0}, cfg)
                              .solve();
    double theta = 0.5;
    for (auto _ : state) {
        theta = theta >= 1.5 ? 0.5 : theta + 1e-4;
        benchmark::DoNotOptimize(strategy.bid(0, theta));
    }
}
BENCHMARK(BM_BidLookup);

/// Aggregator winner determination as a function of N: scoring, coin-flip
/// shuffle and a sort -> O(N log N).
void BM_WinnerDetermination(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = n;
    cfg.num_winners = n / 5;
    const auto strategy = auction::EquilibriumSolver(world().scoring, world().cost,
                                                     world().theta, {1.0, 0.05},
                                                     {150.0, 1.0}, cfg)
                              .solve();
    stats::Rng rng(5);
    std::vector<auction::Bid> bids;
    bids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        bids.push_back(strategy.bid(i, world().theta.sample(rng)));
    }
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = n / 5;
    const auction::WinnerDetermination determination(world().scoring, wd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(determination.run(bids, rng));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WinnerDetermination)->Range(64, 8192)->Complexity(benchmark::oNLogN);

/// The O(N log K) selection path (full_ranking = false): the ranking stops
/// after the K(+1) entries winner selection needs, a partial sort instead
/// of the full one. K is held at 20 while N grows, so the curve should be
/// near-linear in N — the ROADMAP's sharding prerequisite. Winners are
/// bit-identical to the full path (tests/auction/mechanism_test.cpp).
void BM_WinnerDeterminationTopK(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t k = 20;
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = n;
    cfg.num_winners = k;
    const auto strategy = auction::EquilibriumSolver(world().scoring, world().cost,
                                                     world().theta, {1.0, 0.05},
                                                     {150.0, 1.0}, cfg)
                              .solve();
    stats::Rng rng(5);
    std::vector<auction::Bid> bids;
    bids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        bids.push_back(strategy.bid(i, world().theta.sample(rng)));
    }
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = k;
    wd.full_ranking = false;
    const auction::WinnerDetermination determination(world().scoring, wd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(determination.run(bids, rng));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WinnerDeterminationTopK)->Range(64, 8192)->Complexity(benchmark::oN);

/// Payment evaluation methods at equal grid size: the paper's Euler ODE
/// versus the integral form versus RK4.
void BM_PaymentMethod(benchmark::State& state) {
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = 100;
    cfg.num_winners = 20;
    const auto strategy = auction::EquilibriumSolver(world().scoring, world().cost,
                                                     world().theta, {1.0, 0.05},
                                                     {150.0, 1.0}, cfg)
                              .solve();
    const auto method = static_cast<auction::PaymentMethod>(state.range(0));
    double theta = 0.5;
    for (auto _ : state) {
        theta = theta >= 1.5 ? 0.5 : theta + 1e-4;
        benchmark::DoNotOptimize(strategy.payment(theta, method));
    }
}
BENCHMARK(BM_PaymentMethod)
    ->Arg(static_cast<int>(auction::PaymentMethod::integral))
    ->Arg(static_cast<int>(auction::PaymentMethod::euler_ode))
    ->Arg(static_cast<int>(auction::PaymentMethod::rk4_ode));

/// psi-FMore's probabilistic scan versus the plain top-K cut.
void BM_PsiSelection(benchmark::State& state) {
    const double psi = static_cast<double>(state.range(0)) / 10.0;
    constexpr std::size_t n = 1000;
    auction::EquilibriumConfig cfg;
    cfg.num_bidders = n;
    cfg.num_winners = 100;
    const auto strategy = auction::EquilibriumSolver(world().scoring, world().cost,
                                                     world().theta, {1.0, 0.05},
                                                     {150.0, 1.0}, cfg)
                              .solve();
    stats::Rng rng(7);
    std::vector<auction::Bid> bids;
    for (std::size_t i = 0; i < n; ++i) {
        bids.push_back(strategy.bid(i, world().theta.sample(rng)));
    }
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = 100;
    wd.psi = psi;
    const auction::WinnerDetermination determination(world().scoring, wd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(determination.run(bids, rng));
    }
}
BENCHMARK(BM_PsiSelection)->Arg(10)->Arg(5)->Arg(2);

/// The equilibrium-solve cache: a cold solve versus a keyed hit. The hit
/// path is what every trial after the first pays in a sweep — compare with
/// BM_EquilibriumSolve to see the amortized setup saving.
void BM_EquilibriumCacheHit(benchmark::State& state) {
    core::EquilibriumCache& cache = core::EquilibriumCache::instance();
    cache.clear();
    auto build = [] {
        auto norms = std::vector<stats::MinMaxNormalizer>{
            stats::MinMaxNormalizer(0.0, 150.0), stats::MinMaxNormalizer(0.0, 1.0)};
        auto scoring = std::make_unique<auction::ScaledProductScoring>(25.0, 2, norms);
        auto cost = std::make_unique<auction::AdditiveCost>(
            std::vector<double>{6.0 / 150.0, 2.0});
        auto theta = std::make_unique<stats::UniformDistribution>(0.5, 1.5);
        auction::EquilibriumConfig cfg;
        cfg.num_bidders = 100;
        cfg.num_winners = 20;
        const auction::EquilibriumSolver solver(*scoring, *cost, *theta, {1.0, 0.05},
                                                {150.0, 1.0}, cfg);
        auction::EquilibriumStrategy strategy = solver.solve();
        return std::make_shared<const core::SolvedEquilibrium>(
            std::move(scoring), std::move(cost), std::move(theta), std::move(strategy));
    };
    (void)cache.get_or_solve("bench|warm", build); // pay the miss once
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.get_or_solve("bench|warm", build));
    }
    const auto stats = cache.stats();
    state.counters["hits"] = static_cast<double>(stats.hits);
    state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_EquilibriumCacheHit);

} // namespace

BENCHMARK_MAIN();
