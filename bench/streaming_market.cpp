// streaming_market: the service-level ledger for the streaming auction.
// Where scale_round times the batch round shapes, this bench runs the
// long-lived ingestion service at N in {10k, 100k, 1M}: bids offered one
// at a time in shuffled arrival orders, the running top-K folded
// incrementally, the round closed and priced. Per N it records
//
//   - sustained ingestion throughput (bids/sec through `offer`),
//   - close latency p50/p95/p99 — the wall time from the close trigger to
//     the finalized outcome, which is O(K log K), not O(N), because the
//     ingestion already did the ranking,
//   - the streaming-vs-batch overhead ratio (ingest+close over one batch
//     `run_frame` on the same frame, both single-threaded, so the ratio
//     transfers across runners),
//   - bit-identity of every streaming close against the batch pass, AND of
//     the S=8 `StreamingHeadMerge` against `merge_heads`,
//   - the quorum-vs-deadline close mix under Poisson traffic tuned so the
//     two triggers race at even odds.
//
// A second leg runs the SHARDED streaming service: every round closed
// through `close_round_sharded` (the StreamingHeadMerge composition the
// cross-process aggregator runs over its pipes) and compared bit for bit
// against the monolithic close, with the adaptive quorum controller
// (`timing.adaptive_quorum`) raced against a fixed quorum over identical
// Poisson traffic — the recorded close-time improvement and the
// byte-identity of the quorum schedule across two replays are what CI
// gates on.
//
// Results land in the `streaming` and `streaming_sharded` sections of
// BENCH_scale.json, spliced section-bounded via util/json_ledger.hpp (each
// section replaced in place wherever it sits, so the co-owning benches can
// run in any order; a standalone file is written when the target does not
// exist yet).
//
//   streaming_market [--smoke] [--out path.json] [--check committed.json]
//
// --smoke shrinks the grid to {10k, 100k} and the round counts (CI).
// --check compares fresh measurements against a committed ledger: exit 1
// if the streaming section or its N=1M row is missing, any bit-identity
// flag is false, or the overhead ratio regressed by more than
// FMORE_SCALE_TOLERANCE (default 0.20 = 20%).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/streaming_market.hpp"
#include "fmore/fl/adaptive_quorum.hpp"
#include "fmore/mec/arrival_model.hpp"
#include "fmore/mec/population_store.hpp"
#include "fmore/stats/normalizer.hpp"
#include "fmore/stats/rng.hpp"
#include "fmore/util/json_ledger.hpp"

namespace {

using namespace fmore;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

void set_env(const char* key, const char* value) {
    if (value == nullptr) ::unsetenv(key);
    else ::setenv(key, value, 1);
}

/// RAII env override (same shape as scale_round's): the overhead ratio is
/// measured single-threaded on both sides, so it is machine-relative.
class ScopedEnv {
public:
    ScopedEnv(const char* key, const char* value) : key_(key) {
        const char* previous = std::getenv(key);
        had_previous_ = previous != nullptr;
        if (had_previous_) previous_ = previous;
        set_env(key, value);
    }
    ~ScopedEnv() { set_env(key_, had_previous_ ? previous_.c_str() : nullptr); }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* key_;
    bool had_previous_ = false;
    std::string previous_;
};

constexpr std::size_t kWinners = 32;
constexpr double kDataHi = 150.0;
constexpr std::size_t kShards = 8; ///< same shard count as scale_round

/// The simulator's scoring (Section V.A) over (data size, diversity).
const auction::ScaledProductScoring& scoring() {
    static const std::vector<stats::MinMaxNormalizer> norms = [] {
        std::vector<stats::MinMaxNormalizer> n;
        n.emplace_back(0.0, kDataHi);
        n.emplace_back(0.0, 1.0);
        return n;
    }();
    static const auction::ScaledProductScoring rule(25.0, 2, norms);
    return rule;
}

/// A fully scored random frame — every row active, the score column holding
/// score_span, which is exactly what the fused collector hands the ranker.
auction::BidFrame random_frame(std::size_t n, stats::Rng& rng) {
    auction::BidFrame frame(n, 2);
    for (auction::NodeId node = 0; node < n; ++node) {
        double* q = frame.quality_row(node);
        q[0] = rng.uniform(5.0, kDataHi);
        q[1] = rng.uniform(0.1, 1.0);
        frame.payment(node) = rng.uniform(0.0, 3.0);
        frame.score(node) = scoring().score_span(q, 2, frame.payment(node));
    }
    frame.set_scored(true);
    return frame;
}

bool outcomes_equal(const auction::AuctionOutcome& a, const auction::AuctionOutcome& b) {
    if (a.winners.size() != b.winners.size()) return false;
    for (std::size_t w = 0; w < a.winners.size(); ++w) {
        if (a.winners[w].node != b.winners[w].node
            || a.winners[w].score != b.winners[w].score
            || a.winners[w].payment != b.winners[w].payment) {
            return false;
        }
    }
    if (a.ranking.size() != b.ranking.size()) return false;
    for (std::size_t r = 0; r < a.ranking.size(); ++r) {
        if (a.ranking[r].bid.node != b.ranking[r].bid.node
            || a.ranking[r].score != b.ranking[r].score
            || a.ranking[r].bid.payment != b.ranking[r].bid.payment) {
            return false;
        }
    }
    return true;
}

/// Nearest-rank percentile over an unsorted sample (copied, then sorted).
double percentile(std::vector<double> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = p * static_cast<double>(samples.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(std::llround(rank));
    return samples[std::min(idx, samples.size() - 1)];
}

struct StreamingRow {
    std::size_t n = 0;
    double bids_per_sec = 0.0;
    double ingest_ms = 0.0;    ///< best-of offer-loop wall time per round
    double close_ms_p50 = 0.0; ///< trigger-to-outcome latency percentiles
    double close_ms_p95 = 0.0;
    double close_ms_p99 = 0.0;
    double batch_ms = 0.0;     ///< best-of batch run_frame on the same frame
    double overhead = 0.0;     ///< (ingest + close) / batch, both best-of
    bool identical = false;          ///< every streaming close == batch pass
    bool sharded_identical = false;  ///< StreamingHeadMerge == merge_heads
    std::size_t quorum_closes = 0;
    std::size_t deadline_closes = 0;
    std::size_t mix_rounds = 0;
};

/// Leg 1+2: throughput, close-latency percentiles, and per-round
/// bit-identity against the batch pass. The mechanism is the production
/// configuration (K=32, salted ties, bounded head) so ingestion runs the
/// O(log K) incremental lane; each round reshuffles the arrival order.
void bench_service(std::size_t n, std::size_t rounds, std::uint64_t seed,
                   StreamingRow& row) {
    auction::MechanismSpec spec;
    spec.num_winners = kWinners;
    spec.full_ranking = false;
    spec.tie_break = auction::TieBreak::salted;
    const std::shared_ptr<const auction::Mechanism> mech(auction::make_mechanism(spec));

    stats::Rng data_rng(seed);
    const auction::BidFrame frame = random_frame(n, data_rng);
    std::vector<auction::NodeId> order(n);
    for (auction::NodeId i = 0; i < n; ++i) order[i] = i;

    auction::StreamingMarket market(mech, scoring());
    auction::RankScratch scratch;
    auction::AuctionOutcome batch;
    stats::Rng order_rng(seed ^ 0x0cdeULL);

    row.identical = true;
    double ingest_best = 1e300;
    std::vector<double> batch_ms;
    std::vector<double> service_ms; ///< ingest + close, per round
    std::vector<double> close_ms;
    batch_ms.reserve(rounds);
    service_ms.reserve(rounds);
    close_ms.reserve(rounds);
    // Round 0 warms the market's internal buffers and is excluded from all
    // statistics (the same warm-up policy as scale_round).
    for (std::size_t r = 0; r <= rounds; ++r) {
        order_rng.shuffle(order);
        const std::uint64_t round_seed = seed ^ (0x100ULL + r);

        stats::Rng batch_rng(round_seed);
        auto start = clock_type::now();
        mech->run_frame(scoring(), frame, batch_rng, scratch, batch);
        if (r > 0) batch_ms.push_back(seconds_since(start) * 1e3);

        stats::Rng stream_rng(round_seed);
        market.open_round(n, 2, {}, stream_rng);
        double clock = 0.0;
        start = clock_type::now();
        for (const auction::NodeId node : order) {
            (void)market.offer(node, frame.quality_row(node), frame.payment(node),
                               frame.score(node), clock);
            clock += 1e-6;
        }
        const double ingest_s = seconds_since(start);

        start = clock_type::now();
        const auction::AuctionOutcome& got = market.close_round(stream_rng);
        const double close_s = seconds_since(start);
        if (r > 0) {
            ingest_best = std::min(ingest_best, ingest_s);
            service_ms.push_back((ingest_s + close_s) * 1e3);
            close_ms.push_back(close_s * 1e3);
        }
        row.identical = row.identical && outcomes_equal(batch, got);
    }

    row.ingest_ms = ingest_best * 1e3;
    row.bids_per_sec = static_cast<double>(n) / ingest_best;
    row.close_ms_p50 = percentile(close_ms, 0.50);
    row.close_ms_p95 = percentile(close_ms, 0.95);
    row.close_ms_p99 = percentile(close_ms, 0.99);
    // The regression-gated ratio compares MEDIANS, not minima: on a noisy
    // single-core runner the minimum of a sub-millisecond leg swings far
    // more run to run than the median does, and the gate's tolerance is
    // meant to catch code regressions, not scheduler luck.
    row.batch_ms = percentile(batch_ms, 0.50);
    row.overhead = percentile(service_ms, 0.50) / row.batch_ms;
}

/// Leg 3: the S=8 shard composition — per-shard heads collected over
/// contiguous row ranges, folded one at a time through StreamingHeadMerge,
/// compared bit for bit against the batch merge_heads over the same heads.
void bench_sharded(std::size_t n, std::uint64_t seed, StreamingRow& row) {
    auction::MechanismSpec spec;
    spec.num_winners = kWinners;
    spec.full_ranking = false;
    spec.tie_break = auction::TieBreak::salted;
    const std::shared_ptr<const auction::Mechanism> mech(auction::make_mechanism(spec));
    const auto* engine =
        dynamic_cast<const auction::ScoreAuctionMechanism*>(mech.get());
    if (engine == nullptr) {
        row.sharded_identical = false;
        return;
    }

    stats::Rng data_rng(seed);
    const auction::BidFrame frame = random_frame(n, data_rng);
    const std::size_t cutoff = engine->ranking_cutoff(n);

    // The salted tie keys the monolithic pass would derive — the salt is
    // the batch path's first draw.
    stats::Rng key_rng(seed ^ 0x5a17ULL);
    auction::TieKeys keys;
    keys.salted = true;
    keys.salt = key_rng.engine()();

    std::vector<auction::ShardHead> heads(kShards);
    auction::StreamingHeadMerge streaming;
    streaming.open(2, cutoff);
    const std::size_t base = n / kShards;
    std::size_t lo = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::size_t hi = s + 1 == kShards ? n : lo + base;
        auction::BidFrame local(hi - lo, 2);
        for (std::size_t r = 0; r < hi - lo; ++r) {
            const auction::NodeId node = static_cast<auction::NodeId>(lo + r);
            double* q = local.quality_row(r);
            q[0] = frame.quality_row(node)[0];
            q[1] = frame.quality_row(node)[1];
            local.payment(r) = frame.payment(node);
            local.score(r) = frame.score(node);
        }
        local.set_scored(true);
        auction::collect_shard_head(local, lo, keys, cutoff, heads[s]);
        streaming.ingest(heads[s]);
        lo = hi;
    }

    std::vector<auction::ScoredBid> batch_ranking;
    auction::merge_heads(heads, cutoff, batch_ranking);
    std::vector<auction::ScoredBid> stream_ranking;
    streaming.finish(stream_ranking);

    bool equal = batch_ranking.size() == stream_ranking.size();
    for (std::size_t r = 0; equal && r < batch_ranking.size(); ++r) {
        equal = batch_ranking[r].bid.node == stream_ranking[r].bid.node
                && batch_ranking[r].score == stream_ranking[r].score
                && batch_ranking[r].bid.payment == stream_ranking[r].bid.payment;
    }
    row.sharded_identical = equal;
}

/// Leg 4: Poisson traffic with the quorum and the deadline tuned to race
/// at even odds — quorum n/2 at rate n bids/s has an expected quorum time
/// of exactly the 0.5 s deadline, so per-round arrival noise decides which
/// trigger fires. The recorded mix is the service-level telemetry the
/// spec-layer knobs (`timing.min_updates`, `timing.round_deadline_s`)
/// trade off.
void bench_close_mix(std::size_t n, std::size_t rounds, std::uint64_t seed,
                     StreamingRow& row) {
    auction::MechanismSpec spec;
    spec.num_winners = kWinners;
    spec.full_ranking = false;
    spec.tie_break = auction::TieBreak::salted;
    const std::shared_ptr<const auction::Mechanism> mech(auction::make_mechanism(spec));

    stats::Rng data_rng(seed);
    const auction::BidFrame frame = random_frame(n, data_rng);

    auction::StreamingMarket market(mech, scoring());
    auction::StreamingRoundSpec round;
    round.deadline_s = 0.5;
    round.quorum = n / 2;
    stats::Rng traffic_rng(seed ^ 0x9013ULL);
    stats::Rng round_rng(seed ^ 0xf00dULL);

    row.mix_rounds = rounds;
    for (std::size_t r = 0; r < rounds; ++r) {
        const mec::ArrivalModel traffic =
            mec::ArrivalModel::poisson(n, static_cast<double>(n), traffic_rng);
        market.open_round(n, 2, round, round_rng);
        for (const mec::Arrival& arrival : traffic.schedule()) {
            const auction::NodeId node = static_cast<auction::NodeId>(arrival.node);
            if (!market.offer(node, frame.quality_row(node), frame.payment(node),
                              frame.score(node), arrival.seconds))
                break;
        }
        (void)market.close_round(round_rng);
        if (market.close_reason() == auction::CloseReason::quorum) ++row.quorum_closes;
        else if (market.close_reason() == auction::CloseReason::deadline)
            ++row.deadline_closes;
    }
}

/// Leg 5 (the `streaming_sharded` section): the sharded streaming service.
/// Every round ingests Poisson traffic and closes through
/// `close_round_sharded` at S=8 — the per-shard-head + StreamingHeadMerge
/// composition the cross-process aggregator runs — checked bit for bit
/// against a monolithic twin fed the identical traffic. On top of the same
/// traffic, an `fl::AdaptiveQuorumController` (the engine behind
/// `timing.adaptive_quorum`) races a fixed quorum deliberately set above
/// what the arrival process delivers by the deadline: the fixed service
/// waits out the full deadline every round, while the controller walks the
/// quorum down until the quorum trigger fires early again. Close times are
/// virtual (arrival-clock) seconds, so both the improvement ratio and the
/// schedule are exactly reproducible; the schedule byte-identity flag
/// replays the adaptive run from scratch and compares rendered schedules.
struct ShardedStreamingRow {
    std::size_t n = 0;
    std::size_t rounds = 0;
    std::size_t fixed_quorum = 0;     ///< both runs open round 1 with this
    std::size_t adaptive_final = 0;   ///< controller's quorum after the run
    double fixed_close_s_mean = 0.0;
    double adaptive_close_s_mean = 0.0;
    double improvement = 0.0;         ///< fixed mean / adaptive mean
    bool sharded_identical = false;   ///< close_round_sharded == close_round
    bool schedule_identical = false;  ///< byte-equal schedule across replays
    std::size_t quorum_closes = 0;    ///< adaptive run's close mix
    std::size_t deadline_closes = 0;
};

std::string render_schedule(const std::vector<std::size_t>& schedule) {
    std::ostringstream out;
    for (std::size_t i = 0; i < schedule.size(); ++i)
        out << (i == 0 ? "" : ",") << schedule[i];
    return out.str();
}

void bench_sharded_streaming(std::size_t n, std::size_t rounds,
                             std::uint64_t seed, ShardedStreamingRow& row) {
    auction::MechanismSpec spec;
    spec.num_winners = kWinners;
    spec.full_ranking = false;
    spec.tie_break = auction::TieBreak::salted;
    const std::shared_ptr<const auction::Mechanism> mech(auction::make_mechanism(spec));

    stats::Rng data_rng(seed);
    const auction::BidFrame frame = random_frame(n, data_rng);

    // One traffic tape for every run: arrival noise must not be a degree of
    // freedom between the fixed and the adaptive service.
    std::vector<mec::ArrivalModel> traffic;
    traffic.reserve(rounds);
    stats::Rng traffic_rng(seed ^ 0xada0ULL);
    for (std::size_t r = 0; r < rounds; ++r)
        traffic.push_back(
            mec::ArrivalModel::poisson(n, static_cast<double>(n), traffic_rng));

    std::vector<std::size_t> starts{0};
    for (const std::size_t cut : mec::PopulationStore::even_boundaries(n, kShards))
        starts.push_back(cut);

    const double deadline_s = 0.5;
    // Quorum 7n/8 at rate n bids/s wants ~0.875 s — hopeless against the
    // 0.5 s deadline, so the fixed service deadline-closes every round.
    // Step n/4 walks the adaptive service to 3n/8 (~0.375 s) in two
    // decisions, where it parks: quorum closes, but with too little slack
    // (p99 > slack_ratio x deadline) to trigger the raise rule.
    const std::size_t fixed_quorum = 7 * n / 8;
    fl::AdaptiveQuorumConfig acfg;
    acfg.initial = fixed_quorum;
    acfg.max_quorum = n;
    acfg.step = n / 4;
    acfg.window = 4;
    acfg.deadline_s = deadline_s;

    // One service pass over the traffic tape. `controller` == nullptr runs
    // the fixed quorum; `sharded` picks the close path. Returns per-round
    // close times and outcomes so callers can compare twins bit for bit.
    auto run = [&](fl::AdaptiveQuorumController* controller, bool sharded,
                   std::vector<double>& close_s,
                   std::vector<auction::AuctionOutcome>* outcomes,
                   std::size_t* quorum_closes, std::size_t* deadline_closes) {
        auction::StreamingMarket market(mech, scoring());
        stats::Rng round_rng(seed ^ 0xc105eULL);
        auction::StreamingRoundSpec round;
        round.deadline_s = deadline_s;
        for (std::size_t r = 0; r < rounds; ++r) {
            round.quorum = controller ? controller->quorum() : fixed_quorum;
            market.open_round(n, 2, round, round_rng);
            for (const mec::Arrival& arrival : traffic[r].schedule()) {
                const auction::NodeId node =
                    static_cast<auction::NodeId>(arrival.node);
                if (!market.offer(node, frame.quality_row(node),
                                  frame.payment(node), frame.score(node),
                                  arrival.seconds))
                    break;
            }
            const auction::AuctionOutcome& got =
                sharded ? market.close_round_sharded(round_rng, starts)
                        : market.close_round(round_rng);
            close_s.push_back(market.close_time_s());
            if (outcomes != nullptr) outcomes->push_back(got);
            if (market.close_reason() == auction::CloseReason::quorum) {
                if (quorum_closes != nullptr) ++*quorum_closes;
            } else if (market.close_reason() == auction::CloseReason::deadline) {
                if (deadline_closes != nullptr) ++*deadline_closes;
            }
            if (controller != nullptr)
                controller->observe(auction::to_string(market.close_reason()),
                                    market.close_time_s());
        }
    };

    row.n = n;
    row.rounds = rounds;
    row.fixed_quorum = fixed_quorum;

    // Fixed twins: monolithic close vs sharded close over identical rounds.
    std::vector<double> fixed_close_s;
    std::vector<auction::AuctionOutcome> mono_outcomes;
    std::vector<auction::AuctionOutcome> shard_outcomes;
    {
        std::vector<double> ignored;
        run(nullptr, false, fixed_close_s, &mono_outcomes, nullptr, nullptr);
        run(nullptr, true, ignored, &shard_outcomes, nullptr, nullptr);
    }
    row.sharded_identical = mono_outcomes.size() == shard_outcomes.size();
    for (std::size_t r = 0; row.sharded_identical && r < mono_outcomes.size(); ++r)
        row.sharded_identical = outcomes_equal(mono_outcomes[r], shard_outcomes[r]);

    // Adaptive run (sharded close path), replayed from scratch for the
    // schedule byte-identity flag.
    std::vector<double> adaptive_close_s;
    fl::AdaptiveQuorumController controller(acfg);
    run(&controller, true, adaptive_close_s, nullptr, &row.quorum_closes,
        &row.deadline_closes);
    row.adaptive_final = controller.quorum();
    {
        std::vector<double> replay_close_s;
        fl::AdaptiveQuorumController replay(acfg);
        run(&replay, true, replay_close_s, nullptr, nullptr, nullptr);
        row.schedule_identical = render_schedule(controller.schedule())
                                 == render_schedule(replay.schedule());
    }

    double fixed_sum = 0.0;
    for (const double s : fixed_close_s) fixed_sum += s;
    double adaptive_sum = 0.0;
    for (const double s : adaptive_close_s) adaptive_sum += s;
    row.fixed_close_s_mean = fixed_sum / static_cast<double>(rounds);
    row.adaptive_close_s_mean = adaptive_sum / static_cast<double>(rounds);
    row.improvement = row.fixed_close_s_mean / row.adaptive_close_s_mean;
}

StreamingRow bench_streaming(std::size_t n, std::size_t rounds, std::size_t mix_rounds) {
    const std::uint64_t seed = 0x5ca1e000ULL + n;
    StreamingRow row;
    row.n = n;
    bench_service(n, rounds, seed, row);
    bench_sharded(n, seed, row);
    bench_close_mix(n, mix_rounds, seed, row);
    return row;
}

// ---------------------------------------------------------------------------
// Ledger I/O: splice the `streaming` section into BENCH_scale.json (or
// write a standalone object), plus the --check regression gate.
// ---------------------------------------------------------------------------

std::string render_section(const std::vector<StreamingRow>& rows, bool smoke,
                           std::size_t rounds, std::size_t mix_rounds) {
    std::ostringstream out;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "\"streaming\": {\n"
                  "    \"smoke\": %s,\n"
                  "    \"hardware_threads\": %u,\n"
                  "    \"k\": %zu,\n"
                  "    \"shards\": %zu,\n"
                  "    \"rounds_timed\": %zu,\n"
                  "    \"mix_rounds\": %zu,\n"
                  "    \"rows\": [\n",
                  smoke ? "true" : "false", std::thread::hardware_concurrency(),
                  kWinners, kShards, rounds, mix_rounds);
    out << buf;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const StreamingRow& row = rows[i];
        const double mix = row.mix_rounds == 0
                               ? 0.0
                               : static_cast<double>(row.quorum_closes)
                                     / static_cast<double>(row.mix_rounds);
        std::snprintf(buf, sizeof buf,
                      "      {\"n\": %zu, \"bids_per_sec\": %.4g, "
                      "\"ingest_ms\": %.4g, \"close_ms_p50\": %.4g, "
                      "\"close_ms_p95\": %.4g, \"close_ms_p99\": %.4g, "
                      "\"batch_ms\": %.4g, \"streaming_vs_batch_overhead\": %.4g, "
                      "\"winners_bit_identical\": %s, "
                      "\"sharded_stream_bit_identical\": %s, "
                      "\"quorum_closes\": %zu, \"deadline_closes\": %zu, "
                      "\"quorum_close_fraction\": %.4g}%s\n",
                      row.n, row.bids_per_sec, row.ingest_ms, row.close_ms_p50,
                      row.close_ms_p95, row.close_ms_p99, row.batch_ms, row.overhead,
                      row.identical ? "true" : "false",
                      row.sharded_identical ? "true" : "false", row.quorum_closes,
                      row.deadline_closes, mix, i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "    ]\n  }";
    return out.str();
}

std::string render_sharded_section(const ShardedStreamingRow& row, bool smoke) {
    std::ostringstream out;
    char buf[768];
    std::snprintf(buf, sizeof buf,
                  "\"streaming_sharded\": {\n"
                  "    \"smoke\": %s,\n"
                  "    \"n\": %zu,\n"
                  "    \"k\": %zu,\n"
                  "    \"shards\": %zu,\n"
                  "    \"rounds\": %zu,\n"
                  "    \"deadline_s\": 0.5,\n"
                  "    \"fixed_quorum\": %zu,\n"
                  "    \"adaptive_final_quorum\": %zu,\n"
                  "    \"fixed_close_s_mean\": %.6g,\n"
                  "    \"adaptive_close_s_mean\": %.6g,\n"
                  "    \"adaptive_close_improvement\": %.6g,\n"
                  "    \"quorum_closes\": %zu,\n"
                  "    \"deadline_closes\": %zu,\n"
                  "    \"sharded_close_bit_identical\": %s,\n"
                  "    \"schedule_replay_identical\": %s\n"
                  "  }",
                  smoke ? "true" : "false", row.n, kWinners, kShards, row.rounds,
                  row.fixed_quorum, row.adaptive_final, row.fixed_close_s_mean,
                  row.adaptive_close_s_mean, row.improvement, row.quorum_closes,
                  row.deadline_closes, row.sharded_identical ? "true" : "false",
                  row.schedule_identical ? "true" : "false");
    out << buf;
    return out.str();
}

/// Write the ledger: splice the `streaming` and `streaming_sharded`
/// sections into the shared JSON object via the section-bounded helpers —
/// each section replaced in place wherever it sits, every other byte
/// preserved verbatim (the co-owning benches can run in any order). A
/// standalone object is emitted when the target does not exist yet.
void write_ledger(const std::string& path, const std::string& section,
                  const std::string& sharded_section) {
    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
    }
    text = util::splice_ledger_section(std::move(text), "streaming", section);
    text = util::splice_ledger_section(std::move(text), "streaming_sharded",
                                       sharded_section);

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "streaming_market: cannot write " << path << '\n';
        std::exit(1);
    }
    out << text;
    std::cout << "\nwrote the streaming + streaming_sharded sections of " << path
              << '\n';
}

bool extract_number(const std::string& text, const std::string& key, double* out) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) return false;
    *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

/// Gate fresh rows against the committed ledger's streaming section. The
/// overhead ratio is the regression signal: both of its legs run
/// single-threaded on the same machine, so it transfers across runners the
/// same way scale_round's speedup does.
bool check_against(const std::string& text, const std::vector<StreamingRow>& rows,
                   const ShardedStreamingRow& sharded) {
    const std::string section = util::extract_ledger_section(text, "streaming");
    if (section.empty()) {
        std::cerr << "streaming_market --check: committed ledger has no"
                     " \"streaming\" section\n";
        return false;
    }

    double tolerance = 0.20;
    if (const char* env = std::getenv("FMORE_SCALE_TOLERANCE")) {
        const double v = std::atof(env);
        if (v > 0.0) tolerance = v;
    }

    bool ok = true;
    // The N=1M row is the service north-star: it must stay committed even
    // when the fresh run is a two-row smoke grid.
    {
        const std::string tag = "\"n\": 1000000,";
        const std::size_t at = section.find(tag);
        double committed_rate = 0.0;
        if (at == std::string::npos) {
            std::cerr << "streaming_market --check: committed streaming section is"
                         " missing the N=1000000 row\n";
            ok = false;
        } else {
            const std::size_t end = section.find('}', at);
            const std::string object = section.substr(at, end - at);
            if (!extract_number(object, "bids_per_sec", &committed_rate)
                || !(committed_rate > 0.0)
                || object.find("\"winners_bit_identical\": true") == std::string::npos
                || object.find("\"sharded_stream_bit_identical\": true")
                       == std::string::npos) {
                std::cerr << "streaming_market --check: committed N=1000000 row lacks"
                             " a positive bids_per_sec with both bit-identity flags"
                             " true\n";
                ok = false;
            }
        }
    }
    for (const StreamingRow& row : rows) {
        if (!row.identical) {
            std::cerr << "streaming_market --check: streaming close diverged from the"
                         " batch pass at N=" << row.n << '\n';
            ok = false;
        }
        if (!row.sharded_identical) {
            std::cerr << "streaming_market --check: StreamingHeadMerge diverged from"
                         " merge_heads at N=" << row.n << '\n';
            ok = false;
        }
        const std::string tag = "\"n\": " + std::to_string(row.n) + ",";
        const std::size_t at = section.find(tag);
        if (at == std::string::npos) {
            std::cerr << "streaming_market --check: committed streaming section is"
                         " missing N=" << row.n << '\n';
            ok = false;
            continue;
        }
        const std::size_t end = section.find('}', at);
        const std::string object = section.substr(at, end - at);
        double committed_overhead = 0.0;
        if (!extract_number(object, "streaming_vs_batch_overhead", &committed_overhead)
            || !(committed_overhead > 0.0)) {
            std::cerr << "streaming_market --check: committed N=" << row.n
                      << " row is missing a positive streaming_vs_batch_overhead"
                         " key\n";
            ok = false;
            continue;
        }
        if (row.overhead > committed_overhead * (1.0 + tolerance)) {
            std::cerr << "streaming_market --check: overhead at N=" << row.n
                      << " regressed: " << row.overhead << "x vs committed "
                      << committed_overhead << "x (tolerance "
                      << static_cast<int>(tolerance * 100) << "%)\n";
            ok = false;
        }
    }
    // The streaming_sharded gates are semantic, not timing: the close
    // times are virtual (arrival-clock) seconds, so the improvement ratio
    // is exactly reproducible and must not shrink below break-even.
    const std::string sharded_section =
        util::extract_ledger_section(text, "streaming_sharded");
    if (sharded_section.empty()) {
        std::cerr << "streaming_market --check: committed ledger has no"
                     " \"streaming_sharded\" section\n";
        ok = false;
    } else {
        double committed_improvement = 0.0;
        if (!extract_number(sharded_section, "adaptive_close_improvement",
                            &committed_improvement)
            || !(committed_improvement > 1.0)) {
            std::cerr << "streaming_market --check: committed streaming_sharded"
                         " section lacks an adaptive_close_improvement > 1\n";
            ok = false;
        }
        if (sharded_section.find("\"sharded_close_bit_identical\": true")
                == std::string::npos
            || sharded_section.find("\"schedule_replay_identical\": true")
                   == std::string::npos) {
            std::cerr << "streaming_market --check: committed streaming_sharded"
                         " section lacks both identity flags\n";
            ok = false;
        }
    }
    if (!sharded.sharded_identical) {
        std::cerr << "streaming_market --check: fresh close_round_sharded diverged"
                     " from close_round at N=" << sharded.n << '\n';
        ok = false;
    }
    if (!sharded.schedule_identical) {
        std::cerr << "streaming_market --check: fresh adaptive quorum schedule was"
                     " not byte-identical across two replays\n";
        ok = false;
    }
    if (!(sharded.improvement > 1.0)) {
        std::cerr << "streaming_market --check: fresh adaptive close-time"
                     " improvement is " << sharded.improvement
                  << "x (expected > 1)\n";
        ok = false;
    }
    if (ok)
        std::cout << "--check: streaming + streaming_sharded sections present, no"
                     " regression beyond tolerance\n";
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::cerr << "usage: streaming_market [--smoke] [--out path.json]"
                         " [--check committed.json]\n";
            return 2;
        }
    }
    // Only a FULL run may claim the committed ledger name by default — the
    // CI smoke gate (`--smoke --check BENCH_scale.json`) must not replace
    // the full-grid streaming section.
    if (out_path.empty())
        out_path = smoke ? "BENCH_streaming_smoke.json" : "BENCH_scale.json";

    std::string committed_text;
    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "streaming_market --check: cannot read " << check_path << '\n';
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        committed_text = buffer.str();
    }

    // Both ratio legs single-threaded: ingestion is one arrival at a time
    // by construction, so the batch side must not get a thread-grid head
    // start that varies by runner.
    const ScopedEnv threads("FMORE_ROUND_THREADS", "1");

    std::vector<std::size_t> grid{10'000, 100'000};
    if (!smoke) grid.push_back(1'000'000);
    const std::size_t rounds = smoke ? 12 : 24;
    const std::size_t mix_rounds = smoke ? 16 : 32;

    std::cout << "streaming_market: continuous ingestion vs batch run_frame, K="
              << kWinners << ", S=" << kShards << (smoke ? " (smoke)" : "") << "\n"
              << rounds << " timed service rounds per N (round 0 warms buffers), "
              << mix_rounds << " Poisson close-mix rounds\n\n";
    std::printf("%10s  %12s  %10s  %10s  %10s  %9s  %13s  %s\n", "N", "bids/sec",
                "close p50", "close p95", "close p99", "overhead", "quorum/dl",
                "winners");

    std::vector<StreamingRow> rows;
    for (const std::size_t n : grid) {
        const StreamingRow row = bench_streaming(n, rounds, mix_rounds);
        std::printf("%10zu  %12.3g  %8.3f ms %8.3f ms %8.3f ms  %8.2fx  %7zu/%zu     %s\n",
                    row.n, row.bids_per_sec, row.close_ms_p50, row.close_ms_p95,
                    row.close_ms_p99, row.overhead, row.quorum_closes,
                    row.deadline_closes,
                    row.identical && row.sharded_identical ? "bit-identical"
                                                           : "DIVERGED");
        rows.push_back(row);
    }

    const std::size_t sharded_n = smoke ? 10'000 : 100'000;
    const std::size_t sharded_rounds = smoke ? 16 : 32;
    ShardedStreamingRow sharded;
    bench_sharded_streaming(sharded_n, sharded_rounds,
                            0x5ca1e000ULL + sharded_n, sharded);
    std::printf("\nsharded streaming service: N=%zu S=%zu rounds=%zu  "
                "fixed close %.3f s -> adaptive %.3f s (%.2fx, quorum %zu -> %zu)"
                "  %s, schedule replay %s\n",
                sharded.n, kShards, sharded.rounds, sharded.fixed_close_s_mean,
                sharded.adaptive_close_s_mean, sharded.improvement,
                sharded.fixed_quorum, sharded.adaptive_final,
                sharded.sharded_identical ? "bit-identical" : "DIVERGED",
                sharded.schedule_identical ? "byte-identical" : "DIVERGED");

    write_ledger(out_path, render_section(rows, smoke, rounds, mix_rounds),
                 render_sharded_section(sharded, smoke));

    for (const StreamingRow& row : rows) {
        if (!row.identical) {
            std::cerr << "streaming_market: streaming close diverged at N=" << row.n
                      << '\n';
            return 1;
        }
        if (!row.sharded_identical) {
            std::cerr << "streaming_market: sharded head merge diverged at N=" << row.n
                      << '\n';
            return 1;
        }
    }
    if (!sharded.sharded_identical || !sharded.schedule_identical) {
        std::cerr << "streaming_market: sharded streaming leg diverged\n";
        return 1;
    }
    if (!check_path.empty() && !check_against(committed_text, rows, sharded))
        return 1;
    return 0;
}
