#pragma once

/// @file sharded_selector.hpp
/// The sharded FMore marketplace: the auction round of `AuctionSelector`
/// partitioned over S contiguous node-range shards, proven winner- and
/// payment-bit-identical to the monolithic market (see ARCHITECTURE.md
/// "Sharding the market" and tests/auction/shard_equivalence_test).
///
/// Each round the coordinator
///  1. draws ONE drift salt and has every shard evolve its rows from the
///     per-node (salt, global id) streams — bit-identical to evolving the
///     unsplit store;
///  2. has every shard run the fused collect + score + bounded top-K pass
///     over ITS rows, producing a `ShardHead` of at most `ranking_cutoff`
///     rows (not N bids);
///  3. merges the S heads under the market's strict total order
///     (score desc, tie key asc, node asc) and truncates at the monolithic
///     cutoff — the containment argument in shard_merge.hpp makes the
///     merged head equal the monolithic ranking head exactly;
///  4. runs selection and pricing on the merged head with the SAME
///     mechanism and the SAME generator draws the monolithic round uses.
///
/// Tie-break keys follow `MechanismSpec::tie_break`: in `shuffle` mode the
/// coordinator replays the monolithic round's global Fisher-Yates
/// permutation (the active set is derived from node ranges + blacklist,
/// which the coordinator owns — no shard data needed); in `salted` mode
/// one 8-byte salt replaces the permutation entirely, which is what the
/// multi-process `ProcessShardAggregator` ships over its pipes.
///
/// Mechanisms that are not the exact built-in score-auction engine take
/// the GATHER lane instead: shard frames are reassembled into one global
/// frame and the mechanism's own `run_frame` runs on it — exact semantics
/// for every registered mechanism, including wholesale `run` overrides.
///
/// Degradation: with a `shard_timeout_s` deadline and a latency model
/// installed (`set_virtual_latency`, a deterministic virtual clock — no
/// real sleeping), shards that miss the deadline contribute no bids that
/// round; the auction proceeds over the responsive shards and the drop is
/// surfaced in `SelectionRecord::dropped_shards` / `RoundMetrics`.
/// Degraded rounds are NOT equivalence-bound (the monolithic market has
/// no notion of missing bids); un-degraded rounds are.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::mec {

class ShardedAuctionSelector final : public fl::ClientSelector {
public:
    /// View mode (the experiment engines): shard `population`'s store into
    /// `num_shards` contiguous even ranges WITHOUT copying it. The
    /// population remains the single source of truth — drift is applied to
    /// it once per round (identical to what per-shard copies would
    /// compute), so engine components reading it (the wall-clock model,
    /// inspection APIs) see exactly the monolithic state.
    ShardedAuctionSelector(MecPopulation& population,
                           const auction::ScoringRule& scoring,
                           const auction::EquilibriumStrategy& strategy,
                           auction::WinnerDeterminationConfig wd_config,
                           QualityLayout layout, std::size_t data_dimension,
                           std::size_t num_shards,
                           auction::PaymentMethod payment_method
                           = auction::PaymentMethod::integral);

    /// Owned mode (benches, equivalence tests, uneven splits): adopt
    /// already-split shard stores (from `PopulationStore::split`). Shards
    /// must be contiguous: sorted by `node_offset()`, first at 0, each
    /// starting where the previous ended.
    ShardedAuctionSelector(std::vector<PopulationStore> shards,
                           const auction::ScoringRule& scoring,
                           const auction::EquilibriumStrategy& strategy,
                           auction::WinnerDeterminationConfig wd_config,
                           QualityLayout layout, std::size_t data_dimension,
                           auction::PaymentMethod payment_method
                           = auction::PaymentMethod::integral);

    [[nodiscard]] fl::SelectionRecord select(std::size_t round, std::size_t k,
                                             stats::Rng& rng) override;
    /// Same display names as the monolithic selector on purpose — sharding
    /// is an execution strategy, not a different mechanism.
    [[nodiscard]] std::string name() const override {
        return wd_config_.psi < 1.0 ? "psi-FMore" : "FMore";
    }
    [[nodiscard]] bool contracts_data_volume() const override {
        return data_dimension_ != npos;
    }

    /// One auction-only round (drift, per-shard heads, merge, select,
    /// price) over the reused buffers — the entry `bench/scale_round`
    /// times. The returned outcome is owned by the selector and
    /// overwritten by the next round.
    [[nodiscard]] const auction::AuctionOutcome& run_auction_round(std::size_t round,
                                                                   std::size_t k,
                                                                   stats::Rng& rng);

    [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
    [[nodiscard]] std::size_t population_size() const { return starts_.back(); }

    void set_compliance(const ComplianceSpec& spec) { compliance_ = spec; }
    [[nodiscard]] const Blacklist& blacklist() const { return blacklist_; }

    /// Bid deadline per shard, in (virtual) seconds; 0 disables dropping.
    void set_shard_timeout(double seconds);
    /// Deterministic virtual clock for fault injection: `latency(shard,
    /// round)` is how long that shard "took" that round. Strictly later
    /// than `shard_timeout_s` means the shard's bids miss the round. No
    /// wall time is involved, so degraded rounds replay bit-identically.
    void set_virtual_latency(std::function<double(std::size_t, std::size_t)> latency) {
        latency_ = std::move(latency);
    }
    /// Install a deterministic fault plan (`auction.fault_plan`) as the
    /// virtual clock: crashes never answer, stalls and delays answer after
    /// their duration, wire-only faults (truncate/bit-flip) have no
    /// in-process analogue and answer at `base_latency_s`. Same plan, same
    /// rounds dropped, every replay.
    void set_fault_injector(const util::FaultInjector& faults,
                            double base_latency_s = 0.0) {
        set_virtual_latency(faults.latency_model(base_latency_s));
    }
    /// Fail-fast quorum (`auction.shard_quorum`): a round that drops below
    /// `quorum` live shards throws instead of silently shrinking the
    /// market; 0 disables.
    void set_min_live_shards(std::size_t quorum) { min_live_shards_ = quorum; }
    /// Shards dropped by the most recent round, ascending.
    [[nodiscard]] const std::vector<std::size_t>& last_dropped_shards() const {
        return last_dropped_;
    }

    /// Durable-run hooks: like the monolithic selector, the only
    /// cross-round state here is the blacklist — the drifting columns live
    /// in the trial-owned population (view mode, the experiment engines).
    void save_checkpoint(fl::SelectorCheckpoint& ckpt) const override {
        for (std::size_t node : blacklist_.banned_ids())
            ckpt.banned_nodes.push_back(node);
    }
    void restore_checkpoint(const fl::SelectorCheckpoint& ckpt) override {
        blacklist_.clear();
        for (std::uint64_t node : ckpt.banned_nodes)
            blacklist_.ban(static_cast<std::size_t>(node));
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    /// One shard = a contiguous local row range of some store. View mode:
    /// all ranges point at the population's store; owned mode: each range
    /// covers one adopted shard store entirely.
    struct Range {
        const PopulationStore* store = nullptr;
        std::size_t lo = 0;    ///< local row range [lo, hi) within *store
        std::size_t hi = 0;
        std::size_t base = 0;  ///< global id of local row `lo`
    };

    void init_shards_from_boundaries(const PopulationStore& store,
                                     std::size_t num_shards);
    void validate_config();
    void evolve_shards(stats::Rng& rng);
    void refresh_dropped(std::size_t round);
    const auction::Mechanism* mechanism_for(std::size_t k);
    void run_fused_sharded(const auction::ScoreAuctionMechanism& engine,
                           std::size_t k, stats::Rng& rng);
    void run_gathered(const auction::Mechanism& mechanism, stats::Rng& rng);
    [[nodiscard]] double bid_quality(auction::NodeId node, std::size_t dim) const;

    MecPopulation* population_ = nullptr;   ///< view mode only
    std::vector<PopulationStore> owned_;    ///< owned mode only
    std::vector<Range> shards_;
    std::vector<std::size_t> starts_;       ///< S+1 global range bounds

    const auction::ScoringRule& scoring_;
    const auction::EquilibriumStrategy& strategy_;
    auction::WinnerDeterminationConfig wd_config_;
    QualityLayout layout_;
    std::size_t data_dimension_;
    auction::PaymentMethod payment_method_;
    ComplianceSpec compliance_;
    Blacklist blacklist_;
    bool strategy_scores_broadcast_rule_ = false;
    bool gather_lane_ = false;  ///< which lane the last round took

    double shard_timeout_s_ = 0.0;
    std::size_t min_live_shards_ = 0;
    std::function<double(std::size_t, std::size_t)> latency_;
    std::vector<std::size_t> last_dropped_;
    std::vector<std::uint8_t> dropped_flag_;

    // Per-round buffers, reused.
    std::vector<auction::BidFrame> frames_;      ///< one per shard (fused lane)
    std::vector<auction::ShardHead> heads_;
    auction::BidFrame gather_frame_;             ///< gather lane
    std::vector<const double*> columns_;
    auction::RankScratch scratch_;
    auction::AuctionOutcome outcome_;
    std::vector<std::size_t> active_;            ///< shuffle-mode global actives
    std::vector<std::size_t> order_;
    std::vector<std::uint32_t> pos_;

    std::shared_ptr<const auction::Mechanism> mechanism_;
    std::size_t mechanism_k_ = npos;
};

} // namespace fmore::mec
