#pragma once

/// @file shard_aggregator.hpp
/// Multi-process shard market: S forked worker processes, each owning one
/// contiguous shard of the population, speaking a thin pipe protocol with
/// the aggregator. Per round the wire carries
///  - down: one fixed-size request (round, K, drift salt, tie salt, head
///    limit) plus any newly banned global node ids;
///  - up: the shard's `ShardHead` — at most `ranking_cutoff` rows, i.e.
///    K(+1) rows per shard, NOT N bids.
/// Everything else a round needs is position-independent by construction:
/// drift streams are keyed by (salt, global id) and `TieBreak::salted`
/// tie-break keys by (salt, global id), so 16 bytes of salts replace both
/// the O(N) permutation and any shared state.
///
/// The spec must therefore use `TieBreak::salted`, deterministic
/// acceptance (psi == 1, no per-node psi), `full_ranking == false`, and
/// resolve to the exact built-in score-auction engine — the combinations
/// whose coordinator needs only the bounded heads. Everything else belongs
/// in the in-process `ShardedAuctionSelector`.
///
/// Failure semantics: a shard that misses `shard_timeout_s` (stalled) or
/// dies mid-round is evicted — SIGKILLed, its pipe closed, reported in
/// `last_dropped_shards()` — and the round completes over the responsive
/// shards' heads. Eviction is permanent (a half-written pipe cannot be
/// resynchronized); un-degraded rounds are bit-identical to the monolithic
/// salted market, degraded rounds are the exact market over the survivors.
///
/// Fault injection for tests: a `ShardFault` plan is baked into each
/// worker at fork time — at the given round the worker stalls `stall_s`
/// seconds before answering, or exits without answering (`die`).

#include <cstdint>
#include <memory>
#include <vector>

#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population_store.hpp"

namespace fmore::mec {

/// One scripted worker misbehaviour (tests): at `round`, shard `shard`
/// sleeps `stall_s` seconds before replying, or exits without replying.
struct ShardFault {
    std::size_t shard = 0;
    std::size_t round = 0;  ///< 1-based round the fault fires in
    double stall_s = 0.0;
    bool die = false;
};

class ProcessShardAggregator {
public:
    /// Splits `store` into `num_shards` even shards and forks one worker
    /// per shard (workers inherit their shard copy-on-write; they never
    /// touch the thread pool — bid collection in a worker is serial).
    /// @throws std::invalid_argument when the spec is not wire-friendly
    ///         (see file comment) or num_shards is out of range
    /// @throws std::runtime_error on pipe/fork failure
    ProcessShardAggregator(const PopulationStore& store,
                           const auction::ScoringRule& scoring,
                           const auction::EquilibriumStrategy& strategy,
                           auction::WinnerDeterminationConfig wd_config,
                           QualityLayout layout, std::size_t num_shards,
                           double shard_timeout_s,
                           std::vector<ShardFault> faults = {});
    ~ProcessShardAggregator();
    ProcessShardAggregator(const ProcessShardAggregator&) = delete;
    ProcessShardAggregator& operator=(const ProcessShardAggregator&) = delete;

    /// One market round: request heads from every live worker, evict the
    /// ones that miss the deadline, merge the rest, select and price.
    /// Consumes the same generator draws as the monolithic salted round
    /// (one drift salt when round > 1, one tie salt); the returned outcome
    /// is owned by the aggregator and overwritten next round.
    [[nodiscard]] const auction::AuctionOutcome& run_round(std::size_t round,
                                                           std::size_t k,
                                                           stats::Rng& rng);

    /// Shards evicted by the most recent round (ascending shard index).
    [[nodiscard]] const std::vector<std::size_t>& last_dropped_shards() const;
    /// Shards evicted over the aggregator's lifetime.
    [[nodiscard]] std::size_t dead_shards() const;
    [[nodiscard]] std::size_t num_shards() const;
    [[nodiscard]] std::size_t population_size() const;

    /// Exclude a node from all future rounds; shipped to its shard with
    /// the next request.
    void ban(auction::NodeId node);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace fmore::mec
