#pragma once

/// @file shard_aggregator.hpp
/// Multi-process shard market: S forked worker processes, each owning one
/// contiguous shard of the population, speaking the checksummed frame
/// protocol of wire_format.hpp with the aggregator. Per BATCH round
/// (`run_round`) the wire carries
///  - down: one `request` frame (round, K, drift salt, tie salt, head
///    limit, newly banned global node ids);
///  - up: one `head` frame — the shard's `ShardHead`, at most
///    `ranking_cutoff` rows, i.e. K(+1) rows per shard, NOT N bids.
/// A STREAMING round (`run_streaming_round`) replaces the reply with a
/// head STREAM: the request additionally ships an 8-byte arrival salt, the
/// arrival horizon and the coordinator-resolved close cut
/// (`stream_round.hpp` — arrival times are pure in (salt, global id), so
/// the coordinator resolves the deadline/quorum trigger before any head
/// byte moves); each worker filters its bids against the cut and streams
/// its head back in `head_rows` chunks closed by a `head_done`, and the
/// coordinator folds chunks from ALL shards concurrently (one poll loop)
/// into an `auction::StreamingHeadMerge` as they land — no whole-shard
/// blocking. The close reason/time and the merged outcome are
/// bit-identical to the in-process `StreamingMarket`/`StreamingHeadMerge`
/// composition over the same arrivals.
/// Everything else a round needs is position-independent by construction:
/// drift streams are keyed by (salt, global id) and `TieBreak::salted`
/// tie-break keys by (salt, global id), so 24 bytes of salts replace both
/// the O(N) permutation and any shared state.
///
/// The spec must therefore use `TieBreak::salted`, deterministic
/// acceptance (psi == 1, no per-node psi), `full_ranking == false`, and
/// resolve to the exact built-in score-auction engine — the combinations
/// whose coordinator needs only the bounded heads. Everything else belongs
/// in the in-process `ShardedAuctionSelector`.
///
/// Failure semantics (the supervisor):
///  - A corrupt-but-framed reply (payload checksum mismatch — e.g. a
///    bit-flipped or self-described-short frame) is NEVER consumed; the
///    aggregator re-requests it ONCE (`resend`), then evicts.
///  - A shard that misses `shard_timeout_s`, dies (EOF), or desyncs the
///    stream (corrupt header) is evicted — SIGKILLed, pipes closed,
///    reported in `last_dropped_shards()` — and the round completes over
///    the responsive shards' heads.
///  - With `ShardSupervisorConfig::max_respawns > 0` eviction is no longer
///    permanent: the supervisor re-forks the worker from the pristine
///    shard under capped exponential ROUND-INDEXED backoff (the respawn
///    round is a pure function of the eviction round and the shard's
///    respawn count — never of wall-clock time, which stays confined to
///    the real-time read deadline) and re-syncs it with one
///    `sync` frame (the full drift-salt history and ban list). Because
///    drift is keyed by (salt, global id), replaying the salts reproduces
///    the shard state bit-exactly — a rejoined shard's heads are
///    indistinguishable from one that never died.
///  - A round whose live-shard count falls below
///    `ShardSupervisorConfig::min_live_shards` throws instead of silently
///    shrinking the market.
/// Every detection/retry/eviction/respawn is counted in `ShardHealth`
/// (`last_health()` per round, `lifetime_health()` cumulative).
///
/// Fault injection: a deterministic `util::FaultInjector` plan is baked
/// into each worker at fork time; the same plan drives the in-process
/// `ShardedAuctionSelector` virtual clock, so any failure scenario is
/// bit-replayable from a spec seed.

#include <cstdint>
#include <memory>
#include <vector>

#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/streaming_market.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/population_store.hpp"
#include "fmore/util/fault_injector.hpp"

namespace fmore::mec {

/// The supervision counters live in fl (where `SelectionRecord` can carry
/// them); this is the market-layer name for the same record.
using ShardHealth = fl::ShardHealth;

/// Supervision policy of the cross-process market.
struct ShardSupervisorConfig {
    /// Base respawn backoff after an eviction, in ROUND BOUNDARIES to sit
    /// out (ceil'd): doubles per consecutive respawn of the same shard,
    /// capped at 64x. 0 respawns at the next round boundary. Keyed to the
    /// round index — not wall-clock — so a fault plan replays the same
    /// respawn schedule run-to-run regardless of machine load.
    double respawn_backoff_s = 0.0;
    /// Respawn budget per shard; 0 keeps the legacy permanent-eviction
    /// behaviour. A shard that exhausts its budget is retired.
    std::size_t max_respawns = 0;
    /// Fail-fast quorum: a round ending with fewer live shards throws
    /// std::runtime_error; 0 disables.
    std::size_t min_live_shards = 0;
    /// Deterministic fault plan baked into every worker at fork time.
    util::FaultInjector faults;
};

class ProcessShardAggregator {
public:
    /// Splits `store` into `num_shards` even shards and forks one worker
    /// per shard (workers inherit their shard copy-on-write; they never
    /// touch the thread pool — bid collection in a worker is serial).
    /// When respawns are enabled the aggregator retains the pristine shard
    /// splits as fork sources.
    /// @throws std::invalid_argument when the spec is not wire-friendly
    ///         (see file comment) or the supervisor config is out of range
    /// @throws std::runtime_error on pipe/fork failure
    ProcessShardAggregator(const PopulationStore& store,
                           const auction::ScoringRule& scoring,
                           const auction::EquilibriumStrategy& strategy,
                           auction::WinnerDeterminationConfig wd_config,
                           QualityLayout layout, std::size_t num_shards,
                           double shard_timeout_s,
                           ShardSupervisorConfig supervisor = {});
    ~ProcessShardAggregator();
    ProcessShardAggregator(const ProcessShardAggregator&) = delete;
    ProcessShardAggregator& operator=(const ProcessShardAggregator&) = delete;

    /// One market round: respawn eligible evicted workers, request heads
    /// from every live worker, evict the ones that miss the deadline or
    /// fail verification twice, merge the rest, select and price.
    /// Consumes the same generator draws as the monolithic salted round
    /// (one drift salt when round > 1, one tie salt); the returned outcome
    /// is owned by the aggregator and overwritten next round. Rounds must
    /// be sequential from 1 (the salt history a respawn replays assumes
    /// it).
    /// @throws std::runtime_error when live shards fall below the quorum
    [[nodiscard]] const auction::AuctionOutcome& run_round(std::size_t round,
                                                           std::size_t k,
                                                           stats::Rng& rng);

    /// Close policy of one cross-process streaming round.
    struct StreamRoundPolicy {
        /// Virtual-clock bid deadline (`timing.round_deadline_s`); an
        /// arrival exactly at the deadline is counted, strictly later
        /// misses. 0 waits for every bid.
        double deadline_s = 0.0;
        /// Close after this many arrivals (`timing.min_updates`); 0
        /// disables.
        std::size_t quorum = 0;
        /// Width of the uniform arrival window bids are drawn over.
        double arrival_horizon_s = 1.0;
        /// Head rows per `head_rows` frame a worker streams.
        std::size_t chunk_rows = 8;
    };

    /// One STREAMING market round: resolve the deadline/quorum close over
    /// the salted arrival clock, ship the cut with the requests, and fold
    /// every worker's `head_rows` stream into an incremental
    /// `StreamingHeadMerge` as chunks land (all shards concurrently —
    /// corrupt chunks are re-requested once, failing shards are evicted
    /// and the merge is rebuilt over the survivors). Consumes one drift
    /// salt (round > 1), one tie salt and one arrival salt from `rng`;
    /// the outcome and the close telemetry are bit-identical to the
    /// in-process StreamingMarket/StreamingHeadMerge composition over the
    /// same arrivals.
    /// @throws std::invalid_argument on a non-positive arrival horizon or
    ///         chunk size
    /// @throws std::runtime_error when live shards fall below the quorum
    [[nodiscard]] const auction::AuctionOutcome& run_streaming_round(
        std::size_t round, std::size_t k, const StreamRoundPolicy& policy,
        stats::Rng& rng);

    /// Close telemetry of the most recent streaming round.
    [[nodiscard]] auction::CloseReason last_close_reason() const;
    [[nodiscard]] double last_close_time_s() const;
    /// Bids inside the last streaming round's close cut.
    [[nodiscard]] std::size_t last_arrived() const;

    /// Shards that contributed no head to the most recent round
    /// (ascending shard index).
    [[nodiscard]] const std::vector<std::size_t>& last_dropped_shards() const;
    /// Supervision counters of the most recent round.
    [[nodiscard]] const ShardHealth& last_health() const;
    /// Supervision counters accumulated over the aggregator's lifetime
    /// (live_shards is the current count, not a sum).
    [[nodiscard]] const ShardHealth& lifetime_health() const;
    /// Workers evicted over the aggregator's lifetime (respawned workers
    /// still count their evictions).
    [[nodiscard]] std::size_t dead_shards() const;
    /// Workers currently alive.
    [[nodiscard]] std::size_t live_shards() const;
    [[nodiscard]] std::size_t num_shards() const;
    [[nodiscard]] std::size_t population_size() const;
    /// OS pid of worker `shard` (-1 when evicted/retired). Test hook: the
    /// fd-hygiene regression counts open descriptors via /proc/<pid>/fd.
    [[nodiscard]] int worker_pid(std::size_t shard) const;

    /// Exclude a node from all future rounds; shipped to its shard with
    /// the next request (and to every respawned worker with its sync).
    void ban(auction::NodeId node);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace fmore::mec
