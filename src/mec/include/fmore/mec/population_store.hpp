#pragma once

/// @file population_store.hpp
/// Structure-of-arrays backing store of the edge-node population — the
/// million-node representation. Each resource lives in its own contiguous
/// column (plus a caps column), so the per-round hot loops (resource drift,
/// bid collection, wall-clock queries) stream cache lines instead of
/// hopping across an array of structs, and never allocate.
///
/// Determinism model: `evolve` draws ONE salt from the caller's generator
/// and then gives every node its own counter-derived splitmix64 stream
/// seeded from (salt, GLOBAL node id). A node's draws are a pure function
/// of that pair, so any partition of the nodes over `util::ThreadPool`
/// workers — any `FMORE_THREADS` / `FMORE_ROUND_THREADS` value, including
/// the serial reference — replays bit-identical drift, and the caller's
/// generator advances by exactly one step per round regardless of N.
///
/// The same property is what makes the store SHARDABLE: `split` cuts the
/// columns into S contiguous-range shard stores, each remembering its
/// `node_offset()` so local row i keeps the global stream (salt,
/// offset + i). Shards handed the same round salt (`evolve_with_salt`)
/// therefore drift bit-identically to the unsplit store — in any process,
/// on any machine — which is the partitioning invariant the sharded
/// auction market is built on (see ARCHITECTURE.md "Sharding the market").

#include <cstdint>
#include <vector>

#include "fmore/mec/edge_node.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/stats/distributions.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// Ranges used to initialize the non-data resources of a population.
struct PopulationSpec {
    double bandwidth_lo = 10.0;    ///< Mbps
    double bandwidth_hi = 1000.0;  ///< paper's testbed tops at 1 Gbps
    double cpu_lo = 1.0;           ///< cores usable for training
    double cpu_hi = 8.0;           ///< the testbed's i7
    ResourceDynamics dynamics{};
};

/// Synthetic data resources for populations built without real shards
/// (mega-scale auction-only benches): per-node sample counts and label
/// coverage drawn uniformly from these ranges instead of from a
/// materialized non-IID partition.
struct SyntheticDataSpec {
    double data_lo = 20.0;
    double data_hi = 150.0;
    double category_lo = 0.1;
    double category_hi = 1.0;
};

/// One auctionable resource column of the store (the fields of
/// `ResourceState`, in its declaration order).
enum class ResourceDim : std::uint8_t {
    data_size,
    category_proportion,
    bandwidth,
    cpu,
};

/// Full mutable state of a PopulationStore, lifted out for the durable-run
/// checkpoints: the nine columns in declaration order, the global offset,
/// and the round-salt history (the same tape the shard supervisor replays
/// to re-sync a respawned worker). `restore` into a store built from the
/// same spec and seed reproduces it bit for bit.
struct PopulationSnapshot {
    std::size_t node_offset = 0;
    std::vector<std::uint64_t> salt_history;
    /// theta, data_size, category, bandwidth, cpu, data_cap, category_cap,
    /// bandwidth_cap, cpu_cap — in that fixed order.
    std::vector<std::vector<double>> columns;
};

class PopulationStore {
public:
    /// Shard-backed population (the experiment engines). Draw order per
    /// node — bandwidth cap, cpu cap, three initial-state factors, theta —
    /// matches the historical `MecPopulation` constructor, so populations
    /// are reproducible across the AoS->SoA change.
    PopulationStore(const std::vector<ml::ClientShard>& shards, std::size_t num_classes,
                    const stats::Distribution& theta_dist, const PopulationSpec& spec,
                    stats::Rng& rng);

    /// Shard-free synthetic population of `num_nodes` nodes — what lets
    /// bench/scale_round stand up a million bidders without synthesizing a
    /// million-sample dataset first.
    PopulationStore(std::size_t num_nodes, const SyntheticDataSpec& data,
                    const stats::Distribution& theta_dist, const PopulationSpec& spec,
                    stats::Rng& rng);

    [[nodiscard]] std::size_t size() const { return theta_.size(); }

    /// Global id of local row 0 (0 for an unsplit store). Shard stores
    /// produced by `split` keep drawing from the (salt, global id) streams,
    /// so `node_offset() + i` is row i's identity in the whole market.
    [[nodiscard]] std::size_t node_offset() const { return node_offset_; }

    // Hot-path scalar reads (current state).
    [[nodiscard]] double theta(std::size_t i) const { return theta_[i]; }
    [[nodiscard]] double data_size(std::size_t i) const { return data_size_[i]; }
    [[nodiscard]] double category_proportion(std::size_t i) const {
        return category_[i];
    }
    [[nodiscard]] double bandwidth_mbps(std::size_t i) const { return bandwidth_[i]; }
    [[nodiscard]] double cpu_cores(std::size_t i) const { return cpu_[i]; }

    /// Current-state column for one resource dimension.
    [[nodiscard]] const std::vector<double>& column(ResourceDim dim) const;

    // AoS views (cold paths: tests, examples, the MecPopulation mirror).
    [[nodiscard]] ResourceState resources(std::size_t i) const;
    [[nodiscard]] ResourceState caps(std::size_t i) const;

    [[nodiscard]] double theta_lo() const { return theta_lo_; }
    [[nodiscard]] double theta_hi() const { return theta_hi_; }
    [[nodiscard]] const ResourceDynamics& dynamics() const { return dynamics_; }

    /// One round of resource/theta drift across all nodes, chunk-parallel
    /// over idle `util::ThreadPool` workers. Consumes exactly one draw from
    /// `rng` (the round salt); results are bit-identical for any worker
    /// count, including `evolve_serial`.
    void evolve(stats::Rng& rng);

    /// Forced-serial reference of the same per-node streams (tests pin
    /// `evolve` against it; benches use it as the unsharded timing leg).
    void evolve_serial(stats::Rng& rng);

    /// Shard entry point of the same drift: apply a round salt the
    /// COORDINATOR drew (one draw for the whole market, not one per shard).
    /// Because per-node streams are keyed by global id, S shards given the
    /// same salt reproduce the unsplit store's `evolve` bit-identically.
    void evolve_with_salt(std::uint64_t salt);

    /// Every round salt this store has applied, in order — what the shard
    /// supervisor replays into a respawned worker, and what the durable-run
    /// checkpoint records so a resumed coordinator can prove provenance.
    [[nodiscard]] const std::vector<std::uint64_t>& salt_history() const {
        return salt_history_;
    }

    /// Copy out the full mutable state (columns + offset + salt history).
    [[nodiscard]] PopulationSnapshot snapshot() const;

    /// Restore state captured by `snapshot` from a same-shaped store.
    /// @throws std::invalid_argument on size or offset mismatch — a
    /// checkpoint must never be restored into the wrong population.
    void restore(const PopulationSnapshot& snap);

    /// Partition the store into `boundaries.size() + 1` contiguous shards:
    /// cut points are local row indices, strictly increasing, in
    /// (0, size()). Each shard copies its column slices and carries
    /// `node_offset() = this->node_offset() + lo`, so shard drift and bids
    /// stay keyed to global node ids.
    /// @throws std::invalid_argument on unsorted/duplicate/out-of-range cuts
    [[nodiscard]] std::vector<PopulationStore>
    split(const std::vector<std::size_t>& boundaries) const;

    /// Even partition into `num_shards` contiguous shards (the first
    /// size() % num_shards shards get one extra node).
    /// @throws std::invalid_argument when num_shards is 0 or > size()
    [[nodiscard]] std::vector<PopulationStore> split_even(std::size_t num_shards) const;

    /// The cut points `split_even` uses (exposed so callers can map a
    /// global node id back to its shard).
    [[nodiscard]] static std::vector<std::size_t>
    even_boundaries(std::size_t size, std::size_t num_shards);

private:
    PopulationStore() = default;  ///< used by split to assemble shard slices
    void init_resources(std::size_t i, const PopulationSpec& spec, double data_cap,
                        double category, const stats::Distribution& theta_dist,
                        stats::Rng& rng);
    void evolve_all(std::uint64_t salt, bool parallel);
    void evolve_node(std::size_t i, std::uint64_t salt);

    std::size_t node_offset_ = 0;
    ResourceDynamics dynamics_{};
    double theta_lo_ = 0.0;
    double theta_hi_ = 0.0;
    std::vector<std::uint64_t> salt_history_;  ///< round salts applied, in order
    // Current state, one column per resource.
    std::vector<double> theta_;
    std::vector<double> data_size_;
    std::vector<double> category_;
    std::vector<double> bandwidth_;
    std::vector<double> cpu_;
    // Hard caps (shard size, NIC speed, core count).
    std::vector<double> data_cap_;
    std::vector<double> category_cap_;
    std::vector<double> bandwidth_cap_;
    std::vector<double> cpu_cap_;
};

} // namespace fmore::mec
