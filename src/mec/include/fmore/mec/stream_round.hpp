#pragma once

/// @file stream_round.hpp
/// The position-independent arrival clock of the CROSS-PROCESS streaming
/// market, and the close decision computed over it. The design constraint
/// is the same one that shaped the pipe protocol: nothing O(N) may cross
/// the wire. So instead of shipping an arrival schedule, a bid's arrival
/// time is a pure function of an 8-byte round salt and the GLOBAL node id —
///
///     arrival_s(node) = SplitMix64(derive_stream_seed(salt, node))
///                           .uniform(0, horizon_s)
///
/// — exactly the per-node stream-seed discipline drift and salted
/// tie-breaking already use. Any party holding the salt (the coordinator,
/// every forked shard worker, an in-process twin, a test) reproduces the
/// same schedule bit for bit.
///
/// Because arrival times are independent of bid VALUES, the coordinator can
/// resolve the round's close — quorum, deadline, or exhaustion, with the
/// same trigger semantics as `auction::StreamingMarket` — before a single
/// head row crosses the wire, and ship the resulting cut (close time plus a
/// lexicographic boundary node) down with the request. Workers filter their
/// arrived rows against that cut; the coordinator folds the returned head
/// streams into `auction::StreamingHeadMerge` as they land.

#include <cstdint>

#include "fmore/auction/streaming_market.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// Boundary-node sentinel: the close cut is time-only (deadline or
/// exhaustion) — every arrival at or before `close_time_s` made the round.
inline constexpr std::uint64_t kStreamBoundaryAny = ~std::uint64_t{0};

/// Node `node`'s bid arrival time under round salt `arrival_salt`: one
/// SplitMix64 draw uniform in [0, horizon_s). Pure in (salt, node, horizon).
[[nodiscard]] inline double stream_arrival_s(std::uint64_t arrival_salt,
                                             std::uint64_t node,
                                             double horizon_s) {
    return stats::SplitMix64(stats::derive_stream_seed(arrival_salt, node))
        .uniform(0.0, horizon_s);
}

/// Did a bid arriving at `arrival_s` from `node` make the round closed at
/// `(close_time_s, boundary_node)`? The cut is lexicographic over
/// (seconds, node) — the replay order `auction::StreamingMarket` consumes —
/// so a quorum close admits exactly the first q arrivals, and a time-only
/// cut (boundary = kStreamBoundaryAny) admits arrivals AT the close time,
/// matching the market's at-the-deadline-counts rule.
[[nodiscard]] inline bool stream_arrived(double arrival_s, std::uint64_t node,
                                         double close_time_s,
                                         std::uint64_t boundary_node) {
    if (arrival_s != close_time_s) return arrival_s < close_time_s;
    return node <= boundary_node;
}

/// The coordinator's close decision for one streaming round.
struct StreamCloseDecision {
    auction::CloseReason reason = auction::CloseReason::exhausted;
    /// Virtual time of the close: the q-th arrival for quorum closes, the
    /// deadline for deadline closes, the last arrival for exhaustion.
    double close_time_s = 0.0;
    /// Lexicographic tie-break of the cut: the quorum-filling node for
    /// quorum closes, kStreamBoundaryAny for time-only cuts.
    std::uint64_t boundary_node = kStreamBoundaryAny;
    /// Bids inside the cut — the arrived set's size.
    std::size_t arrived = 0;
};

/// Resolve the round's close over the eligible nodes `[0, n)` minus
/// `banned`, with `auction::StreamingMarket`'s trigger semantics exactly:
///  - quorum fires when `quorum > 0`, at least `quorum` bids are eligible,
///    and the quorum-filling arrival is not strictly past the deadline;
///    the round closes AT that arrival (quorum outranks exhaustion when
///    the final arrival fills it);
///  - otherwise a deadline close when `deadline_s > 0` and some arrival is
///    strictly later (arrivals exactly at the deadline are counted);
///  - otherwise exhaustion at the last arrival.
/// O(n) time, O(quorum) space — one bounded max-heap pass.
[[nodiscard]] StreamCloseDecision resolve_stream_close(
    std::size_t n, const Blacklist& banned, std::uint64_t arrival_salt,
    double horizon_s, double deadline_s, std::size_t quorum);

} // namespace fmore::mec
