#pragma once

/// @file streaming_selector.hpp
/// The streaming marketplace as a client selector: FMore's bid-ask /
/// bid-collection / winner-determination loop where the collection step is
/// a LIVE ARRIVAL FEED instead of a batch. Bids are collected through the
/// same fused `collect_bid_rows` pass, then replayed one at a time into an
/// `auction::StreamingMarket` on the virtual clock an `ArrivalModel`
/// supplies; the round closes on `deadline_s` expiry or `quorum` arrivals,
/// whichever fires first, and the emitted `SelectionRecord` over the
/// arrived set is bit-identical to the batch `AuctionSelector` over that
/// same set. Because this is an `fl::ClientSelector`, the closed rounds
/// feed `fl::Coordinator` and `fl::AsyncCoordinator` unchanged — streaming
/// selection composes with sync, semi_sync and async training.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "fmore/auction/streaming_market.hpp"
#include "fmore/fl/adaptive_quorum.hpp"
#include "fmore/mec/arrival_model.hpp"
#include "fmore/mec/auction_selector.hpp"

namespace fmore::mec {

/// Per-round close policy + arrival process of a streaming selector.
struct StreamingRoundConfig {
    /// Virtual-clock bid deadline in seconds (`timing.round_deadline_s`);
    /// 0 waits for every bid.
    double deadline_s = 0.0;
    /// Close after this many arrivals (`timing.min_updates` as a bid
    /// quorum); 0 disables. Counts ARRIVED BIDS, so it may exceed K.
    std::size_t quorum = 0;
    ArrivalProcess process = ArrivalProcess::latency;
    /// Poisson arrival rate (bids/second of virtual time); used only by
    /// `ArrivalProcess::poisson`.
    double arrival_rate_hz = 0.0;
    /// Closed-loop per-node bid latencies (`ArrivalProcess::latency`),
    /// indexed by NodeId; missing entries arrive at t = 0. Typically
    /// `ClusterTimeModel::latency_factor(i) * auction_overhead_s`.
    std::vector<double> bid_latencies_s;
    /// Market shards (`auction.shards`): > 1 closes each round through
    /// `StreamingMarket::close_round_sharded` — the arrived frame is
    /// carved at `PopulationStore::even_boundaries` cuts, per-shard heads
    /// fold through a `StreamingHeadMerge`, and the outcome is
    /// bit-identical to the monolithic close (the same composition the
    /// cross-process `ProcessShardAggregator` streams over its pipes).
    std::size_t shards = 1;
    /// Tune the bid quorum per round with an `fl::AdaptiveQuorumController`
    /// seeded from `quorum` (`timing.adaptive_quorum`): the running
    /// close-reason mix and close-time tail move the target under a
    /// bounded step, so the schedule replays deterministically.
    bool adaptive_quorum = false;
};

/// Streaming twin of `AuctionSelector` (same construction surface, same
/// compliance/blacklist semantics), driving an `auction::StreamingMarket`
/// per round. Under `ArrivalProcess::latency` the selector consumes exactly
/// the generator stream the batch selector would, so a deadline-free,
/// quorum-free streaming round reproduces the batch round bit for bit —
/// the invariant streaming_equivalence_test pins.
class StreamingAuctionSelector final : public fl::ClientSelector {
public:
    StreamingAuctionSelector(MecPopulation& population,
                             const auction::ScoringRule& scoring,
                             const auction::EquilibriumStrategy& strategy,
                             auction::WinnerDeterminationConfig wd_config,
                             QualityLayout layout, std::size_t data_dimension,
                             StreamingRoundConfig streaming,
                             auction::PaymentMethod payment_method =
                                 auction::PaymentMethod::integral);

    [[nodiscard]] fl::SelectionRecord select(std::size_t round, std::size_t k,
                                             stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "FMore-stream"; }
    [[nodiscard]] bool contracts_data_volume() const override {
        return data_dimension_ != npos;
    }

    /// Run one streaming auction round (collect, replay arrivals, close)
    /// without assembling a selection record.
    const auction::AuctionOutcome& run_auction_round(std::size_t round, std::size_t k,
                                                     stats::Rng& rng);

    /// Why the last round stopped accepting bids.
    [[nodiscard]] auction::CloseReason last_close_reason() const;
    /// Bids that made it into the last round.
    [[nodiscard]] std::size_t last_arrived() const;
    /// Virtual time at which the last round closed.
    [[nodiscard]] double last_close_time_s() const;
    /// Top-K evictions during the last round's ingestion.
    [[nodiscard]] std::size_t last_head_churn() const;
    /// Bid quorum the last round opened with (== the config's quorum when
    /// the adaptive controller is off).
    [[nodiscard]] std::size_t last_quorum() const { return last_quorum_; }
    /// The adaptive controller's quorum schedule so far (one entry per
    /// closed round, the quorum the NEXT round opens with); empty when
    /// `adaptive_quorum` is off. A pure function of the close telemetry —
    /// byte-identical across replays of the same run.
    [[nodiscard]] std::vector<std::size_t> quorum_schedule() const {
        return adaptive_ ? adaptive_->schedule() : std::vector<std::size_t>{};
    }

    void set_compliance(const ComplianceSpec& spec) { compliance_ = spec; }
    [[nodiscard]] const Blacklist& blacklist() const { return blacklist_; }

    /// Durable-run hooks: bans plus — under `adaptive_quorum` — the close
    /// telemetry replay that reconstructs the controller's schedule state
    /// (the controller is a pure function of its observation sequence, so
    /// replaying the tape restores it exactly).
    void save_checkpoint(fl::SelectorCheckpoint& ckpt) const override;
    void restore_checkpoint(const fl::SelectorCheckpoint& ckpt) override;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    void ensure_market(std::size_t k);
    void ensure_adaptive(std::size_t population_size);

    MecPopulation& population_;
    const auction::ScoringRule& scoring_;
    const auction::EquilibriumStrategy& strategy_;
    auction::WinnerDeterminationConfig wd_config_;
    QualityLayout layout_;
    std::size_t data_dimension_;
    StreamingRoundConfig streaming_;
    auction::PaymentMethod payment_method_;
    bool strategy_scores_broadcast_rule_ = false;

    ComplianceSpec compliance_;
    Blacklist blacklist_;

    /// Batch-collected bids awaiting their arrival times; the market's own
    /// frame holds the arrived subset.
    auction::BidFrame staging_;
    std::vector<const double*> columns_;
    std::unique_ptr<auction::StreamingMarket> market_;
    std::size_t market_k_ = 0;
    /// Closed-loop schedules do not change between rounds; built once.
    std::optional<ArrivalModel> latency_arrivals_;
    /// Virtual-shard cut points of the sharded close (shards > 1).
    std::vector<std::size_t> shard_starts_;
    std::optional<fl::AdaptiveQuorumController> adaptive_;
    std::size_t last_quorum_ = 0;
};

} // namespace fmore::mec
