#pragma once

/// @file wire_format.hpp
/// The shard market's pipe protocol: CRC32-checksummed, length-prefixed,
/// typed frames. Every message between the aggregator and a worker is one
/// frame — a fixed 24-byte header followed by `payload_size` bytes:
///
///   magic(u32) type(u32) payload_size(u64) payload_crc(u32) header_crc(u32)
///
/// `header_crc` covers the first 20 header bytes, so a flipped bit in the
/// length field is caught BEFORE it desynchronizes the stream;
/// `payload_crc` covers the payload, so a corrupt or self-described-short
/// body is caught before a single byte of it is consumed. All reads and
/// writes loop over EINTR and short transfers.
///
/// Verification outcomes map to recovery actions (shard_aggregator.cpp):
///  - `bad_payload`: the stream is still framed (the header was good, the
///    advertised bytes were drained) — recoverable by one re-request;
///  - `bad_header` / `eof` / `timeout`: the frame boundary is lost or the
///    peer is gone — the worker is evicted and respawned by the supervisor.

#include <poll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

namespace fmore::mec::wire {

inline constexpr std::uint32_t kMagic = 0x464d4f52u;  // "FMOR"

/// Frame types. Downlink: request, sync, stream_request, resend. Uplink:
/// head, head_rows, head_done, nack. `resend` asks a worker to repeat
/// uplink bytes after a payload-checksum failure: with an empty payload it
/// means "repeat your last whole head" (batch rounds); with an 8-byte
/// chunk index it means "repeat your head stream from that chunk on,
/// head_done included" (streaming rounds).
enum class FrameType : std::uint32_t {
    request = 1,  ///< round request + newly banned ids
    sync = 2,     ///< respawn re-sync: full salt history + full ban list
    head = 3,     ///< serialized ShardHead
    resend = 4,   ///< "your last head frame was corrupt, send it again"
    nack = 5,     ///< "your frame was corrupt, send the request again"
    /// Streaming round request: the batch request fields plus the arrival
    /// salt/horizon and the coordinator-resolved close cut; the worker
    /// answers with a head_rows stream instead of one head frame.
    stream_request = 6,
    /// One chunk of a streaming round's shard head: u64 chunk index, then
    /// ShardHead wire bytes holding that chunk's rows.
    head_rows = 7,
    /// End of a shard's head stream: u64 total chunk count.
    head_done = 8,
};

struct FrameHeader {
    std::uint32_t magic = kMagic;
    std::uint32_t type = 0;
    std::uint64_t payload_size = 0;
    std::uint32_t payload_crc = 0;
    std::uint32_t header_crc = 0;
};
static_assert(sizeof(FrameHeader) == 24, "wire layout is part of the protocol");

/// A frame larger than this is treated as a corrupt header (a real head is
/// bounded by ranking_cutoff rows; a gigabyte length is a flipped bit).
inline constexpr std::uint64_t kMaxPayload = 1ull << 30;

enum class ReadStatus {
    ok,
    eof,          ///< peer closed the pipe (or read error)
    timeout,      ///< deadline expired mid-frame
    bad_header,   ///< magic/header-CRC/size check failed — stream desynced
    bad_payload,  ///< payload CRC mismatch — stream still framed
};

/// Software CRC32 (IEEE 802.3 polynomial, reflected) — no zlib dependency.
inline std::uint32_t crc32(const void* data, std::size_t size) {
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

/// Write exactly `size` bytes, looping over EINTR and short writes. With
/// SIGPIPE ignored a dead peer surfaces as EPIPE -> false, not a signal.
inline bool write_all(int fd, const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Blocking read of exactly `size` bytes; false on EOF or error.
inline bool read_all(int fd, void* data, std::size_t size) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
        const ssize_t n = ::read(fd, p, size);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Deadline-bounded read of exactly `size` bytes (aggregator side).
inline ReadStatus read_all_deadline(int fd, void* data, std::size_t size,
                                    std::chrono::steady_clock::time_point deadline) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return ReadStatus::timeout;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rv = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
        if (rv < 0) {
            if (errno == EINTR) continue;
            return ReadStatus::eof;
        }
        if (rv == 0) return ReadStatus::timeout;
        const ssize_t n = ::read(fd, p, size);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return ReadStatus::eof;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return ReadStatus::ok;
}

/// Write one frame with an explicitly claimed size/CRC — the fault-injection
/// seam (`truncated_write` claims fewer bytes than it hashed, `bit_flip`
/// sends flipped bytes under the clean CRC). `claimed_size` bytes of `data`
/// are sent; honest writers pass claimed_size == hashed size and the CRC of
/// exactly those bytes.
inline bool write_frame_raw(int fd, FrameType type, const void* data,
                            std::uint64_t claimed_size, std::uint32_t payload_crc) {
    FrameHeader h;
    h.type = static_cast<std::uint32_t>(type);
    h.payload_size = claimed_size;
    h.payload_crc = payload_crc;
    h.header_crc = crc32(&h, sizeof(FrameHeader) - sizeof(std::uint32_t));
    if (!write_all(fd, &h, sizeof(h))) return false;
    if (claimed_size > 0 && !write_all(fd, data, claimed_size)) return false;
    return true;
}

/// Write one well-formed frame.
inline bool write_frame(int fd, FrameType type, const void* data, std::size_t size) {
    return write_frame_raw(fd, type, data, size, size > 0 ? crc32(data, size) : 0);
}

inline bool header_valid(const FrameHeader& h) {
    return h.magic == kMagic && h.payload_size <= kMaxPayload
           && h.header_crc == crc32(&h, sizeof(FrameHeader) - sizeof(std::uint32_t));
}

/// Blocking frame read (worker side). On `bad_payload` the advertised bytes
/// have been drained — the stream is still framed and the caller may nack.
inline ReadStatus read_frame(int fd, FrameHeader& header,
                             std::vector<std::uint8_t>& payload) {
    if (!read_all(fd, &header, sizeof(header))) return ReadStatus::eof;
    if (!header_valid(header)) return ReadStatus::bad_header;
    payload.resize(header.payload_size);
    if (header.payload_size > 0 && !read_all(fd, payload.data(), payload.size()))
        return ReadStatus::eof;
    if (header.payload_size > 0 && crc32(payload.data(), payload.size()) != header.payload_crc)
        return ReadStatus::bad_payload;
    if (header.payload_size == 0 && header.payload_crc != 0)
        return ReadStatus::bad_payload;
    return ReadStatus::ok;
}

/// Deadline-bounded frame read (aggregator side).
inline ReadStatus read_frame_deadline(int fd, FrameHeader& header,
                                      std::vector<std::uint8_t>& payload,
                                      std::chrono::steady_clock::time_point deadline) {
    ReadStatus rs = read_all_deadline(fd, &header, sizeof(header), deadline);
    if (rs != ReadStatus::ok) return rs;
    if (!header_valid(header)) return ReadStatus::bad_header;
    payload.resize(header.payload_size);
    if (header.payload_size > 0) {
        rs = read_all_deadline(fd, payload.data(), payload.size(), deadline);
        if (rs != ReadStatus::ok) return rs;
        if (crc32(payload.data(), payload.size()) != header.payload_crc)
            return ReadStatus::bad_payload;
    } else if (header.payload_crc != 0) {
        return ReadStatus::bad_payload;
    }
    return ReadStatus::ok;
}

} // namespace fmore::mec::wire
