#pragma once

#include <cstddef>
#include <unordered_set>

#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// The aggregator's blacklist (Section III.A step 4: "If any edge node does
/// not comply with the contract, it will be put into the blacklist by the
/// aggregator"). Banned nodes are excluded from every later bid-collection
/// phase.
class Blacklist {
public:
    void ban(std::size_t node) { banned_.insert(node); }
    [[nodiscard]] bool contains(std::size_t node) const {
        return banned_.count(node) > 0;
    }
    [[nodiscard]] std::size_t size() const { return banned_.size(); }
    void clear() { banned_.clear(); }

private:
    std::unordered_set<std::size_t> banned_;
};

/// Stochastic contract-compliance model: a winner defects in a given round
/// with probability `defect_probability`, delivering only
/// `under_delivery_factor` of the promised data. The aggregator observes
/// delivered volume (it counts the samples behind the returned update) and
/// bans detected defectors.
struct ComplianceSpec {
    double defect_probability = 0.0;
    double under_delivery_factor = 0.5;
};

/// One winner's contract outcome.
struct ComplianceOutcome {
    bool defected = false;
    std::size_t delivered_samples = 0;
};

/// Roll the compliance dice for a winner promising `promised_samples`.
ComplianceOutcome roll_compliance(const ComplianceSpec& spec,
                                  std::size_t promised_samples, stats::Rng& rng);

} // namespace fmore::mec
