#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// The aggregator's blacklist (Section III.A step 4: "If any edge node does
/// not comply with the contract, it will be put into the blacklist by the
/// aggregator"). Banned nodes are excluded from every later bid-collection
/// phase.
///
/// Storage is a flat epoch-stamped array keyed by NodeId: `contains` is a
/// bounds check plus one load — no hashing — which matters because the bid
/// collector asks it once per node per round. `clear` bumps the epoch
/// instead of touching N entries, so the array is reusable across trials
/// at O(1).
class Blacklist {
public:
    void ban(std::size_t node) {
        if (node >= stamp_.size()) stamp_.resize(node + 1, 0);
        if (stamp_[node] != epoch_) {
            stamp_[node] = epoch_;
            ++banned_;
        }
    }
    [[nodiscard]] bool contains(std::size_t node) const {
        return node < stamp_.size() && stamp_[node] == epoch_;
    }
    [[nodiscard]] std::size_t size() const { return banned_; }
    /// All currently banned node ids, ascending — what the durable-run
    /// checkpoint records (O(N) scan; checkpoint cadence, not bid path).
    [[nodiscard]] std::vector<std::size_t> banned_ids() const {
        std::vector<std::size_t> ids;
        ids.reserve(banned_);
        for (std::size_t node = 0; node < stamp_.size(); ++node)
            if (stamp_[node] == epoch_) ids.push_back(node);
        return ids;
    }
    void clear() {
        ++epoch_;
        banned_ = 0;
        if (epoch_ == 0) {  // wrapped: stale stamps could alias, wipe once
            stamp_.assign(stamp_.size(), 0);
            epoch_ = 1;
        }
    }

private:
    std::vector<std::uint32_t> stamp_;  ///< stamp_[node] == epoch_ <=> banned
    std::uint32_t epoch_ = 1;
    std::size_t banned_ = 0;
};

/// Stochastic contract-compliance model: a winner defects in a given round
/// with probability `defect_probability`, delivering only
/// `under_delivery_factor` of the promised data. The aggregator observes
/// delivered volume (it counts the samples behind the returned update) and
/// bans detected defectors.
struct ComplianceSpec {
    double defect_probability = 0.0;
    double under_delivery_factor = 0.5;
};

/// One winner's contract outcome.
struct ComplianceOutcome {
    bool defected = false;
    std::size_t delivered_samples = 0;
};

/// Roll the compliance dice for a winner promising `promised_samples`.
ComplianceOutcome roll_compliance(const ComplianceSpec& spec,
                                  std::size_t promised_samples, stats::Rng& rng);

} // namespace fmore::mec
