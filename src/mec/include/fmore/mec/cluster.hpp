#pragma once

#include <vector>

#include "fmore/fl/coordinator.hpp"
#include "fmore/mec/population.hpp"

namespace fmore::mec {

/// Wall-clock model of the paper's 32-machine testbed (Section V.A: i7
/// CPUs, 1 Gbps Ethernet behind one switch). A synchronous round lasts as
/// long as its slowest winner:
///     t_round = max_i [ download_i + compute_i + upload_i ] + overhead
/// with download/upload = model_bytes / bandwidth and
/// compute = samples * seconds_per_sample_per_core / cores.
struct ClusterTimeConfig {
    double model_bytes = 4.0e6;            ///< ~1M float32 parameters
    double seconds_per_sample_core = 0.004; ///< local SGD cost on one core
    double round_overhead_s = 1.0;         ///< scheduling + aggregation
    /// Extra per-round cost of the auction itself (bid ask + collection);
    /// the paper argues this is negligible — keep it honest but small.
    double auction_overhead_s = 0.05;
};

class ClusterTimeModel {
public:
    /// `population` supplies each node's bandwidth/cpu at call time; must
    /// outlive the model.
    ClusterTimeModel(const MecPopulation& population, ClusterTimeConfig config,
                     bool auction_round);

    /// Round duration given who was selected and how many samples each
    /// winner trained on (parallel arrays).
    [[nodiscard]] double round_seconds(const fl::SelectionRecord& selection,
                                       const std::vector<std::size_t>& samples) const;

    /// Adapter for fl::Coordinator.
    [[nodiscard]] fl::RoundTimeModel as_time_model() const;

    [[nodiscard]] const ClusterTimeConfig& config() const { return config_; }

private:
    const MecPopulation& population_;
    ClusterTimeConfig config_;
    bool auction_round_;
};

} // namespace fmore::mec
