#pragma once

#include <vector>

#include "fmore/fl/client_time.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/mec/population.hpp"

namespace fmore::mec {

/// Wall-clock model of the paper's 32-machine testbed (Section V.A: i7
/// CPUs, 1 Gbps Ethernet behind one switch). A synchronous round lasts as
/// long as its slowest winner:
///     t_round = max_i [ latency_i * (download_i + compute_i + upload_i) ] + overhead
/// with download/upload = model_bytes / bandwidth and
/// compute = samples * seconds_per_sample_per_core / cores. `latency_i` is
/// the node's straggler factor (1 unless `latency_spread` > 0).
struct ClusterTimeConfig {
    double model_bytes = 4.0e6;            ///< ~1M float32 parameters
    double seconds_per_sample_core = 0.004; ///< local SGD cost on one core
    double round_overhead_s = 1.0;         ///< scheduling + aggregation
    /// Extra per-round cost of the auction itself (bid ask + collection);
    /// the paper argues this is negligible — keep it honest but small.
    double auction_overhead_s = 0.05;
    /// Straggler model: sigma of a per-node lognormal latency factor
    /// exp(sigma * N(0,1)), drawn once per trial. 0 = homogeneous latency
    /// (every factor exactly 1, no RNG consumed) — the pre-straggler model.
    double latency_spread = 0.0;
    /// Probability a dispatched client never reports its update (device
    /// failure / churn). Only async/semi-sync dispatches draw it — the
    /// synchronous barrier has no failure handling and assumes every winner
    /// reports, which is precisely why stragglers hurt it.
    double dropout_prob = 0.0;
};

class ClusterTimeModel {
public:
    /// `population` supplies each node's bandwidth/cpu at call time; must
    /// outlive the model. Per-node straggler factors are all 1.
    ClusterTimeModel(const MecPopulation& population, ClusterTimeConfig config,
                     bool auction_round);

    /// As above, additionally drawing each node's straggler factor from
    /// `factor_rng` (one lognormal draw per node, population order) when
    /// `config.latency_spread > 0`; with spread 0 nothing is drawn and the
    /// factors stay exactly 1.
    ClusterTimeModel(const MecPopulation& population, ClusterTimeConfig config,
                     bool auction_round, stats::Rng& factor_rng);

    /// Synchronous-round duration given who was selected and how many
    /// samples each winner trained on (parallel arrays).
    [[nodiscard]] double round_seconds(const fl::SelectionRecord& selection,
                                       const std::vector<std::size_t>& samples) const;

    /// One client's dispatch-to-arrival seconds (download + compute +
    /// upload, scaled by its straggler factor; no round overhead) — the
    /// async rounds' clock.
    [[nodiscard]] double client_seconds(std::size_t client, std::size_t samples) const;

    /// Node `i`'s straggler factor (exactly 1.0 when latency_spread == 0).
    [[nodiscard]] double latency_factor(std::size_t i) const;

    /// Adapter for fl::Coordinator (synchronous rounds).
    [[nodiscard]] fl::RoundTimeModel as_time_model() const;

    /// Adapter for fl::AsyncCoordinator: per-dispatch timing whose dropout
    /// draw consumes the round RNG only when `dropout_prob > 0`, so a
    /// dropout-free async run replays the sync run's RNG stream exactly.
    [[nodiscard]] fl::ClientTimeModel as_client_time_model() const;

    [[nodiscard]] const ClusterTimeConfig& config() const { return config_; }

private:
    const MecPopulation& population_;
    ClusterTimeConfig config_;
    bool auction_round_;
    /// Per-node lognormal straggler factors; empty = all 1 (spread 0).
    std::vector<double> latency_factors_;
};

} // namespace fmore::mec
