#pragma once

#include <vector>

#include "fmore/mec/edge_node.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::mec {

/// Ranges used to initialize the non-data resources of a population.
struct PopulationSpec {
    double bandwidth_lo = 10.0;    ///< Mbps
    double bandwidth_hi = 1000.0;  ///< paper's testbed tops at 1 Gbps
    double cpu_lo = 1.0;           ///< cores usable for training
    double cpu_hi = 8.0;           ///< the testbed's i7
    ResourceDynamics dynamics{};
};

/// The N edge nodes of one MEC deployment. Data resources come from the
/// non-IID shards (the node's data size / label diversity are whatever its
/// shard holds); bandwidth/CPU and the private theta are drawn here.
class MecPopulation {
public:
    MecPopulation(const std::vector<ml::ClientShard>& shards, std::size_t num_classes,
                  const stats::Distribution& theta_dist, const PopulationSpec& spec,
                  stats::Rng& rng);

    [[nodiscard]] std::size_t size() const { return nodes_.size(); }
    [[nodiscard]] const EdgeNode& node(std::size_t i) const { return nodes_.at(i); }
    [[nodiscard]] const std::vector<EdgeNode>& nodes() const { return nodes_; }

    /// One round of resource/theta drift across all nodes.
    void evolve(stats::Rng& rng);

    [[nodiscard]] double theta_lo() const { return theta_lo_; }
    [[nodiscard]] double theta_hi() const { return theta_hi_; }

private:
    std::vector<EdgeNode> nodes_;
    ResourceDynamics dynamics_;
    double theta_lo_;
    double theta_hi_;
};

} // namespace fmore::mec
