#pragma once

#include <vector>

#include "fmore/mec/edge_node.hpp"
#include "fmore/mec/population_store.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::mec {

/// The N edge nodes of one MEC deployment — a thin view over the
/// structure-of-arrays `PopulationStore` that actually holds the state.
/// Data resources come from the non-IID shards (the node's data size /
/// label diversity are whatever its shard holds); bandwidth/CPU and the
/// private theta are drawn by the store.
///
/// Hot paths (bid collection, the wall-clock model) read the store's
/// columns directly via `store()`; the AoS API — `node(i)` / `nodes()` —
/// is a lazily refreshed mirror kept for tests, examples and inspection.
/// Touching it after an `evolve` costs one O(N) rebuild, which production
/// round loops never pay.
class MecPopulation {
public:
    MecPopulation(const std::vector<ml::ClientShard>& shards, std::size_t num_classes,
                  const stats::Distribution& theta_dist, const PopulationSpec& spec,
                  stats::Rng& rng);

    /// Adopt an already-built store (e.g. a shard-free synthetic
    /// mega-population for the scale benches).
    explicit MecPopulation(PopulationStore store);

    [[nodiscard]] std::size_t size() const { return store_.size(); }
    [[nodiscard]] const EdgeNode& node(std::size_t i) const;
    [[nodiscard]] const std::vector<EdgeNode>& nodes() const;

    /// One round of resource/theta drift across all nodes (see
    /// `PopulationStore::evolve` for the determinism model).
    void evolve(stats::Rng& rng);

    /// Drift under a round salt drawn elsewhere — how a sharded market
    /// coordinator keeps this population in lockstep with its shards (one
    /// generator draw for the whole market, identical columns everywhere).
    void evolve_with_salt(std::uint64_t salt);

    [[nodiscard]] double theta_lo() const { return store_.theta_lo(); }
    [[nodiscard]] double theta_hi() const { return store_.theta_hi(); }

    /// Read-only on purpose: all mutation goes through `evolve`, which is
    /// what keeps the lazy AoS mirror coherent.
    [[nodiscard]] const PopulationStore& store() const { return store_; }

    /// Durable-run checkpoint support: copy out / restore the full store
    /// state. `restore` invalidates the lazy AoS mirror, so the coherence
    /// contract above still holds.
    [[nodiscard]] PopulationSnapshot snapshot() const { return store_.snapshot(); }
    void restore(const PopulationSnapshot& snap) {
        store_.restore(snap);
        mirror_stale_ = true;
    }

private:
    void refresh_mirror() const;

    PopulationStore store_;
    mutable std::vector<EdgeNode> mirror_;
    mutable bool mirror_stale_ = true;
};

} // namespace fmore::mec
