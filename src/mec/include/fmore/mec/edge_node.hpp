#pragma once

#include <cstddef>

#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// Snapshot of an edge node's multi-dimensional resources — the quantities
/// the paper auctions: "local data, computation capability, bandwidth, CPU
/// cycle, etc." (Section III.A). `data_size` counts locally held training
/// samples; `category_proportion` is the paper's q2, the fraction of label
/// classes present locally.
struct ResourceState {
    double data_size = 0.0;
    double category_proportion = 0.0;
    double bandwidth_mbps = 0.0;
    double cpu_cores = 0.0;
};

/// How a node's resources drift between rounds. The paper's walk-through
/// notes bids change because "the available resources are changed" and "the
/// private cost parameter theta is reestimated and revised" — we model both
/// with bounded random walks.
struct ResourceDynamics {
    /// Per-round relative jitter of bandwidth/cpu (0 = static resources).
    double resource_jitter = 0.10;
    /// Per-round absolute jitter of theta (clamped to the distribution
    /// support by the population).
    double theta_jitter = 0.0;
};

/// One edge node: identity, private cost type, current resources and the
/// hard caps it can never exceed (its shard size, NIC speed, core count).
class EdgeNode {
public:
    EdgeNode(std::size_t id, double theta, ResourceState initial, ResourceState caps);

    [[nodiscard]] std::size_t id() const { return id_; }
    [[nodiscard]] double theta() const { return theta_; }
    [[nodiscard]] const ResourceState& resources() const { return current_; }
    [[nodiscard]] const ResourceState& caps() const { return caps_; }

    /// One round of resource drift within [0, cap] per dimension plus theta
    /// drift within [theta_lo, theta_hi].
    void evolve(const ResourceDynamics& dynamics, double theta_lo, double theta_hi,
                stats::Rng& rng);

private:
    std::size_t id_;
    double theta_;
    ResourceState current_;
    ResourceState caps_;
};

} // namespace fmore::mec
