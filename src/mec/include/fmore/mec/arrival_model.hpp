#pragma once

/// @file arrival_model.hpp
/// The virtual clock of the streaming marketplace: WHEN each edge node's
/// sealed bid reaches the aggregator. The paper's aggregator broadcasts
/// the ask and "waits a given time interval" for bids (Section III.A) —
/// this model makes the interval's contents explicit as a deterministic
/// arrival schedule the streaming market replays. Two processes:
///  - `latency` (closed-loop replay): node i's bid lands at its expected
///    bid latency — `ClusterTimeModel::latency_factor(i)` times the
///    auction overhead, i.e. the same straggler factors the training
///    clock runs on. No RNG consumed.
///  - `poisson` (open-loop): bids arrive as a Poisson stream of the
///    configured rate with the node order drawn uniformly — the
///    heavy-traffic model of service-style aggregators (Cao et al.,
///    arXiv:2509.10512). Consumes RNG in a fixed draw order, so the
///    schedule is a pure function of (n, rate, generator state).

#include <cstdint>
#include <string>
#include <vector>

#include "fmore/mec/cluster.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::mec {

/// Which arrival process drives the streaming market's virtual clock.
enum class ArrivalProcess : std::uint8_t {
    latency,  ///< closed-loop: per-node expected bid latencies
    poisson,  ///< open-loop: Poisson stream at `arrival_rate_hz`
};

[[nodiscard]] std::string to_string(ArrivalProcess process);
/// @throws std::invalid_argument on an unknown name, listing the valid ones
[[nodiscard]] ArrivalProcess parse_arrival_process(const std::string& text);

/// One bid arrival on the virtual clock.
struct Arrival {
    std::size_t node = 0;
    double seconds = 0.0;
};

/// A full round's arrival schedule: every node exactly once, sorted by
/// (seconds asc, node asc) — the replay order the streaming market's
/// monotonic clock requires.
class ArrivalModel {
public:
    /// Closed-loop replay: node i arrives at `latencies_s[i]`.
    /// @throws std::invalid_argument on a negative or non-finite latency
    [[nodiscard]] static ArrivalModel closed_loop(const std::vector<double>& latencies_s);

    /// Closed-loop replay from the cluster's wall-clock model: node i
    /// arrives at `latency_factor(i) * auction_overhead_s` — stragglers bid
    /// late in exact proportion to how late they train.
    [[nodiscard]] static ArrivalModel from_cluster_time(const ClusterTimeModel& model,
                                                        std::size_t n);

    /// Open-loop Poisson stream: exponential inter-arrival gaps at
    /// `rate_hz`, node order a uniform permutation. Draw order is fixed
    /// (one shuffle, then one uniform per gap), so equal seeds give equal
    /// schedules.
    /// @throws std::invalid_argument unless rate_hz > 0 and finite
    [[nodiscard]] static ArrivalModel poisson(std::size_t n, double rate_hz,
                                              stats::Rng& rng);

    [[nodiscard]] const std::vector<Arrival>& schedule() const { return schedule_; }
    [[nodiscard]] std::size_t size() const { return schedule_.size(); }

private:
    std::vector<Arrival> schedule_;
};

} // namespace fmore::mec
