#pragma once

#include <functional>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/mec/population.hpp"

namespace fmore::mec {

/// Maps a node's available resources onto the quality dimensions the
/// broadcast scoring rule prices. Experiments differ: the simulation uses
/// (data size, category proportion), the testbed (cpu, bandwidth, data).
using QualityExtractor =
    std::function<auction::QualityVector(const ResourceState& available)>;

/// Canned extractors for the paper's two setups.
QualityExtractor data_category_extractor();
QualityExtractor cpu_bandwidth_data_extractor();

/// FMore's bid-ask / bid-collection / winner-determination loop as an
/// fl::ClientSelector (steps 1-3 of Section III.A). Each round:
///  1. the population's resources drift (MEC dynamics);
///  2. every node computes its equilibrium quality q^s(theta), clips it to
///     what it currently has available, and prices the (possibly capped)
///     bid with the equilibrium markup rule b(u) — the shading depends only
///     on the achieved score u, so capped bids stay on the equilibrium
///     path;
///  3. the aggregator scores all sealed bids and picks the top K (with the
///     psi-FMore acceptance rule when psi < 1).
///
/// Winners train on the data volume they bid (`train_samples`), which is
/// how the incentive layer feeds back into learning performance.
///
/// The ranking cost is governed by `wd_config.full_ranking`: true records
/// the complete Fig. 8 score board in each round's SelectionRecord; false
/// uses the O(N log K) partial-ranking path (winners bit-identical, the
/// recorded board truncated to what selection needed).
class AuctionSelector final : public fl::ClientSelector {
public:
    /// `data_dimension` indexes which quality dimension is the data size
    /// (caps the samples a winner trains on); pass npos when the scoring
    /// rule prices no data dimension.
    AuctionSelector(MecPopulation& population,
                    const auction::ScoringRule& scoring,
                    const auction::EquilibriumStrategy& strategy,
                    auction::WinnerDeterminationConfig wd_config,
                    QualityExtractor extractor, std::size_t data_dimension,
                    auction::PaymentMethod payment_method
                    = auction::PaymentMethod::integral);

    [[nodiscard]] fl::SelectionRecord select(std::size_t round, std::size_t k,
                                             stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override {
        return wd_config_.psi < 1.0 ? "psi-FMore" : "FMore";
    }
    /// Winners train on the data volume they bid (when a data dimension is
    /// configured) — the signal wall-clock models key round timing on.
    [[nodiscard]] bool contracts_data_volume() const override {
        return data_dimension_ != npos;
    }

    /// The sealed bids of the most recent round (inspection/benches).
    [[nodiscard]] const std::vector<auction::Bid>& last_bids() const { return last_bids_; }

    /// Enable the contract-compliance model (Section III.A step 4): winners
    /// may under-deliver; detected defectors are blacklisted and excluded
    /// from all later auctions.
    void set_compliance(const ComplianceSpec& spec) { compliance_ = spec; }
    [[nodiscard]] const Blacklist& blacklist() const { return blacklist_; }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    MecPopulation& population_;
    const auction::ScoringRule& scoring_;
    const auction::EquilibriumStrategy& strategy_;
    auction::WinnerDeterminationConfig wd_config_;
    QualityExtractor extractor_;
    std::size_t data_dimension_;
    auction::PaymentMethod payment_method_;
    std::vector<auction::Bid> last_bids_;
    ComplianceSpec compliance_;
    Blacklist blacklist_;
};

} // namespace fmore::mec
