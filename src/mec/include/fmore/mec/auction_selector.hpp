#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/winner_determination.hpp"
#include "fmore/fl/run_state.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/mec/population.hpp"

namespace fmore::mec {

/// Maps a node's available resources onto the quality dimensions the
/// broadcast scoring rule prices. Experiments differ: the simulation uses
/// (data size, category proportion), the testbed (cpu, bandwidth, data).
using QualityExtractor =
    std::function<auction::QualityVector(const ResourceState& available)>;

/// Positional column map: quality dimension d is read from the population
/// store's `layout[d]` column. This is the fused-path form of a
/// QualityExtractor — no per-node vector is ever built.
using QualityLayout = std::vector<ResourceDim>;

/// How the selector reads each node's available resources. A column
/// `layout` enables the allocation-free fused SoA round path (an
/// equivalent `fn` is derived for the AoS reference path); a bare custom
/// function is always honoured but pins the selector to the classic
/// per-bid path, since the store cannot see through arbitrary code.
struct QualitySource {
    QualityLayout layout;
    QualityExtractor fn;

    QualitySource(QualityLayout layout);  // NOLINT(google-explicit-constructor)
    QualitySource(QualityExtractor fn);   // NOLINT(google-explicit-constructor)
};

/// Canned sources for the paper's two setups.
QualitySource data_category_extractor();
QualitySource cpu_bandwidth_data_extractor();

/// The fused bid-collection pass over store rows [lo, hi): per row, the
/// equilibrium quality clipped to the row's available columns, the sealed
/// ask, and the aggregator score, written into frame rows
/// `frame_base + (i - lo)`. Blacklist lookups use GLOBAL node ids
/// (`store.node_offset() + i`), so the same pass serves the monolithic
/// selector (offset 0, whole store) and every shard of the sharded market.
/// `columns` is caller-owned scratch (column pointers, reused across
/// rounds). Chunk-parallel over idle pool workers when `parallel`; results
/// are row-pure, hence identical for any worker count. The caller is
/// responsible for `frame.reset` and `frame.set_scored(true)`.
void collect_bid_rows(const PopulationStore& store, std::size_t lo, std::size_t hi,
                      const QualityLayout& layout,
                      const auction::EquilibriumStrategy& strategy,
                      const auction::ScoringRule& scoring,
                      bool strategy_scores_broadcast_rule,
                      auction::PaymentMethod payment_method, const Blacklist& blacklist,
                      auction::BidFrame& frame, std::size_t frame_base,
                      std::vector<const double*>& columns, bool parallel);

/// Turn one auction outcome into the fl::SelectionRecord the coordinator
/// consumes: the score board, per-node scores, and the winner list with
/// compliance rolls (defectors banned in `blacklist`, shortfalls reflected
/// in `train_samples`). `promised_quality(node)` resolves a winner's bid
/// data volume; pass a null function when no data dimension is priced.
/// Shared by AuctionSelector and the sharded selectors so every market
/// engine assembles records — and consumes compliance RNG draws — in
/// exactly the same order.
[[nodiscard]] fl::SelectionRecord assemble_selection_record(
    const auction::AuctionOutcome& outcome, std::size_t population_size,
    const std::function<double(auction::NodeId)>& promised_quality,
    const ComplianceSpec& compliance, Blacklist& blacklist, stats::Rng& rng);

/// FMore's bid-ask / bid-collection / winner-determination loop as an
/// fl::ClientSelector (steps 1-3 of Section III.A). Each round:
///  1. the population's resources drift (MEC dynamics);
///  2. every node computes its equilibrium quality q^s(theta), clips it to
///     what it currently has available, and prices the (possibly capped)
///     bid with the equilibrium markup rule b(u) — the shading depends only
///     on the achieved score u, so capped bids stay on the equilibrium
///     path;
///  3. the aggregator scores all sealed bids and picks the top K (with the
///     psi-FMore acceptance rule when psi < 1).
///
/// Winners train on the data volume they bid (`train_samples`), which is
/// how the incentive layer feeds back into learning performance.
///
/// Two equivalent engines drive a round:
///  - the **fused SoA path** (default when a QualityLayout is available):
///    bids are written straight into a reused `auction::BidFrame` by
///    parallel chunks reading the population store's columns, ranked by
///    `Mechanism::rank_frame`'s fused score+top-K pass, selected and
///    priced into reused buffers — a steady-state round performs zero
///    allocations in the bid path and never materializes N `Bid` objects;
///  - the **classic path** (custom extractors, or `FMORE_BID_PATH=legacy`):
///    the historical per-bid `std::vector<Bid>` collection plus a
///    `WinnerDetermination` rebuilt per round — kept as the reference the
///    equivalence tests and the scale bench compare against.
/// Winners, payments and metrics are bit-identical across the two.
///
/// The ranking cost is governed by `wd_config.full_ranking`: true records
/// the complete Fig. 8 score board in each round's SelectionRecord; false
/// uses the O(N log K) fused partial path (winners bit-identical, the
/// recorded board truncated to what selection needed).
class AuctionSelector final : public fl::ClientSelector {
public:
    /// `data_dimension` indexes which quality dimension is the data size
    /// (caps the samples a winner trains on); pass npos when the scoring
    /// rule prices no data dimension.
    AuctionSelector(MecPopulation& population,
                    const auction::ScoringRule& scoring,
                    const auction::EquilibriumStrategy& strategy,
                    auction::WinnerDeterminationConfig wd_config,
                    QualitySource source, std::size_t data_dimension,
                    auction::PaymentMethod payment_method
                    = auction::PaymentMethod::integral);
    /// Custom-extractor convenience overload (classic path).
    AuctionSelector(MecPopulation& population,
                    const auction::ScoringRule& scoring,
                    const auction::EquilibriumStrategy& strategy,
                    auction::WinnerDeterminationConfig wd_config,
                    QualityExtractor extractor, std::size_t data_dimension,
                    auction::PaymentMethod payment_method
                    = auction::PaymentMethod::integral);

    [[nodiscard]] fl::SelectionRecord select(std::size_t round, std::size_t k,
                                             stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override {
        return wd_config_.psi < 1.0 ? "psi-FMore" : "FMore";
    }
    /// Winners train on the data volume they bid (when a data dimension is
    /// configured) — the signal wall-clock models key round timing on.
    [[nodiscard]] bool contracts_data_volume() const override {
        return data_dimension_ != npos;
    }

    /// One auction-only round over the reused buffers: drift (round > 1),
    /// collect, rank, select, price — no compliance rolls and no
    /// SelectionRecord assembly. This is the entry `bench/scale_round`
    /// times; on the fused path a steady-state call allocates nothing.
    /// The returned outcome is owned by the selector and overwritten by
    /// the next round.
    [[nodiscard]] const auction::AuctionOutcome& run_auction_round(std::size_t round,
                                                                   std::size_t k,
                                                                   stats::Rng& rng);

    /// True when rounds run the fused SoA path (layout available and
    /// `FMORE_BID_PATH` does not force the classic one).
    [[nodiscard]] bool fused_path() const { return fused_path_; }

    /// The sealed bids of the most recent round (inspection/benches); on
    /// the fused path they are materialized lazily from the frame.
    [[nodiscard]] const std::vector<auction::Bid>& last_bids() const;

    /// Enable the contract-compliance model (Section III.A step 4): winners
    /// may under-deliver; detected defectors are blacklisted and excluded
    /// from all later auctions.
    void set_compliance(const ComplianceSpec& spec) { compliance_ = spec; }
    [[nodiscard]] const Blacklist& blacklist() const { return blacklist_; }

    /// Durable-run hooks: the selector's only cross-round state is the
    /// blacklist (the population is trial-owned and snapshotted there).
    void save_checkpoint(fl::SelectorCheckpoint& ckpt) const override {
        for (std::size_t node : blacklist_.banned_ids())
            ckpt.banned_nodes.push_back(node);
    }
    void restore_checkpoint(const fl::SelectorCheckpoint& ckpt) override {
        blacklist_.clear();
        for (std::uint64_t node : ckpt.banned_nodes)
            blacklist_.ban(static_cast<std::size_t>(node));
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    void collect_frame();
    void run_fused_round(std::size_t k, stats::Rng& rng);
    void run_classic_round(std::size_t k, stats::Rng& rng);
    [[nodiscard]] double bid_quality(auction::NodeId node, std::size_t dim) const;

    MecPopulation& population_;
    const auction::ScoringRule& scoring_;
    const auction::EquilibriumStrategy& strategy_;
    auction::WinnerDeterminationConfig wd_config_;
    QualityLayout layout_;
    QualityExtractor extractor_;
    std::size_t data_dimension_;
    auction::PaymentMethod payment_method_;
    ComplianceSpec compliance_;
    Blacklist blacklist_;
    bool fused_path_ = false;
    /// True when `strategy_` was solved against `scoring_` itself, letting
    /// the collector reuse the quote's s(q) as the aggregator score.
    bool strategy_scores_broadcast_rule_ = false;

    // Fused-path state, reused across rounds.
    auction::BidFrame frame_;
    auction::RankScratch scratch_;
    auction::AuctionOutcome outcome_;
    std::vector<const double*> columns_;
    std::shared_ptr<const auction::Mechanism> mechanism_;
    std::size_t mechanism_k_ = npos;

    // Classic-path bid list, doubling as the lazy `last_bids()` cache.
    mutable std::vector<auction::Bid> last_bids_;
    mutable bool last_bids_stale_ = false;
};

} // namespace fmore::mec
