#include "fmore/mec/blacklist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::mec {

ComplianceOutcome roll_compliance(const ComplianceSpec& spec,
                                  std::size_t promised_samples, stats::Rng& rng) {
    if (!(spec.defect_probability >= 0.0 && spec.defect_probability <= 1.0))
        throw std::invalid_argument("ComplianceSpec: defect_probability out of range");
    if (!(spec.under_delivery_factor >= 0.0 && spec.under_delivery_factor < 1.0))
        throw std::invalid_argument("ComplianceSpec: under_delivery_factor out of [0,1)");
    ComplianceOutcome out;
    out.delivered_samples = promised_samples;
    if (spec.defect_probability > 0.0 && rng.bernoulli(spec.defect_probability)) {
        out.defected = true;
        out.delivered_samples = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(spec.under_delivery_factor
                              * static_cast<double>(promised_samples))));
    }
    return out;
}

} // namespace fmore::mec
