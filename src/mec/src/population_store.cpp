#include "fmore/mec/population_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmore/util/thread_pool.hpp"

namespace fmore::mec {

namespace {

/// Nodes per parallel task: big enough that chunk dispatch is noise,
/// small enough that a 100k-node population still spreads over workers.
constexpr std::size_t kEvolveChunk = 4096;

} // namespace

void PopulationStore::init_resources(std::size_t i, const PopulationSpec& spec,
                                     double data_cap, double category,
                                     const stats::Distribution& theta_dist,
                                     stats::Rng& rng) {
    data_cap_[i] = data_cap;
    category_cap_[i] = category;
    bandwidth_cap_[i] = rng.uniform(spec.bandwidth_lo, spec.bandwidth_hi);
    cpu_cap_[i] = rng.uniform(spec.cpu_lo, spec.cpu_hi);

    // Nodes start somewhere inside their envelope, not pinned at it (same
    // draws, in the same order, as the historical AoS constructor).
    bandwidth_[i] = bandwidth_cap_[i] * rng.uniform(0.6, 1.0);
    cpu_[i] = cpu_cap_[i] * rng.uniform(0.6, 1.0);
    data_size_[i] = data_cap_[i] * rng.uniform(0.8, 1.0);
    category_[i] = category;
    theta_[i] = theta_dist.sample(rng);
}

PopulationStore::PopulationStore(const std::vector<ml::ClientShard>& shards,
                                 std::size_t num_classes,
                                 const stats::Distribution& theta_dist,
                                 const PopulationSpec& spec, stats::Rng& rng)
    : dynamics_(spec.dynamics),
      theta_lo_(theta_dist.support_lo()),
      theta_hi_(theta_dist.support_hi()) {
    if (shards.empty()) throw std::invalid_argument("PopulationStore: no shards");
    const std::size_t n = shards.size();
    theta_.resize(n);
    data_size_.resize(n);
    category_.resize(n);
    bandwidth_.resize(n);
    cpu_.resize(n);
    data_cap_.resize(n);
    category_cap_.resize(n);
    bandwidth_cap_.resize(n);
    cpu_cap_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        init_resources(i, spec, static_cast<double>(shards[i].indices.size()),
                       shards[i].category_proportion(num_classes), theta_dist, rng);
    }
}

PopulationStore::PopulationStore(std::size_t num_nodes, const SyntheticDataSpec& data,
                                 const stats::Distribution& theta_dist,
                                 const PopulationSpec& spec, stats::Rng& rng)
    : dynamics_(spec.dynamics),
      theta_lo_(theta_dist.support_lo()),
      theta_hi_(theta_dist.support_hi()) {
    if (num_nodes == 0)
        throw std::invalid_argument("PopulationStore: num_nodes must be >= 1");
    if (!(data.data_lo <= data.data_hi) || !(data.category_lo <= data.category_hi))
        throw std::invalid_argument("PopulationStore: bad synthetic data ranges");
    theta_.resize(num_nodes);
    data_size_.resize(num_nodes);
    category_.resize(num_nodes);
    bandwidth_.resize(num_nodes);
    cpu_.resize(num_nodes);
    data_cap_.resize(num_nodes);
    category_cap_.resize(num_nodes);
    bandwidth_cap_.resize(num_nodes);
    cpu_cap_.resize(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) {
        const double data_cap = rng.uniform(data.data_lo, data.data_hi);
        const double category = rng.uniform(data.category_lo, data.category_hi);
        init_resources(i, spec, data_cap, category, theta_dist, rng);
    }
}

const std::vector<double>& PopulationStore::column(ResourceDim dim) const {
    switch (dim) {
        case ResourceDim::data_size: return data_size_;
        case ResourceDim::category_proportion: return category_;
        case ResourceDim::bandwidth: return bandwidth_;
        case ResourceDim::cpu: return cpu_;
    }
    throw std::logic_error("PopulationStore: unknown ResourceDim");
}

ResourceState PopulationStore::resources(std::size_t i) const {
    ResourceState r;
    r.data_size = data_size_[i];
    r.category_proportion = category_[i];
    r.bandwidth_mbps = bandwidth_[i];
    r.cpu_cores = cpu_[i];
    return r;
}

ResourceState PopulationStore::caps(std::size_t i) const {
    ResourceState r;
    r.data_size = data_cap_[i];
    r.category_proportion = category_cap_[i];
    r.bandwidth_mbps = bandwidth_cap_[i];
    r.cpu_cores = cpu_cap_[i];
    return r;
}

void PopulationStore::evolve_node(std::size_t i, std::uint64_t salt) {
    // Streams are keyed by GLOBAL id: a shard store replays exactly the
    // draws its rows would see inside the unsplit store.
    stats::SplitMix64 stream(stats::derive_stream_seed(salt, node_offset_ + i));
    const double jitter = dynamics_.resource_jitter;
    if (jitter > 0.0) {
        if (bandwidth_cap_[i] > 0.0) {
            const double step = bandwidth_cap_[i] * jitter;
            bandwidth_[i] = std::clamp(bandwidth_[i] + stream.uniform(-step, step),
                                       0.05 * bandwidth_cap_[i], bandwidth_cap_[i]);
        }
        if (cpu_cap_[i] > 0.0) {
            const double step = cpu_cap_[i] * jitter;
            cpu_[i] = std::clamp(cpu_[i] + stream.uniform(-step, step),
                                 0.05 * cpu_cap_[i], cpu_cap_[i]);
        }
        // Data holdings only grow toward the shard cap (nodes accumulate
        // data).
        if (data_cap_[i] > 0.0) {
            const double step = data_cap_[i] * jitter;
            data_size_[i] = std::clamp(data_size_[i] + stream.uniform(0.0, step), 0.0,
                                       data_cap_[i]);
        }
    }
    if (dynamics_.theta_jitter > 0.0) {
        theta_[i] = std::clamp(
            theta_[i] + stream.uniform(-dynamics_.theta_jitter, dynamics_.theta_jitter),
            theta_lo_, theta_hi_);
    }
}

void PopulationStore::evolve_all(std::uint64_t salt, bool parallel) {
    if (dynamics_.theta_jitter > 0.0 && !(theta_lo_ < theta_hi_))
        throw std::invalid_argument("PopulationStore::evolve: bad theta bounds");
    salt_history_.push_back(salt);
    const std::size_t n = size();
    const std::size_t chunks = (n + kEvolveChunk - 1) / kEvolveChunk;
    const std::size_t workers =
        (!parallel || chunks <= 1) ? 1 : util::resolve_round_threads(0, chunks);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) evolve_node(i, salt);
        return;
    }
    util::ThreadPool::shared().parallel_for(
        chunks, workers - 1, [&](std::size_t, std::size_t chunk) {
            const std::size_t lo = chunk * kEvolveChunk;
            const std::size_t hi = std::min(n, lo + kEvolveChunk);
            for (std::size_t i = lo; i < hi; ++i) evolve_node(i, salt);
        });
}

void PopulationStore::evolve(stats::Rng& rng) {
    evolve_all(rng.engine()(), /*parallel=*/true);
}

void PopulationStore::evolve_serial(stats::Rng& rng) {
    evolve_all(rng.engine()(), /*parallel=*/false);
}

void PopulationStore::evolve_with_salt(std::uint64_t salt) {
    evolve_all(salt, /*parallel=*/true);
}

PopulationSnapshot PopulationStore::snapshot() const {
    PopulationSnapshot snap;
    snap.node_offset = node_offset_;
    snap.salt_history = salt_history_;
    snap.columns = {theta_,    data_size_,    category_,     bandwidth_,
                    cpu_,      data_cap_,     category_cap_, bandwidth_cap_,
                    cpu_cap_};
    return snap;
}

void PopulationStore::restore(const PopulationSnapshot& snap) {
    if (snap.columns.size() != 9)
        throw std::invalid_argument("PopulationStore::restore: expected 9 columns, got "
                                    + std::to_string(snap.columns.size()));
    for (const std::vector<double>& col : snap.columns)
        if (col.size() != size())
            throw std::invalid_argument(
                "PopulationStore::restore: snapshot holds " + std::to_string(col.size())
                + " nodes, store holds " + std::to_string(size()));
    if (snap.node_offset != node_offset_)
        throw std::invalid_argument(
            "PopulationStore::restore: snapshot node_offset "
            + std::to_string(snap.node_offset) + " != store node_offset "
            + std::to_string(node_offset_));
    salt_history_ = snap.salt_history;
    theta_ = snap.columns[0];
    data_size_ = snap.columns[1];
    category_ = snap.columns[2];
    bandwidth_ = snap.columns[3];
    cpu_ = snap.columns[4];
    data_cap_ = snap.columns[5];
    category_cap_ = snap.columns[6];
    bandwidth_cap_ = snap.columns[7];
    cpu_cap_ = snap.columns[8];
}

namespace {

void slice_into(const std::vector<double>& whole, std::size_t lo, std::size_t hi,
                std::vector<double>& out) {
    out.assign(whole.begin() + static_cast<std::ptrdiff_t>(lo),
               whole.begin() + static_cast<std::ptrdiff_t>(hi));
}

} // namespace

std::vector<PopulationStore>
PopulationStore::split(const std::vector<std::size_t>& boundaries) const {
    const std::size_t n = size();
    for (std::size_t b = 0; b < boundaries.size(); ++b) {
        if (boundaries[b] == 0 || boundaries[b] >= n)
            throw std::invalid_argument(
                "PopulationStore::split: boundary " + std::to_string(boundaries[b])
                + " outside (0, " + std::to_string(n) + ")");
        if (b > 0 && boundaries[b] <= boundaries[b - 1])
            throw std::invalid_argument(
                "PopulationStore::split: boundaries must be strictly increasing");
    }
    std::vector<PopulationStore> shards;
    shards.reserve(boundaries.size() + 1);
    std::size_t lo = 0;
    for (std::size_t b = 0; b <= boundaries.size(); ++b) {
        const std::size_t hi = b < boundaries.size() ? boundaries[b] : n;
        PopulationStore shard;
        shard.node_offset_ = node_offset_ + lo;
        shard.dynamics_ = dynamics_;
        shard.theta_lo_ = theta_lo_;
        shard.theta_hi_ = theta_hi_;
        slice_into(theta_, lo, hi, shard.theta_);
        slice_into(data_size_, lo, hi, shard.data_size_);
        slice_into(category_, lo, hi, shard.category_);
        slice_into(bandwidth_, lo, hi, shard.bandwidth_);
        slice_into(cpu_, lo, hi, shard.cpu_);
        slice_into(data_cap_, lo, hi, shard.data_cap_);
        slice_into(category_cap_, lo, hi, shard.category_cap_);
        slice_into(bandwidth_cap_, lo, hi, shard.bandwidth_cap_);
        slice_into(cpu_cap_, lo, hi, shard.cpu_cap_);
        shards.push_back(std::move(shard));
        lo = hi;
    }
    return shards;
}

std::vector<std::size_t> PopulationStore::even_boundaries(std::size_t size,
                                                          std::size_t num_shards) {
    if (num_shards == 0 || num_shards > size)
        throw std::invalid_argument("PopulationStore: num_shards = "
                                    + std::to_string(num_shards)
                                    + " must be in [1, size = " + std::to_string(size)
                                    + "]");
    const std::size_t base = size / num_shards;
    const std::size_t extra = size % num_shards;
    std::vector<std::size_t> cuts;
    cuts.reserve(num_shards - 1);
    std::size_t at = 0;
    for (std::size_t s = 0; s + 1 < num_shards; ++s) {
        at += base + (s < extra ? 1 : 0);
        cuts.push_back(at);
    }
    return cuts;
}

std::vector<PopulationStore> PopulationStore::split_even(std::size_t num_shards) const {
    return split(even_boundaries(size(), num_shards));
}

} // namespace fmore::mec
