#include "fmore/mec/stream_round.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace fmore::mec {

namespace {

struct Tick {
    double seconds = 0.0;
    std::uint64_t node = 0;
};

/// Arrival replay order: (seconds asc, node asc) — `ArrivalModel`'s sort.
bool earlier(const Tick& a, const Tick& b) {
    if (a.seconds != b.seconds) return a.seconds < b.seconds;
    return a.node < b.node;
}

} // namespace

StreamCloseDecision resolve_stream_close(std::size_t n, const Blacklist& banned,
                                         std::uint64_t arrival_salt,
                                         double horizon_s, double deadline_s,
                                         std::size_t quorum) {
    if (!(horizon_s > 0.0))
        throw std::invalid_argument("resolve_stream_close: horizon_s = "
                                    + std::to_string(horizon_s)
                                    + ": must be > 0");
    if (!(deadline_s >= 0.0))
        throw std::invalid_argument("resolve_stream_close: deadline_s must be >= 0");

    // One pass: count the eligible bids, the ones at or before the
    // deadline, the latest arrival, and (bounded heap) the first `quorum`
    // arrivals under the replay order.
    std::size_t eligible = 0;
    std::size_t by_deadline = 0;
    double last_s = 0.0;
    std::vector<Tick> first_q;
    first_q.reserve(quorum);
    for (std::size_t node = 0; node < n; ++node) {
        if (banned.contains(node)) continue;
        const double sec = stream_arrival_s(arrival_salt, node, horizon_s);
        ++eligible;
        if (deadline_s <= 0.0 || sec <= deadline_s) ++by_deadline;
        if (eligible == 1 || sec > last_s) last_s = sec;
        if (quorum > 0) {
            // Keep the q EARLIEST arrivals: a max-heap under the replay
            // order, root = latest kept, displaced by any earlier tick.
            const Tick tick{sec, node};
            if (first_q.size() < quorum) {
                first_q.push_back(tick);
                std::push_heap(first_q.begin(), first_q.end(), earlier);
            } else if (earlier(tick, first_q.front())) {
                std::pop_heap(first_q.begin(), first_q.end(), earlier);
                first_q.back() = tick;
                std::push_heap(first_q.begin(), first_q.end(), earlier);
            }
        }
    }

    StreamCloseDecision close;
    if (quorum > 0 && eligible >= quorum) {
        // The quorum-filling arrival, i.e. the q-th under the replay order
        // (the heap root). The market checks quorum on accept, so it fires
        // only when that arrival itself is not past the deadline.
        const Tick& qth = first_q.front();
        if (deadline_s <= 0.0 || qth.seconds <= deadline_s) {
            close.reason = auction::CloseReason::quorum;
            close.close_time_s = qth.seconds;
            close.boundary_node = qth.node;
            close.arrived = quorum;
            return close;
        }
    }
    if (deadline_s > 0.0 && by_deadline < eligible) {
        close.reason = auction::CloseReason::deadline;
        close.close_time_s = deadline_s;
        close.arrived = by_deadline;
        return close;
    }
    close.reason = auction::CloseReason::exhausted;
    close.close_time_s = eligible > 0 ? last_s : 0.0;
    close.arrived = eligible;
    return close;
}

} // namespace fmore::mec
