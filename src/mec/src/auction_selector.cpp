#include "fmore/mec/auction_selector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "fmore/util/thread_pool.hpp"

namespace fmore::mec {

namespace {

double resource_value(const ResourceState& r, ResourceDim dim) {
    switch (dim) {
        case ResourceDim::data_size: return r.data_size;
        case ResourceDim::category_proportion: return r.category_proportion;
        case ResourceDim::bandwidth: return r.bandwidth_mbps;
        case ResourceDim::cpu: return r.cpu_cores;
    }
    throw std::logic_error("AuctionSelector: unknown ResourceDim");
}

/// Nodes per parallel collect task (same granularity as the store's
/// evolve chunks).
constexpr std::size_t kCollectChunk = 4096;

bool legacy_path_forced() {
    const char* env = std::getenv("FMORE_BID_PATH");
    return env != nullptr && std::string_view(env) == "legacy";
}

} // namespace

QualitySource::QualitySource(QualityLayout layout) : layout(std::move(layout)) {
    const QualityLayout& dims = this->layout;
    fn = [dims](const ResourceState& r) {
        auction::QualityVector q(dims.size());
        for (std::size_t d = 0; d < dims.size(); ++d) q[d] = resource_value(r, dims[d]);
        return q;
    };
}

QualitySource::QualitySource(QualityExtractor fn) : fn(std::move(fn)) {}

QualitySource data_category_extractor() {
    return QualitySource(
        QualityLayout{ResourceDim::data_size, ResourceDim::category_proportion});
}

QualitySource cpu_bandwidth_data_extractor() {
    return QualitySource(
        QualityLayout{ResourceDim::cpu, ResourceDim::bandwidth, ResourceDim::data_size});
}

AuctionSelector::AuctionSelector(MecPopulation& population,
                                 const auction::ScoringRule& scoring,
                                 const auction::EquilibriumStrategy& strategy,
                                 auction::WinnerDeterminationConfig wd_config,
                                 QualitySource source, std::size_t data_dimension,
                                 auction::PaymentMethod payment_method)
    : population_(population),
      scoring_(scoring),
      strategy_(strategy),
      wd_config_(std::move(wd_config)),
      layout_(std::move(source.layout)),
      extractor_(std::move(source.fn)),
      data_dimension_(data_dimension),
      payment_method_(payment_method) {
    if (!extractor_) throw std::invalid_argument("AuctionSelector: null extractor");
    if (!layout_.empty() && layout_.size() != strategy_.dimensions())
        throw std::logic_error("AuctionSelector: extractor/strategy dimension mismatch");
    fused_path_ = !layout_.empty() && !legacy_path_forced();
    strategy_scores_broadcast_rule_ = strategy_.scoring_rule() == &scoring_;
}

AuctionSelector::AuctionSelector(MecPopulation& population,
                                 const auction::ScoringRule& scoring,
                                 const auction::EquilibriumStrategy& strategy,
                                 auction::WinnerDeterminationConfig wd_config,
                                 QualityExtractor extractor, std::size_t data_dimension,
                                 auction::PaymentMethod payment_method)
    : AuctionSelector(population, scoring, strategy, std::move(wd_config),
                      QualitySource(std::move(extractor)), data_dimension,
                      payment_method) {}

void collect_bid_rows(const PopulationStore& store, std::size_t lo, std::size_t hi,
                      const QualityLayout& layout,
                      const auction::EquilibriumStrategy& strategy,
                      const auction::ScoringRule& scoring,
                      bool strategy_scores_broadcast_rule,
                      auction::PaymentMethod payment_method, const Blacklist& blacklist,
                      auction::BidFrame& frame, std::size_t frame_base,
                      std::vector<const double*>& columns, bool parallel) {
    const std::size_t dims = layout.size();
    // Column pointers resolved once per round; the chunk loop below then
    // touches only contiguous memory. Caller-owned (not a local
    // thread_local!) so pool workers see the populated buffer — lambdas do
    // not capture thread-storage variables, each thread would resolve its
    // own empty instance — and its capacity survives across rounds.
    columns.clear();
    for (const ResourceDim dim : layout) columns.push_back(store.column(dim).data());
    const std::vector<const double*>& cols = columns;

    const auto collect_node = [&](std::size_t i) {
        const std::size_t row = frame_base + (i - lo);
        if (blacklist.contains(store.node_offset() + i)) {
            frame.set_active(row, false);
            return;
        }
        double* q = frame.quality_row(row);
        const double theta = store.theta(i);
        strategy.quality_into(theta, q);
        for (std::size_t d = 0; d < dims; ++d) {
            if (q[d] > cols[d][i]) q[d] = cols[d][i];
        }
        // One pass over q prices the bid and yields s(q); the aggregator
        // score S = s(q) - p lands in the frame's score column, so ranking
        // streams one double per row instead of re-reading N×d qualities.
        // The quote's s(q) doubles as the aggregator score only when the
        // strategy was solved against the selector's broadcast rule
        // (always true for the trial engines); otherwise score with the
        // broadcast rule explicitly so fused and classic ranking agree.
        const auction::EquilibriumStrategy::SealedQuote quote =
            strategy.quote_span(q, dims, theta, payment_method);
        frame.payment(row) = quote.payment;
        frame.score(row) = strategy_scores_broadcast_rule
                               ? quote.quality_score - quote.payment
                               : scoring.score_span(q, dims, quote.payment);
    };

    const std::size_t n = hi - lo;
    const std::size_t chunks = (n + kCollectChunk - 1) / kCollectChunk;
    const std::size_t workers =
        (!parallel || chunks <= 1) ? 1 : util::resolve_round_threads(0, chunks);
    if (workers <= 1) {
        for (std::size_t i = lo; i < hi; ++i) collect_node(i);
    } else {
        util::ThreadPool::shared().parallel_for(
            chunks, workers - 1, [&](std::size_t, std::size_t chunk) {
                const std::size_t clo = lo + chunk * kCollectChunk;
                const std::size_t chi = std::min(hi, clo + kCollectChunk);
                for (std::size_t i = clo; i < chi; ++i) collect_node(i);
            });
    }
}

fl::SelectionRecord assemble_selection_record(
    const auction::AuctionOutcome& outcome, std::size_t population_size,
    const std::function<double(auction::NodeId)>& promised_quality,
    const ComplianceSpec& compliance, Blacklist& blacklist, stats::Rng& rng) {
    fl::SelectionRecord record;
    record.all_scores.reserve(outcome.ranking.size());
    record.scores_by_node.assign(population_size, 0.0);
    for (const auction::ScoredBid& sb : outcome.ranking) {
        record.all_scores.push_back(sb.score);
        record.scores_by_node[sb.bid.node] = sb.score;
    }
    for (const auction::Winner& w : outcome.winners) {
        fl::SelectedClient sel;
        sel.client = w.node;
        sel.payment = w.payment;
        sel.score = w.score;
        if (promised_quality) {
            const std::size_t promised = static_cast<std::size_t>(
                std::max(1.0, std::floor(promised_quality(w.node))));
            // Contract compliance: defectors deliver less than they bid and
            // are banned from future rounds once the shortfall is observed.
            const ComplianceOutcome outcome_c = roll_compliance(compliance, promised, rng);
            if (outcome_c.defected) blacklist.ban(w.node);
            sel.train_samples = outcome_c.delivered_samples;
        }
        record.selected.push_back(sel);
    }
    return record;
}

void AuctionSelector::collect_frame() {
    const PopulationStore& store = population_.store();
    frame_.reset(store.size(), layout_.size());
    collect_bid_rows(store, 0, store.size(), layout_, strategy_, scoring_,
                     strategy_scores_broadcast_rule_, payment_method_, blacklist_,
                     frame_, 0, columns_, /*parallel=*/true);
    frame_.set_scored(true);
}

void AuctionSelector::run_fused_round(std::size_t k, stats::Rng& rng) {
    collect_frame();
    // The mechanism is pure configuration — rebuild only when K changes
    // (in practice: once), not on every call like the classic path did.
    if (!mechanism_ || mechanism_k_ != k) {
        auction::WinnerDeterminationConfig wd = wd_config_;
        wd.num_winners = k;
        mechanism_ = auction::make_mechanism(wd);
        mechanism_k_ = k;
    }
    // The outcome-level virtual keeps custom mechanisms — including ones
    // that override run() wholesale — semantically exact on frame rounds.
    mechanism_->run_frame(scoring_, frame_, rng, scratch_, outcome_);
    last_bids_stale_ = true;
}

void AuctionSelector::run_classic_round(std::size_t k, stats::Rng& rng) {
    const PopulationStore& store = population_.store();
    last_bids_.clear();
    last_bids_.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
        // Blacklisted defaulters are shut out of bid collection.
        if (blacklist_.contains(i)) continue;
        const auction::QualityVector available = extractor_(store.resources(i));
        auction::QualityVector q = strategy_.quality(store.theta(i));
        if (q.size() != available.size())
            throw std::logic_error("AuctionSelector: extractor/strategy dimension mismatch");
        for (std::size_t d = 0; d < q.size(); ++d) q[d] = std::min(q[d], available[d]);
        const double p = strategy_.payment_for(q, store.theta(i), payment_method_);
        last_bids_.push_back(auction::Bid{i, std::move(q), p});
    }
    auction::WinnerDeterminationConfig wd = wd_config_;
    wd.num_winners = k;
    const auction::WinnerDetermination determination(scoring_, wd);
    outcome_ = determination.run(last_bids_, rng);
    last_bids_stale_ = false;
}

const auction::AuctionOutcome& AuctionSelector::run_auction_round(std::size_t round,
                                                                  std::size_t k,
                                                                  stats::Rng& rng) {
    // Round 1 bids on the initial resource state; drift applies afterwards.
    if (round > 1) population_.evolve(rng);
    if (fused_path_) {
        run_fused_round(k, rng);
    } else {
        run_classic_round(k, rng);
    }
    return outcome_;
}

const std::vector<auction::Bid>& AuctionSelector::last_bids() const {
    if (last_bids_stale_) {
        frame_.to_bids(last_bids_);
        last_bids_stale_ = false;
    }
    return last_bids_;
}

double AuctionSelector::bid_quality(auction::NodeId node, std::size_t dim) const {
    // Fused rounds keep every bid addressable by NodeId in the frame; the
    // classic path resolves winners through the bid list like it always
    // did (see select()).
    return frame_.quality_row(node)[dim];
}

fl::SelectionRecord AuctionSelector::select(std::size_t round, std::size_t k,
                                            stats::Rng& rng) {
    (void)run_auction_round(round, k, rng);

    std::function<double(auction::NodeId)> promised;
    std::vector<std::size_t> bid_of_node;
    if (data_dimension_ != npos) {
        if (fused_path_) {
            promised = [this](auction::NodeId node) {
                return bid_quality(node, data_dimension_);
            };
        } else {
            bid_of_node.assign(population_.size(), npos);
            for (std::size_t i = 0; i < last_bids_.size(); ++i) {
                bid_of_node[last_bids_[i].node] = i;
            }
            promised = [this, &bid_of_node](auction::NodeId node) {
                return last_bids_[bid_of_node[node]].quality[data_dimension_];
            };
        }
    }
    return assemble_selection_record(outcome_, population_.size(), promised,
                                     compliance_, blacklist_, rng);
}

} // namespace fmore::mec
