#include "fmore/mec/auction_selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::mec {

QualityExtractor data_category_extractor() {
    return [](const ResourceState& r) {
        return auction::QualityVector{r.data_size, r.category_proportion};
    };
}

QualityExtractor cpu_bandwidth_data_extractor() {
    return [](const ResourceState& r) {
        return auction::QualityVector{r.cpu_cores, r.bandwidth_mbps, r.data_size};
    };
}

AuctionSelector::AuctionSelector(MecPopulation& population,
                                 const auction::ScoringRule& scoring,
                                 const auction::EquilibriumStrategy& strategy,
                                 auction::WinnerDeterminationConfig wd_config,
                                 QualityExtractor extractor, std::size_t data_dimension,
                                 auction::PaymentMethod payment_method)
    : population_(population),
      scoring_(scoring),
      strategy_(strategy),
      wd_config_(wd_config),
      extractor_(std::move(extractor)),
      data_dimension_(data_dimension),
      payment_method_(payment_method) {
    if (!extractor_) throw std::invalid_argument("AuctionSelector: null extractor");
}

fl::SelectionRecord AuctionSelector::select(std::size_t round, std::size_t k,
                                            stats::Rng& rng) {
    // Round 1 bids on the initial resource state; drift applies afterwards.
    if (round > 1) population_.evolve(rng);

    last_bids_.clear();
    last_bids_.reserve(population_.size());
    for (const EdgeNode& node : population_.nodes()) {
        // Blacklisted defaulters are shut out of bid collection.
        if (blacklist_.contains(node.id())) continue;
        const auction::QualityVector available = extractor_(node.resources());
        auction::QualityVector q = strategy_.quality(node.theta());
        if (q.size() != available.size())
            throw std::logic_error("AuctionSelector: extractor/strategy dimension mismatch");
        for (std::size_t d = 0; d < q.size(); ++d) q[d] = std::min(q[d], available[d]);
        const double p = strategy_.payment_for(q, node.theta(), payment_method_);
        last_bids_.push_back(auction::Bid{node.id(), std::move(q), p});
    }

    auction::WinnerDeterminationConfig wd = wd_config_;
    wd.num_winners = k;
    const auction::WinnerDetermination determination(scoring_, wd);
    const auction::AuctionOutcome outcome = determination.run(last_bids_, rng);

    fl::SelectionRecord record;
    record.all_scores.reserve(outcome.ranking.size());
    record.scores_by_node.assign(population_.size(), 0.0);
    for (const auction::ScoredBid& sb : outcome.ranking) {
        record.all_scores.push_back(sb.score);
        record.scores_by_node[sb.bid.node] = sb.score;
    }
    std::vector<std::size_t> bid_of_node(population_.size(), npos);
    for (std::size_t i = 0; i < last_bids_.size(); ++i) {
        bid_of_node[last_bids_[i].node] = i;
    }
    for (const auction::Winner& w : outcome.winners) {
        fl::SelectedClient sel;
        sel.client = w.node;
        sel.payment = w.payment;
        sel.score = w.score;
        if (data_dimension_ != npos) {
            const auction::Bid& bid = last_bids_[bid_of_node[w.node]];
            std::size_t promised = static_cast<std::size_t>(
                std::max(1.0, std::floor(bid.quality[data_dimension_])));
            // Contract compliance: defectors deliver less than they bid and
            // are banned from future rounds once the shortfall is observed.
            const ComplianceOutcome outcome_c =
                roll_compliance(compliance_, promised, rng);
            if (outcome_c.defected) blacklist_.ban(w.node);
            sel.train_samples = outcome_c.delivered_samples;
        }
        record.selected.push_back(sel);
    }
    return record;
}

} // namespace fmore::mec
