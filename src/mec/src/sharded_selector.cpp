#include "fmore/mec/sharded_selector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <typeinfo>
#include <utility>

namespace fmore::mec {

ShardedAuctionSelector::ShardedAuctionSelector(MecPopulation& population,
                                               const auction::ScoringRule& scoring,
                                               const auction::EquilibriumStrategy& strategy,
                                               auction::WinnerDeterminationConfig wd_config,
                                               QualityLayout layout,
                                               std::size_t data_dimension,
                                               std::size_t num_shards,
                                               auction::PaymentMethod payment_method)
    : population_(&population),
      scoring_(scoring),
      strategy_(strategy),
      wd_config_(std::move(wd_config)),
      layout_(std::move(layout)),
      data_dimension_(data_dimension),
      payment_method_(payment_method) {
    init_shards_from_boundaries(population.store(), num_shards);
    validate_config();
}

ShardedAuctionSelector::ShardedAuctionSelector(std::vector<PopulationStore> shards,
                                               const auction::ScoringRule& scoring,
                                               const auction::EquilibriumStrategy& strategy,
                                               auction::WinnerDeterminationConfig wd_config,
                                               QualityLayout layout,
                                               std::size_t data_dimension,
                                               auction::PaymentMethod payment_method)
    : owned_(std::move(shards)),
      scoring_(scoring),
      strategy_(strategy),
      wd_config_(std::move(wd_config)),
      layout_(std::move(layout)),
      data_dimension_(data_dimension),
      payment_method_(payment_method) {
    if (owned_.empty())
        throw std::invalid_argument("ShardedAuctionSelector: no shard stores");
    // Contiguity: together the shards must tile [0, N) in order — that is
    // what makes "the same market, sharded" a meaningful claim.
    std::size_t expect = 0;
    for (const PopulationStore& shard : owned_) {
        if (shard.size() == 0)
            throw std::invalid_argument("ShardedAuctionSelector: empty shard store");
        if (shard.node_offset() != expect)
            throw std::invalid_argument(
                "ShardedAuctionSelector: shard at offset "
                + std::to_string(shard.node_offset()) + " expected at "
                + std::to_string(expect) + " (shards must tile [0, N) contiguously)");
        expect += shard.size();
    }
    shards_.reserve(owned_.size());
    starts_.reserve(owned_.size() + 1);
    for (const PopulationStore& shard : owned_) {
        starts_.push_back(shard.node_offset());
        shards_.push_back(Range{&shard, 0, shard.size(), shard.node_offset()});
    }
    starts_.push_back(expect);
    validate_config();
}

void ShardedAuctionSelector::init_shards_from_boundaries(const PopulationStore& store,
                                                         std::size_t num_shards) {
    const std::vector<std::size_t> cuts =
        PopulationStore::even_boundaries(store.size(), num_shards);
    shards_.reserve(num_shards);
    starts_.reserve(num_shards + 1);
    std::size_t lo = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
        const std::size_t hi = s + 1 < num_shards ? cuts[s] : store.size();
        shards_.push_back(Range{&store, lo, hi, store.node_offset() + lo});
        starts_.push_back(store.node_offset() + lo);
        lo = hi;
    }
    starts_.push_back(store.node_offset() + store.size());
}

void ShardedAuctionSelector::validate_config() {
    if (layout_.empty())
        throw std::invalid_argument(
            "ShardedAuctionSelector: a quality column layout is required (custom "
            "extractors cannot be pushed down to shards)");
    if (layout_.size() != strategy_.dimensions())
        throw std::logic_error(
            "ShardedAuctionSelector: layout/strategy dimension mismatch");
    strategy_scores_broadcast_rule_ = strategy_.scoring_rule() == &scoring_;
}

void ShardedAuctionSelector::set_shard_timeout(double seconds) {
    if (!(seconds >= 0.0) || std::isinf(seconds))
        throw std::invalid_argument("ShardedAuctionSelector: shard timeout = "
                                    + std::to_string(seconds)
                                    + ": must be finite and >= 0 (0 disables it)");
    shard_timeout_s_ = seconds;
}

void ShardedAuctionSelector::evolve_shards(stats::Rng& rng) {
    // ONE salt for the whole market (exactly the draw the monolithic
    // `MecPopulation::evolve` consumes); per-node streams are keyed by
    // global id, so every shard — and the view-mode population itself —
    // drifts bit-identically to the unsplit store. Dropped shards evolve
    // too: a slow shard's nodes keep living, they just miss the deadline.
    const std::uint64_t salt = rng.engine()();
    if (population_ != nullptr) {
        population_->evolve_with_salt(salt);
    } else {
        for (PopulationStore& shard : owned_) shard.evolve_with_salt(salt);
    }
}

void ShardedAuctionSelector::refresh_dropped(std::size_t round) {
    last_dropped_.clear();
    dropped_flag_.assign(shards_.size(), 0);
    if (shard_timeout_s_ > 0.0 && latency_) {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (latency_(s, round) > shard_timeout_s_) {
                dropped_flag_[s] = 1;
                last_dropped_.push_back(s);
            }
        }
    }
    const std::size_t live = shards_.size() - last_dropped_.size();
    if (min_live_shards_ > 0 && live < min_live_shards_)
        throw std::runtime_error(
            "ShardedAuctionSelector: round " + std::to_string(round) + ": only "
            + std::to_string(live) + " of " + std::to_string(shards_.size())
            + " shards made the " + std::to_string(shard_timeout_s_)
            + "s deadline, below the configured quorum of "
            + std::to_string(min_live_shards_)
            + " (auction.shard_quorum) — raise auction.shard_timeout_s, lower "
              "the quorum, or fix the failing shards");
}

const auction::Mechanism* ShardedAuctionSelector::mechanism_for(std::size_t k) {
    if (!mechanism_ || mechanism_k_ != k) {
        auction::WinnerDeterminationConfig wd = wd_config_;
        wd.num_winners = k;
        mechanism_ = auction::make_mechanism(wd);
        mechanism_k_ = k;
    }
    return mechanism_.get();
}

void ShardedAuctionSelector::run_fused_sharded(
    const auction::ScoreAuctionMechanism& engine, std::size_t k, stats::Rng& rng) {
    (void)k;
    const std::size_t dims = layout_.size();
    frames_.resize(shards_.size());
    heads_.resize(shards_.size());

    // Per-shard collect: the same fused pass the monolithic selector runs,
    // restricted to the shard's rows.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (dropped_flag_[s] != 0) continue;
        const Range& shard = shards_[s];
        frames_[s].reset(shard.hi - shard.lo, dims);
        collect_bid_rows(*shard.store, shard.lo, shard.hi, layout_, strategy_, scoring_,
                         strategy_scores_broadcast_rule_, payment_method_, blacklist_,
                         frames_[s], 0, columns_, /*parallel=*/true);
        frames_[s].set_scored(true);
    }

    // Tie-break keys and the active count. The active set is exactly "not
    // blacklisted" — a fact the coordinator owns — so it is derivable
    // without any shard data, which is what lets shuffle mode replay the
    // monolithic round's global permutation (same length, same generator
    // draws) even when a shard misses the deadline.
    auction::TieKeys keys;
    std::size_t m = 0;
    const bool salted = engine.spec().tie_break == auction::TieBreak::salted;
    if (salted) {
        keys.salted = true;
        keys.salt = rng.engine()();
        for (std::size_t g = 0; g < starts_.back(); ++g) {
            if (!blacklist_.contains(g)) ++m;
        }
    } else {
        if (starts_.back() > UINT32_MAX)
            throw std::invalid_argument(
                "ShardedAuctionSelector: more than 2^32 rows (use TieBreak::salted)");
        active_.clear();
        for (std::size_t g = 0; g < starts_.back(); ++g) {
            if (!blacklist_.contains(g)) active_.push_back(g);
        }
        m = active_.size();
        order_.assign(active_.begin(), active_.end());
        rng.shuffle(order_);
        pos_.resize(starts_.back());
        for (std::size_t j = 0; j < m; ++j)
            pos_[order_[j]] = static_cast<std::uint32_t>(j);
        keys.pos = pos_.data();
    }

    // One cutoff rule for shards and coordinator: per-shard heads are
    // bounded by the GLOBAL cutoff, so their union provably contains the
    // global head (see shard_merge.hpp).
    const std::size_t cutoff = engine.ranking_cutoff(m);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        heads_[s].clear();
        if (dropped_flag_[s] != 0) continue;
        auction::collect_shard_head(frames_[s], shards_[s].base, keys, cutoff,
                                    heads_[s]);
    }
    auction::merge_heads(heads_, cutoff, outcome_.ranking);

    // Selection and pricing run coordinator-side on the merged head — the
    // same entries, hence the same generator draws, as the monolithic
    // round.
    engine.select_into(outcome_.ranking, rng, scratch_.chosen);
    engine.price_into(scoring_, outcome_.ranking, scratch_.chosen, outcome_.winners);
}

void ShardedAuctionSelector::run_gathered(const auction::Mechanism& mechanism,
                                          stats::Rng& rng) {
    // Gather lane: reassemble the global frame and let the mechanism's own
    // run_frame drive the round — exact semantics for any registered
    // mechanism, including wholesale run() overrides, at O(N) shipping
    // cost. Only the exact built-in engine gets the bounded-head fast lane.
    const std::size_t n = starts_.back();
    gather_frame_.reset(n, layout_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Range& shard = shards_[s];
        if (dropped_flag_[s] != 0) {
            for (std::size_t g = starts_[s]; g < starts_[s + 1]; ++g)
                gather_frame_.set_active(g, false);
            continue;
        }
        collect_bid_rows(*shard.store, shard.lo, shard.hi, layout_, strategy_, scoring_,
                         strategy_scores_broadcast_rule_, payment_method_, blacklist_,
                         gather_frame_, shard.base, columns_, /*parallel=*/true);
    }
    gather_frame_.set_scored(true);
    mechanism.run_frame(scoring_, gather_frame_, rng, scratch_, outcome_);
}

const auction::AuctionOutcome&
ShardedAuctionSelector::run_auction_round(std::size_t round, std::size_t k,
                                          stats::Rng& rng) {
    // Round 1 bids on the initial resource state; drift applies afterwards
    // (same convention as the monolithic selector).
    if (round > 1) evolve_shards(rng);
    refresh_dropped(round);
    const auction::Mechanism* mechanism = mechanism_for(k);
    const auto* engine = dynamic_cast<const auction::ScoreAuctionMechanism*>(mechanism);
    const bool exact =
        engine != nullptr && typeid(*mechanism) == typeid(auction::ScoreAuctionMechanism);
    gather_lane_ = !exact;
    if (exact) {
        run_fused_sharded(*engine, k, rng);
    } else {
        run_gathered(*mechanism, rng);
    }
    return outcome_;
}

double ShardedAuctionSelector::bid_quality(auction::NodeId node, std::size_t dim) const {
    if (gather_lane_) return gather_frame_.quality_row(node)[dim];
    // starts_ is sorted; find the shard whose range holds `node`.
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), node);
    const std::size_t s = static_cast<std::size_t>(it - starts_.begin()) - 1;
    return frames_[s].quality_row(node - shards_[s].base)[dim];
}

fl::SelectionRecord ShardedAuctionSelector::select(std::size_t round, std::size_t k,
                                                   stats::Rng& rng) {
    (void)run_auction_round(round, k, rng);
    std::function<double(auction::NodeId)> promised;
    if (data_dimension_ != npos) {
        promised = [this](auction::NodeId node) {
            return bid_quality(node, data_dimension_);
        };
    }
    fl::SelectionRecord record = assemble_selection_record(
        outcome_, starts_.back(), promised, compliance_, blacklist_, rng);
    record.dropped_shards = last_dropped_;
    record.shard_health.live_shards = shards_.size() - last_dropped_.size();
    return record;
}

} // namespace fmore::mec
