#include "fmore/mec/shard_aggregator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <typeinfo>
#include <utility>

#include "fmore/auction/mechanism.hpp"
#include "fmore/mec/blacklist.hpp"
#include "fmore/mec/stream_round.hpp"
#include "fmore/mec/wire_format.hpp"

namespace fmore::mec {

namespace {

using wire::FrameHeader;
using wire::FrameType;
using wire::ReadStatus;

/// Fixed-size request payload header; `num_banned` global node ids follow
/// inside the same frame.
struct RoundRequest {
    std::uint64_t round = 0;
    std::uint64_t k = 0;
    std::uint64_t evolve_salt = 0;
    std::uint64_t tie_salt = 0;
    std::uint64_t limit = 0;
    std::uint64_t num_banned = 0;
};

/// Streaming-round extension, between the RoundRequest and the banned ids
/// of a `stream_request` frame: the arrival clock and the
/// coordinator-resolved close cut (stream_round.hpp).
struct StreamExtra {
    std::uint64_t arrival_salt = 0;
    double horizon_s = 0.0;
    double close_time_s = 0.0;
    std::uint64_t boundary_node = kStreamBoundaryAny;
    std::uint64_t chunk_rows = 0;
};

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + size);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    append_bytes(out, &v, sizeof(v));
}

/// Writes to a peer that died must surface as EPIPE, not a fatal SIGPIPE —
/// eviction logic is the error handler. Installed once, and only when the
/// process has not set its own handler.
void ignore_sigpipe() {
    struct sigaction current {};
    if (::sigaction(SIGPIPE, nullptr, &current) == 0
        && current.sa_handler == SIG_DFL) {
        struct sigaction ignore {};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, nullptr);
    }
}

} // namespace

struct ProcessShardAggregator::Impl {
    const auction::ScoringRule& scoring;
    const auction::EquilibriumStrategy& strategy;
    auction::WinnerDeterminationConfig wd;
    QualityLayout layout;
    bool strategy_scores_broadcast_rule = false;
    double timeout_s = 0.0;
    std::size_t n = 0;
    ShardSupervisorConfig sup;

    struct Worker {
        pid_t pid = -1;
        int req_fd = -1;   ///< aggregator -> worker
        int resp_fd = -1;  ///< worker -> aggregator
        bool alive = false;
        bool retired = false;  ///< respawn budget exhausted — permanent
        std::size_t respawns = 0;
        /// First round index this worker may be re-forked at. Keyed to the
        /// ROUND counter, not wall-clock, so a fault plan's respawn
        /// schedule replays identically run-to-run under any machine load.
        std::size_t resume_round = 0;
    };
    std::vector<Worker> workers;
    /// Fork sources for respawn: the pristine round-0 shard splits. Empty
    /// when respawns are disabled (no memory retained).
    std::vector<PopulationStore> pristine;
    /// Drift salts of rounds 2..latest, in order — replaying them over a
    /// pristine shard reproduces the current shard state bit-exactly.
    std::vector<std::uint64_t> salt_history;
    /// Every ban ever shipped, in ship order (respawn sync).
    std::vector<auction::NodeId> all_bans;

    Blacklist banned_set;  ///< aggregator's view, for dedup and the m count
    std::vector<auction::NodeId> pending_bans;  ///< not yet shipped
    std::vector<std::size_t> last_dropped;
    std::size_t dead = 0;
    ShardHealth last_health;
    ShardHealth lifetime;
    /// Round being assembled — the eviction backoff's time base.
    std::size_t current_round = 0;
    /// Close telemetry of the most recent streaming round.
    StreamCloseDecision last_close;

    std::unique_ptr<auction::Mechanism> mechanism;
    std::size_t mechanism_k = static_cast<std::size_t>(-1);
    const auction::ScoreAuctionMechanism* engine = nullptr;
    std::vector<auction::ShardHead> heads;
    auction::RankScratch scratch;
    auction::AuctionOutcome outcome;

    Impl(const auction::ScoringRule& scoring_in,
         const auction::EquilibriumStrategy& strategy_in,
         auction::WinnerDeterminationConfig wd_in, QualityLayout layout_in,
         ShardSupervisorConfig sup_in)
        : scoring(scoring_in),
          strategy(strategy_in),
          wd(std::move(wd_in)),
          layout(std::move(layout_in)),
          sup(std::move(sup_in)) {}

    /// Idempotent fd close — a second eviction (or the destructor after
    /// one) must not close an unrelated fd that re-used the number.
    static void close_fds(Worker& w) {
        if (w.req_fd >= 0) ::close(w.req_fd);
        if (w.resp_fd >= 0) ::close(w.resp_fd);
        w.req_fd = -1;
        w.resp_fd = -1;
    }

    /// Round boundaries an evicted shard sits out before re-forking:
    /// ceil(backoff * 2^min(respawns, 6)). A pure function of the config
    /// and the shard's respawn count — the respawn schedule is part of the
    /// deterministic replay, unlike the wall-clock delay it replaces.
    std::size_t backoff_rounds(std::size_t attempt) const {
        if (!(sup.respawn_backoff_s > 0.0)) return 0;
        const double factor = static_cast<double>(1u << std::min<std::size_t>(attempt, 6));
        return static_cast<std::size_t>(std::ceil(sup.respawn_backoff_s * factor));
    }

    void evict(std::size_t s) {
        Worker& w = workers[s];
        if (!w.alive) return;
        // A half-read pipe cannot be resynchronized mid-round: kill, close,
        // reap. The supervisor may re-fork the shard at a later round
        // boundary and re-sync it from the salt history.
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            int status = 0;
            ::waitpid(w.pid, &status, 0);
        }
        close_fds(w);
        w.alive = false;
        w.pid = -1;
        ++dead;
        ++last_health.evictions;
        if (sup.max_respawns > 0)
            w.resume_round = current_round + 1 + backoff_rounds(w.respawns);
    }

    /// Supervisor pass at a round boundary: re-fork eligible evicted
    /// workers and re-sync them from the salt history + ban list.
    void respawn_pass(std::size_t round) {
        if (sup.max_respawns == 0) return;
        for (std::size_t s = 0; s < workers.size(); ++s) {
            Worker& w = workers[s];
            if (w.alive || w.retired) continue;
            if (w.respawns >= sup.max_respawns) {
                w.retired = true;
                continue;
            }
            if (round < w.resume_round) continue;
            if (!spawn(s)) {
                w.retired = true;
                continue;
            }
            ++w.respawns;
            ++last_health.respawns;
            if (!sync_worker(s)) evict(s);
        }
    }

    bool spawn(std::size_t s);
    bool sync_worker(std::size_t s);

    const auction::ScoreAuctionMechanism* engine_for(std::size_t k) {
        if (!mechanism || mechanism_k != k) {
            auction::WinnerDeterminationConfig with_k = wd;
            with_k.num_winners = k;
            mechanism = auction::make_mechanism(with_k);
            mechanism_k = k;
            if (typeid(*mechanism) != typeid(auction::ScoreAuctionMechanism))
                throw std::invalid_argument(
                    "ProcessShardAggregator: spec resolves to mechanism '"
                    + mechanism->name()
                    + "', not the exact built-in score-auction engine the shard "
                      "workers replicate");
            engine = static_cast<const auction::ScoreAuctionMechanism*>(mechanism.get());
        }
        return engine;
    }
};

namespace {

/// Everything a forked worker runs: the per-shard half of each round, over
/// the shard store it inherited at fork time. Serial on purpose — the
/// parent's thread pool does not survive fork, and
/// FMORE_ROUND_THREADS=1 keeps every parallel_for entry point on its
/// serial branch.
[[noreturn]] void worker_main(int req_fd, int resp_fd, PopulationStore shard,
                              const auction::ScoringRule& scoring,
                              const auction::EquilibriumStrategy& strategy,
                              const QualityLayout& layout,
                              bool strategy_scores_broadcast_rule,
                              auction::PaymentMethod payment_method,
                              std::size_t shard_index,
                              const util::FaultInjector& faults) {
    ::setenv("FMORE_ROUND_THREADS", "1", 1);
    ::signal(SIGPIPE, SIG_IGN);
    Blacklist banned;
    auction::BidFrame frame;
    auction::ShardHead head;
    auction::ShardHead chunk;
    std::vector<const double*> columns;
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> clean;      ///< last good head bytes (resend)
    std::vector<std::uint8_t> corrupted;  ///< bit_flip scratch
    /// Streaming rounds: the clean wire bytes of every head chunk, kept
    /// until the next round so any chunk (and the tail of the stream) can
    /// answer a resend.
    std::vector<std::vector<std::uint8_t>> chunk_clean;

    const auto send_head_done = [&](int fd) {
        const std::uint64_t total = chunk_clean.size();
        return wire::write_frame(fd, FrameType::head_done, &total, sizeof(total));
    };

    for (;;) {
        FrameHeader h;
        switch (wire::read_frame(req_fd, h, payload)) {
            case ReadStatus::eof: ::_exit(0);      // aggregator gone
            case ReadStatus::timeout: ::_exit(0);  // unreachable (blocking)
            case ReadStatus::bad_header:
                ::_exit(2);  // stream desynced beyond recovery
            case ReadStatus::bad_payload:
                // Framed but corrupt: ask for a retransmission.
                if (!wire::write_frame(resp_fd, FrameType::nack, nullptr, 0))
                    ::_exit(0);
                continue;
            case ReadStatus::ok: break;
        }

        if (h.type == static_cast<std::uint32_t>(FrameType::sync)) {
            // Respawn re-sync: replay the drift-salt history over the
            // pristine shard, then the full ban list. Drift streams are
            // keyed by (salt, global id), so the replay lands on the exact
            // state of a worker that never died.
            const std::uint8_t* p = payload.data();
            std::uint64_t num_salts = 0;
            std::memcpy(&num_salts, p, sizeof(num_salts));
            p += sizeof(num_salts);
            for (std::uint64_t i = 0; i < num_salts; ++i) {
                std::uint64_t salt = 0;
                std::memcpy(&salt, p, sizeof(salt));
                p += sizeof(salt);
                shard.evolve_with_salt(salt);
            }
            std::uint64_t num_bans = 0;
            std::memcpy(&num_bans, p, sizeof(num_bans));
            p += sizeof(num_bans);
            for (std::uint64_t i = 0; i < num_bans; ++i) {
                auction::NodeId node{};
                std::memcpy(&node, p, sizeof(node));
                p += sizeof(node);
                banned.ban(node);
            }
            continue;
        }

        if (h.type == static_cast<std::uint32_t>(FrameType::resend)) {
            // The aggregator rejected uplink bytes; the cached clean copies
            // answer it (any injected wire fault fired on the first
            // transmission only). An 8-byte payload is a streaming-round
            // chunk index: replay the stream from that chunk on, head_done
            // included. Empty is the batch whole-head resend.
            if (payload.size() == sizeof(std::uint64_t)) {
                std::uint64_t from = 0;
                std::memcpy(&from, payload.data(), sizeof(from));
                for (std::uint64_t c = from; c < chunk_clean.size(); ++c) {
                    if (!wire::write_frame(resp_fd, FrameType::head_rows,
                                           chunk_clean[c].data(),
                                           chunk_clean[c].size()))
                        ::_exit(0);
                }
                if (!send_head_done(resp_fd)) ::_exit(0);
                continue;
            }
            if (!wire::write_frame(resp_fd, FrameType::head, clean.data(),
                                   clean.size()))
                ::_exit(0);
            continue;
        }

        const bool streaming =
            h.type == static_cast<std::uint32_t>(FrameType::stream_request);
        if (!streaming && h.type != static_cast<std::uint32_t>(FrameType::request))
            ::_exit(2);
        if (payload.size() < sizeof(RoundRequest)) ::_exit(2);
        RoundRequest req;
        std::memcpy(&req, payload.data(), sizeof(req));
        StreamExtra extra;
        std::size_t ban_at = sizeof(req);
        if (streaming) {
            if (payload.size() < sizeof(req) + sizeof(extra)) ::_exit(2);
            std::memcpy(&extra, payload.data() + sizeof(req), sizeof(extra));
            ban_at += sizeof(extra);
        }
        if (payload.size() < ban_at + req.num_banned * sizeof(auction::NodeId))
            ::_exit(2);
        const std::uint8_t* ban_bytes = payload.data() + ban_at;
        for (std::uint64_t i = 0; i < req.num_banned; ++i) {
            auction::NodeId node{};
            std::memcpy(&node, ban_bytes + i * sizeof(node), sizeof(node));
            banned.ban(node);
        }

        const util::FaultEvent fault = faults.event(shard_index, req.round);
        if (fault.kind == util::FaultKind::crash_before_reply) ::_exit(3);
        if ((fault.kind == util::FaultKind::stall
             || fault.kind == util::FaultKind::delayed_reply)
            && fault.seconds > 0.0)
            ::usleep(static_cast<useconds_t>(fault.seconds * 1e6));

        if (req.round > 1) shard.evolve_with_salt(req.evolve_salt);

        frame.reset(shard.size(), layout.size());
        collect_bid_rows(shard, 0, shard.size(), layout, strategy, scoring,
                         strategy_scores_broadcast_rule, payment_method, banned, frame,
                         0, columns, /*parallel=*/false);
        frame.set_scored(true);

        if (streaming) {
            // Filter the collected bids against the coordinator-resolved
            // close cut: a bid outside (close_time, boundary) never made
            // the round. Arrival times are pure in (salt, global id), so
            // this is the same arrived set every other party computes.
            for (auction::NodeId row = 0; row < frame.rows(); ++row) {
                if (!frame.active(row)) continue;
                const auction::NodeId global = shard.node_offset() + row;
                const double sec =
                    stream_arrival_s(extra.arrival_salt, global, extra.horizon_s);
                if (!stream_arrived(sec, global, extra.close_time_s,
                                    extra.boundary_node))
                    frame.set_active(row, false);
            }
        }

        auction::TieKeys keys;
        keys.salted = true;
        keys.salt = req.tie_salt;
        auction::collect_shard_head(frame, shard.node_offset(), keys, req.limit, head);

        if (streaming) {
            // Stream the head back in bounded `head_rows` chunks, each a
            // chunk index plus the ShardHead wire bytes of its row slice,
            // closed by a `head_done`. Clean bytes are cached per chunk so
            // a corrupt transmission is recoverable chunk-by-chunk.
            const std::size_t per = extra.chunk_rows == 0
                                        ? head.rows.size()
                                        : static_cast<std::size_t>(extra.chunk_rows);
            chunk_clean.clear();
            for (std::size_t at = 0; at < head.rows.size(); at += per) {
                const std::size_t take = std::min(per, head.rows.size() - at);
                chunk.clear();
                chunk.dims = head.dims;
                chunk.rows.assign(head.rows.begin() + at,
                                  head.rows.begin() + at + take);
                chunk.quality.assign(head.quality.begin() + at * head.dims,
                                     head.quality.begin() + (at + take) * head.dims);
                std::vector<std::uint8_t> bytes;
                append_u64(bytes, chunk_clean.size());
                chunk.serialize(bytes);
                chunk_clean.push_back(std::move(bytes));
            }
            // Wire faults corrupt the FIRST chunk's transmission only —
            // the checksum must catch it and the chunk-level resend must
            // recover it without disturbing the rest of the stream.
            bool sent = true;
            for (std::size_t c = 0; c < chunk_clean.size() && sent; ++c) {
                const std::vector<std::uint8_t>& bytes = chunk_clean[c];
                if (c == 0 && fault.kind == util::FaultKind::truncated_write
                    && bytes.size() >= 2) {
                    sent = wire::write_frame_raw(
                        resp_fd, FrameType::head_rows, bytes.data(),
                        bytes.size() / 2, wire::crc32(bytes.data(), bytes.size()));
                } else if (c == 0 && fault.kind == util::FaultKind::bit_flip
                           && !bytes.empty()) {
                    corrupted = bytes;
                    corrupted[req.round % corrupted.size()] ^= 0x01;
                    sent = wire::write_frame_raw(
                        resp_fd, FrameType::head_rows, corrupted.data(),
                        corrupted.size(), wire::crc32(bytes.data(), bytes.size()));
                } else {
                    sent = wire::write_frame(resp_fd, FrameType::head_rows,
                                             bytes.data(), bytes.size());
                }
            }
            if (sent) sent = send_head_done(resp_fd);
            if (!sent) ::_exit(0);
            continue;
        }

        clean.clear();
        head.serialize(clean);

        // Wire faults corrupt the TRANSMISSION, never the cached state:
        // the aggregator's checksum must catch them, and the bounded
        // resend recovers the clean bytes.
        bool sent;
        if (fault.kind == util::FaultKind::truncated_write && clean.size() >= 2) {
            // Self-described-short frame: claims (and carries) half the
            // bytes under the full payload's CRC — framed, but corrupt.
            sent = wire::write_frame_raw(resp_fd, FrameType::head, clean.data(),
                                         clean.size() / 2,
                                         wire::crc32(clean.data(), clean.size()));
        } else if (fault.kind == util::FaultKind::bit_flip && !clean.empty()) {
            corrupted = clean;
            corrupted[req.round % corrupted.size()] ^= 0x01;
            sent = wire::write_frame_raw(resp_fd, FrameType::head, corrupted.data(),
                                         corrupted.size(),
                                         wire::crc32(clean.data(), clean.size()));
        } else {
            sent = wire::write_frame(resp_fd, FrameType::head, clean.data(),
                                     clean.size());
        }
        if (!sent) ::_exit(0);
    }
}

} // namespace

bool ProcessShardAggregator::Impl::spawn(std::size_t s) {
    int down[2];  // aggregator -> worker
    int up[2];    // worker -> aggregator
    if (::pipe(down) != 0) return false;
    if (::pipe(up) != 0) {
        ::close(down[0]);
        ::close(down[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(down[0]);
        ::close(down[1]);
        ::close(up[0]);
        ::close(up[1]);
        return false;
    }
    if (pid == 0) {
        // Worker: keep only its two pipe ends. Every sibling's inherited
        // fds MUST be closed, or this worker's copies of their request-pipe
        // write ends would keep those pipes open and break EOF-based
        // shutdown.
        ::close(down[1]);
        ::close(up[0]);
        for (const Worker& other : workers) {
            if (other.req_fd >= 0) ::close(other.req_fd);
            if (other.resp_fd >= 0) ::close(other.resp_fd);
        }
        worker_main(down[0], up[1], std::move(pristine[s]), scoring, strategy,
                    layout, strategy_scores_broadcast_rule,
                    auction::PaymentMethod::integral, s, sup.faults);
    }
    ::close(down[0]);
    ::close(up[1]);
    // Coordinator-side pipe ends are close-on-exec: a worker forked LATER
    // inherits only fds still open at ITS fork (the sibling-close loop in
    // the child handles those), but any exec'd child of the coordinator —
    // the crash harness re-launching itself, a user's system() — must not
    // inherit the market's pipes and silently hold EOF-based shutdown open.
    (void)::fcntl(down[1], F_SETFD, FD_CLOEXEC);
    (void)::fcntl(up[0], F_SETFD, FD_CLOEXEC);
    Worker& w = workers[s];
    w.pid = pid;
    w.req_fd = down[1];
    w.resp_fd = up[0];
    w.alive = true;
    return true;
}

bool ProcessShardAggregator::Impl::sync_worker(std::size_t s) {
    std::vector<std::uint8_t> payload;
    append_u64(payload, salt_history.size());
    for (const std::uint64_t salt : salt_history) append_u64(payload, salt);
    append_u64(payload, all_bans.size());
    if (!all_bans.empty())
        append_bytes(payload, all_bans.data(),
                     all_bans.size() * sizeof(auction::NodeId));
    return wire::write_frame(workers[s].req_fd, FrameType::sync, payload.data(),
                             payload.size());
}

ProcessShardAggregator::ProcessShardAggregator(
    const PopulationStore& store, const auction::ScoringRule& scoring,
    const auction::EquilibriumStrategy& strategy,
    auction::WinnerDeterminationConfig wd_config, QualityLayout layout,
    std::size_t num_shards, double shard_timeout_s, ShardSupervisorConfig supervisor)
    : impl_(std::make_unique<Impl>(scoring, strategy, std::move(wd_config),
                                   std::move(layout), std::move(supervisor))) {
    if (impl_->wd.tie_break != auction::TieBreak::salted)
        throw std::invalid_argument(
            "ProcessShardAggregator: requires TieBreak::salted (a shuffle "
            "permutation cannot be shipped over the wire)");
    if (impl_->wd.psi < 1.0 || !impl_->wd.psi_per_node.empty())
        throw std::invalid_argument(
            "ProcessShardAggregator: psi-probabilistic acceptance walks the whole "
            "board and cannot run on bounded shard heads");
    if (impl_->wd.full_ranking)
        throw std::invalid_argument(
            "ProcessShardAggregator: full_ranking would ship every bid; use the "
            "in-process ShardedAuctionSelector for full boards");
    if (!(shard_timeout_s > 0.0) || std::isinf(shard_timeout_s))
        throw std::invalid_argument("ProcessShardAggregator: shard_timeout_s = "
                                    + std::to_string(shard_timeout_s)
                                    + ": must be finite and > 0");
    if (impl_->layout.empty()
        || impl_->layout.size() != impl_->strategy.dimensions())
        throw std::invalid_argument(
            "ProcessShardAggregator: quality layout must be non-empty and match the "
            "strategy's dimensions");
    if (impl_->sup.min_live_shards > num_shards)
        throw std::invalid_argument(
            "ProcessShardAggregator: min_live_shards = "
            + std::to_string(impl_->sup.min_live_shards) + " exceeds num_shards = "
            + std::to_string(num_shards));
    if (!(impl_->sup.respawn_backoff_s >= 0.0)
        || std::isinf(impl_->sup.respawn_backoff_s))
        throw std::invalid_argument(
            "ProcessShardAggregator: respawn_backoff_s must be finite and >= 0");
    impl_->timeout_s = shard_timeout_s;
    impl_->n = store.size();
    impl_->strategy_scores_broadcast_rule =
        impl_->strategy.scoring_rule() == &impl_->scoring;
    // Fail on non-wire-friendly mechanism resolution before any fork.
    (void)impl_->engine_for(impl_->wd.num_winners == 0 ? 1 : impl_->wd.num_winners);
    ignore_sigpipe();

    impl_->pristine = store.split_even(num_shards);
    impl_->workers.resize(num_shards);
    impl_->heads.resize(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
        if (!impl_->spawn(s))
            throw std::runtime_error("ProcessShardAggregator: pipe()/fork() failed");
    }
    // Without a respawn budget the pristine splits are dead weight — the
    // legacy permanent-eviction mode keeps the legacy memory footprint.
    if (impl_->sup.max_respawns == 0) {
        impl_->pristine.clear();
        impl_->pristine.shrink_to_fit();
    }
}

ProcessShardAggregator::~ProcessShardAggregator() {
    if (!impl_) return;
    for (std::size_t s = 0; s < impl_->workers.size(); ++s) {
        Impl::Worker& w = impl_->workers[s];
        if (!w.alive) continue;
        // Closing the request pipe is the shutdown signal; workers exit on
        // EOF. Reap, then force the stragglers.
        if (w.req_fd >= 0) ::close(w.req_fd);
        w.req_fd = -1;
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == 0) {
            ::usleep(20000);
            if (::waitpid(w.pid, &status, WNOHANG) == 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &status, 0);
            }
        }
        Impl::close_fds(w);
        w.alive = false;
    }
}

const auction::AuctionOutcome& ProcessShardAggregator::run_round(std::size_t round,
                                                                 std::size_t k,
                                                                 stats::Rng& rng) {
    Impl& impl = *impl_;
    const auction::ScoreAuctionMechanism* engine = impl.engine_for(k);
    impl.last_health = ShardHealth{};
    impl.last_dropped.clear();
    impl.current_round = round;

    // Supervisor pass: re-fork eligible evicted workers and re-sync them
    // from the salt history + ban list, under capped round-indexed backoff.
    impl.respawn_pass(round);

    // Exactly the monolithic salted round's generator discipline: one
    // drift salt (round > 1), one tie salt — nothing else crosses the wire.
    RoundRequest req;
    req.round = round;
    req.k = k;
    req.evolve_salt = round > 1 ? rng.engine()() : 0;
    req.tie_salt = rng.engine()();
    req.num_banned = impl.pending_bans.size();
    const std::size_t m = impl.n - impl.banned_set.size();
    req.limit = engine->ranking_cutoff(m);
    if (round > 1) impl.salt_history.push_back(req.evolve_salt);

    std::vector<std::uint8_t> request;
    append_bytes(request, &req, sizeof(req));
    if (!impl.pending_bans.empty())
        append_bytes(request, impl.pending_bans.data(),
                     impl.pending_bans.size() * sizeof(auction::NodeId));
    impl.all_bans.insert(impl.all_bans.end(), impl.pending_bans.begin(),
                         impl.pending_bans.end());
    impl.pending_bans.clear();

    // Ship all requests first so workers overlap, then collect responses.
    for (std::size_t s = 0; s < impl.workers.size(); ++s) {
        Impl::Worker& w = impl.workers[s];
        if (!w.alive) {
            impl.last_dropped.push_back(s);  // dead/backoff/retired: no head
            continue;
        }
        if (!wire::write_frame(w.req_fd, FrameType::request, request.data(),
                               request.size())) {
            impl.evict(s);
            impl.last_dropped.push_back(s);
        }
    }

    std::vector<std::uint8_t> payload;
    for (std::size_t s = 0; s < impl.workers.size(); ++s) {
        impl.heads[s].clear();
        Impl::Worker& w = impl.workers[s];
        if (!w.alive) continue;
        const auto deadline =
            std::chrono::steady_clock::now()
            + std::chrono::microseconds(
                static_cast<long long>(impl.timeout_s * 1e6));
        // One bounded retry: a corrupt-but-framed reply (bad payload CRC,
        // or a nack for a corrupt request) is re-requested once; any second
        // failure — or an unframed one (timeout, EOF, bad header) — evicts.
        bool retried = false;
        bool got_head = false;
        while (!got_head) {
            FrameHeader h;
            const ReadStatus rs =
                wire::read_frame_deadline(w.resp_fd, h, payload, deadline);
            if (rs == ReadStatus::ok
                && h.type == static_cast<std::uint32_t>(FrameType::head)) {
                try {
                    impl.heads[s] =
                        auction::ShardHead::deserialize(payload.data(), payload.size());
                    got_head = true;
                    continue;
                } catch (const std::exception&) {
                    // Checksummed yet malformed — a worker bug, not line
                    // noise; a retry would resend the same bytes.
                    break;
                }
            }
            if (rs == ReadStatus::bad_payload
                || (rs == ReadStatus::ok
                    && h.type == static_cast<std::uint32_t>(FrameType::nack))) {
                ++impl.last_health.corrupt_frames;
                if (!retried) {
                    retried = true;
                    ++impl.last_health.frame_retries;
                    const bool resent =
                        rs == ReadStatus::bad_payload
                            ? wire::write_frame(w.req_fd, FrameType::resend, nullptr, 0)
                            : wire::write_frame(w.req_fd, FrameType::request,
                                                request.data(), request.size());
                    if (resent) continue;
                }
            }
            break;  // timeout, EOF, bad header, second corruption, ...
        }
        if (!got_head) {
            impl.evict(s);
            impl.last_dropped.push_back(s);
        }
    }
    std::sort(impl.last_dropped.begin(), impl.last_dropped.end());

    std::size_t live = 0;
    for (const Impl::Worker& w : impl.workers) live += w.alive ? 1 : 0;
    impl.last_health.live_shards = live;
    impl.lifetime.live_shards = live;
    impl.lifetime.corrupt_frames += impl.last_health.corrupt_frames;
    impl.lifetime.frame_retries += impl.last_health.frame_retries;
    impl.lifetime.evictions += impl.last_health.evictions;
    impl.lifetime.respawns += impl.last_health.respawns;
    if (impl.sup.min_live_shards > 0 && live < impl.sup.min_live_shards)
        throw std::runtime_error(
            "ProcessShardAggregator: round " + std::to_string(round) + ": only "
            + std::to_string(live) + " of " + std::to_string(impl.workers.size())
            + " shard workers are live, below the configured quorum of "
            + std::to_string(impl.sup.min_live_shards)
            + " (auction.shard_quorum) — raise auction.shard_max_respawns / "
              "auction.shard_timeout_s, lower the quorum, or investigate the "
              "evictions recorded in lifetime_health()");

    auction::merge_heads(impl.heads, req.limit, impl.outcome.ranking);
    engine->select_into(impl.outcome.ranking, rng, impl.scratch.chosen);
    engine->price_into(impl.scoring, impl.outcome.ranking, impl.scratch.chosen,
                       impl.outcome.winners);
    return impl.outcome;
}

const auction::AuctionOutcome& ProcessShardAggregator::run_streaming_round(
    std::size_t round, std::size_t k, const StreamRoundPolicy& policy,
    stats::Rng& rng) {
    Impl& impl = *impl_;
    if (!(policy.arrival_horizon_s > 0.0) || std::isinf(policy.arrival_horizon_s))
        throw std::invalid_argument(
            "ProcessShardAggregator: arrival_horizon_s = "
            + std::to_string(policy.arrival_horizon_s)
            + ": must be finite and > 0");
    if (!(policy.deadline_s >= 0.0) || std::isinf(policy.deadline_s))
        throw std::invalid_argument(
            "ProcessShardAggregator: deadline_s must be finite and >= 0");
    const auction::ScoreAuctionMechanism* engine = impl.engine_for(k);
    impl.last_health = ShardHealth{};
    impl.last_dropped.clear();
    impl.current_round = round;
    impl.respawn_pass(round);

    // The streaming round's generator discipline: one drift salt
    // (round > 1), one tie salt, one arrival salt — the in-process twin
    // consumes exactly the same three draws.
    RoundRequest req;
    req.round = round;
    req.k = k;
    req.evolve_salt = round > 1 ? rng.engine()() : 0;
    req.tie_salt = rng.engine()();
    const std::uint64_t arrival_salt = rng.engine()();
    if (round > 1) impl.salt_history.push_back(req.evolve_salt);

    // Arrival times are independent of bid values, so the close trigger is
    // resolved HERE, before any head byte moves — and the cut rides the
    // request down so every worker filters the same arrived set.
    impl.last_close =
        resolve_stream_close(impl.n, impl.banned_set, arrival_salt,
                             policy.arrival_horizon_s, policy.deadline_s,
                             policy.quorum);
    req.limit = engine->ranking_cutoff(impl.last_close.arrived);
    req.num_banned = impl.pending_bans.size();

    StreamExtra extra;
    extra.arrival_salt = arrival_salt;
    extra.horizon_s = policy.arrival_horizon_s;
    extra.close_time_s = impl.last_close.close_time_s;
    extra.boundary_node = impl.last_close.boundary_node;
    extra.chunk_rows = policy.chunk_rows;

    std::vector<std::uint8_t> request;
    append_bytes(request, &req, sizeof(req));
    append_bytes(request, &extra, sizeof(extra));
    if (!impl.pending_bans.empty())
        append_bytes(request, impl.pending_bans.data(),
                     impl.pending_bans.size() * sizeof(auction::NodeId));
    impl.all_bans.insert(impl.all_bans.end(), impl.pending_bans.begin(),
                         impl.pending_bans.end());
    impl.pending_bans.clear();

    for (std::size_t s = 0; s < impl.workers.size(); ++s) {
        Impl::Worker& w = impl.workers[s];
        impl.heads[s].clear();  // per-shard fold accumulator (merge rebuilds)
        if (!w.alive) {
            impl.last_dropped.push_back(s);
            continue;
        }
        if (!wire::write_frame(w.req_fd, FrameType::stream_request,
                               request.data(), request.size())) {
            impl.evict(s);
            impl.last_dropped.push_back(s);
        }
    }

    // Fold every worker's chunk stream into the incremental merge AS THE
    // FRAMES LAND, all shards concurrently — one poll loop over the live
    // response pipes, one frame consumed per readiness. The bounded-heap
    // kept set is order-independent, so interleaving across shards (and
    // out-of-order resent tails) finishes bit-identically to whole-head
    // merging.
    const std::size_t dims = impl.layout.size();
    auction::StreamingHeadMerge merge;
    merge.open(dims, req.limit);

    const auto fold_chunk = [&](std::size_t s, const auction::ShardHead& c) {
        auction::ShardHead& acc = impl.heads[s];
        acc.dims = c.dims;
        for (std::size_t r = 0; r < c.rows.size(); ++r) {
            merge.ingest_row(c.rows[r], c.quality_row(r));
            acc.rows.push_back(c.rows[r]);
            acc.quality.insert(acc.quality.end(), c.quality_row(r),
                               c.quality_row(r) + c.dims);
        }
    };
    // An eviction mid-stream may have folded rows the round must now
    // forget: replay the merge over the surviving shards' accumulators.
    const auto rebuild_merge = [&] {
        merge.open(dims, req.limit);
        for (const auction::ShardHead& acc : impl.heads)
            for (std::size_t r = 0; r < acc.rows.size(); ++r)
                merge.ingest_row(acc.rows[r], acc.quality_row(r));
    };

    struct Stream {
        bool got_done = false;
        std::uint64_t total = 0;
        std::uint64_t received = 0;
        bool retried = false;
    };
    std::vector<Stream> st(impl.workers.size());
    const auto stream_done = [&](std::size_t s) {
        return st[s].got_done && st[s].received >= st[s].total;
    };

    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::microseconds(static_cast<long long>(impl.timeout_s * 1e6));
    std::vector<std::uint8_t> payload;
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_shard;
    for (;;) {
        fds.clear();
        fd_shard.clear();
        for (std::size_t s = 0; s < impl.workers.size(); ++s) {
            const Impl::Worker& w = impl.workers[s];
            if (!w.alive || stream_done(s)) continue;
            struct pollfd p;
            p.fd = w.resp_fd;
            p.events = POLLIN;
            p.revents = 0;
            fds.push_back(p);
            fd_shard.push_back(s);
        }
        if (fds.empty()) break;

        const auto now = std::chrono::steady_clock::now();
        bool timed_out = now >= deadline;
        if (!timed_out) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now);
            const int rv = ::poll(fds.data(), fds.size(),
                                  static_cast<int>(left.count()) + 1);
            if (rv < 0) {
                if (errno == EINTR) continue;
                timed_out = true;
            } else if (rv == 0) {
                timed_out = true;
            }
        }
        if (timed_out) {
            // Every stream still open at the deadline is evicted — the
            // same miss rule the batch round applies per worker.
            for (const std::size_t s : fd_shard) {
                impl.heads[s].clear();
                impl.evict(s);
                impl.last_dropped.push_back(s);
            }
            rebuild_merge();
            break;
        }

        bool rebuild_needed = false;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0) continue;
            const std::size_t s = fd_shard[i];
            Impl::Worker& w = impl.workers[s];
            FrameHeader h;
            const ReadStatus rs =
                wire::read_frame_deadline(w.resp_fd, h, payload, deadline);
            bool fail = false;
            if (rs == ReadStatus::ok
                && h.type == static_cast<std::uint32_t>(FrameType::head_rows)) {
                std::uint64_t idx = 0;
                if (payload.size() < sizeof(idx)) {
                    fail = true;
                } else {
                    std::memcpy(&idx, payload.data(), sizeof(idx));
                    if (idx == st[s].received) {
                        try {
                            const auction::ShardHead c = auction::ShardHead::deserialize(
                                payload.data() + sizeof(idx),
                                payload.size() - sizeof(idx));
                            if (!c.rows.empty() && c.dims != dims)
                                throw std::invalid_argument("chunk dims mismatch");
                            fold_chunk(s, c);
                            ++st[s].received;
                        } catch (const std::exception&) {
                            // Checksummed yet malformed — a worker bug, not
                            // line noise; a retry would resend the same bytes.
                            fail = true;
                        }
                    } else if (idx > st[s].received && !st[s].retried) {
                        fail = true;  // a gap with no resend pending
                    }
                    // idx < received: duplicate from a resent tail — already
                    // folded. idx > received under a pending resend: the
                    // stale in-flight tail — the clean copy follows.
                }
            } else if (rs == ReadStatus::ok
                       && h.type == static_cast<std::uint32_t>(FrameType::head_done)) {
                std::uint64_t total = 0;
                if (payload.size() != sizeof(total)) {
                    fail = true;
                } else {
                    std::memcpy(&total, payload.data(), sizeof(total));
                    if (st[s].received == total) {
                        st[s].got_done = true;
                        st[s].total = total;
                    } else if (!st[s].retried) {
                        fail = true;  // short stream with no resend pending
                    }
                    // retried && received != total: the stale pre-resend
                    // done — the resent tail ends with its own.
                }
            } else if (rs == ReadStatus::bad_payload
                       || (rs == ReadStatus::ok
                           && h.type == static_cast<std::uint32_t>(FrameType::nack))) {
                // One bounded retry per shard per round, exactly as the
                // batch path: a corrupt chunk is re-requested from the
                // first missing index (the worker replays the stream tail),
                // a nacked request is re-shipped whole.
                ++impl.last_health.corrupt_frames;
                if (!st[s].retried) {
                    st[s].retried = true;
                    ++impl.last_health.frame_retries;
                    bool resent;
                    if (rs == ReadStatus::bad_payload) {
                        const std::uint64_t from = st[s].received;
                        resent = wire::write_frame(w.req_fd, FrameType::resend,
                                                   &from, sizeof(from));
                    } else {
                        resent = wire::write_frame(w.req_fd, FrameType::stream_request,
                                                   request.data(), request.size());
                    }
                    if (!resent) fail = true;
                } else {
                    fail = true;
                }
            } else {
                fail = true;  // timeout, EOF, bad header, unexpected type
            }
            if (fail) {
                impl.heads[s].clear();
                impl.evict(s);
                impl.last_dropped.push_back(s);
                rebuild_needed = true;
            }
        }
        if (rebuild_needed) rebuild_merge();
    }
    std::sort(impl.last_dropped.begin(), impl.last_dropped.end());

    std::size_t live = 0;
    for (const Impl::Worker& w : impl.workers) live += w.alive ? 1 : 0;
    impl.last_health.live_shards = live;
    impl.lifetime.live_shards = live;
    impl.lifetime.corrupt_frames += impl.last_health.corrupt_frames;
    impl.lifetime.frame_retries += impl.last_health.frame_retries;
    impl.lifetime.evictions += impl.last_health.evictions;
    impl.lifetime.respawns += impl.last_health.respawns;
    if (impl.sup.min_live_shards > 0 && live < impl.sup.min_live_shards)
        throw std::runtime_error(
            "ProcessShardAggregator: round " + std::to_string(round) + ": only "
            + std::to_string(live) + " of " + std::to_string(impl.workers.size())
            + " shard workers are live, below the configured quorum of "
            + std::to_string(impl.sup.min_live_shards)
            + " (auction.shard_quorum) — raise auction.shard_max_respawns / "
              "auction.shard_timeout_s, lower the quorum, or investigate the "
              "evictions recorded in lifetime_health()");

    merge.finish(impl.outcome.ranking);
    engine->select_into(impl.outcome.ranking, rng, impl.scratch.chosen);
    engine->price_into(impl.scoring, impl.outcome.ranking, impl.scratch.chosen,
                       impl.outcome.winners);
    return impl.outcome;
}

auction::CloseReason ProcessShardAggregator::last_close_reason() const {
    return impl_->last_close.reason;
}

double ProcessShardAggregator::last_close_time_s() const {
    return impl_->last_close.close_time_s;
}

std::size_t ProcessShardAggregator::last_arrived() const {
    return impl_->last_close.arrived;
}

const std::vector<std::size_t>& ProcessShardAggregator::last_dropped_shards() const {
    return impl_->last_dropped;
}

const ShardHealth& ProcessShardAggregator::last_health() const {
    return impl_->last_health;
}

const ShardHealth& ProcessShardAggregator::lifetime_health() const {
    return impl_->lifetime;
}

std::size_t ProcessShardAggregator::dead_shards() const { return impl_->dead; }

std::size_t ProcessShardAggregator::live_shards() const {
    std::size_t live = 0;
    for (const Impl::Worker& w : impl_->workers) live += w.alive ? 1 : 0;
    return live;
}

std::size_t ProcessShardAggregator::num_shards() const {
    return impl_->workers.size();
}

std::size_t ProcessShardAggregator::population_size() const { return impl_->n; }

int ProcessShardAggregator::worker_pid(std::size_t shard) const {
    if (shard >= impl_->workers.size()) return -1;
    const Impl::Worker& w = impl_->workers[shard];
    return w.alive ? static_cast<int>(w.pid) : -1;
}

void ProcessShardAggregator::ban(auction::NodeId node) {
    if (impl_->banned_set.contains(node)) return;
    impl_->banned_set.ban(node);
    impl_->pending_bans.push_back(node);
}

} // namespace fmore::mec
