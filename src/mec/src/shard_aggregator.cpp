#include "fmore/mec/shard_aggregator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <typeinfo>
#include <utility>

#include "fmore/auction/mechanism.hpp"
#include "fmore/mec/blacklist.hpp"

namespace fmore::mec {

namespace {

/// Fixed-size downlink header; `num_banned` global node ids follow.
struct RoundRequest {
    std::uint64_t round = 0;
    std::uint64_t k = 0;
    std::uint64_t evolve_salt = 0;
    std::uint64_t tie_salt = 0;
    std::uint64_t limit = 0;
    std::uint64_t num_banned = 0;
};

bool write_all(int fd, const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (size > 0) {
        const ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Blocking read of exactly `size` bytes (worker side); false on EOF.
bool read_all(int fd, void* data, std::size_t size) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
        const ssize_t n = ::read(fd, p, size);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Aggregator-side read of exactly `size` bytes, abandoned at `deadline`;
/// false on timeout, EOF, or error.
bool read_deadline(int fd, void* data, std::size_t size,
                   std::chrono::steady_clock::time_point deadline) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rv = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
        if (rv < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (rv == 0) return false;  // deadline hit
        const ssize_t n = ::read(fd, p, size);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;  // worker died (EOF) or pipe error
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

struct ProcessShardAggregator::Impl {
    const auction::ScoringRule& scoring;
    const auction::EquilibriumStrategy& strategy;
    auction::WinnerDeterminationConfig wd;
    QualityLayout layout;
    bool strategy_scores_broadcast_rule = false;
    double timeout_s = 0.0;
    std::size_t n = 0;

    struct Worker {
        pid_t pid = -1;
        int req_fd = -1;   ///< aggregator -> worker
        int resp_fd = -1;  ///< worker -> aggregator
        bool alive = false;
    };
    std::vector<Worker> workers;

    Blacklist banned_set;  ///< aggregator's view, for dedup and the m count
    std::vector<auction::NodeId> pending_bans;  ///< not yet shipped
    std::vector<std::size_t> last_dropped;
    std::size_t dead = 0;

    std::unique_ptr<auction::Mechanism> mechanism;
    std::size_t mechanism_k = static_cast<std::size_t>(-1);
    const auction::ScoreAuctionMechanism* engine = nullptr;
    std::vector<auction::ShardHead> heads;
    auction::RankScratch scratch;
    auction::AuctionOutcome outcome;

    Impl(const auction::ScoringRule& scoring_in,
         const auction::EquilibriumStrategy& strategy_in,
         auction::WinnerDeterminationConfig wd_in, QualityLayout layout_in)
        : scoring(scoring_in),
          strategy(strategy_in),
          wd(std::move(wd_in)),
          layout(std::move(layout_in)) {}

    void evict(std::size_t s) {
        Worker& w = workers[s];
        if (!w.alive) return;
        // A half-read pipe cannot be resynchronized, so eviction is
        // permanent: kill, close, reap.
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        ::close(w.req_fd);
        ::close(w.resp_fd);
        w.alive = false;
        ++dead;
    }

    const auction::ScoreAuctionMechanism* engine_for(std::size_t k) {
        if (!mechanism || mechanism_k != k) {
            auction::WinnerDeterminationConfig with_k = wd;
            with_k.num_winners = k;
            mechanism = auction::make_mechanism(with_k);
            mechanism_k = k;
            if (typeid(*mechanism) != typeid(auction::ScoreAuctionMechanism))
                throw std::invalid_argument(
                    "ProcessShardAggregator: spec resolves to mechanism '"
                    + mechanism->name()
                    + "', not the exact built-in score-auction engine the shard "
                      "workers replicate");
            engine = static_cast<const auction::ScoreAuctionMechanism*>(mechanism.get());
        }
        return engine;
    }
};

namespace {

/// Everything a forked worker runs: the per-shard half of each round, over
/// the shard store it inherited at fork time. Serial on purpose — the
/// parent's thread pool does not survive fork, and
/// FMORE_ROUND_THREADS=1 keeps every parallel_for entry point on its
/// serial branch.
[[noreturn]] void worker_main(int req_fd, int resp_fd, PopulationStore shard,
                              const auction::ScoringRule& scoring,
                              const auction::EquilibriumStrategy& strategy,
                              const QualityLayout& layout,
                              bool strategy_scores_broadcast_rule,
                              auction::PaymentMethod payment_method,
                              std::size_t shard_index,
                              const std::vector<ShardFault>& faults) {
    ::setenv("FMORE_ROUND_THREADS", "1", 1);
    Blacklist banned;
    auction::BidFrame frame;
    auction::ShardHead head;
    std::vector<const double*> columns;
    std::vector<std::uint8_t> payload;
    std::vector<auction::NodeId> ban_buf;

    for (;;) {
        RoundRequest req;
        if (!read_all(req_fd, &req, sizeof(req))) ::_exit(0);  // aggregator gone
        ban_buf.resize(req.num_banned);
        if (req.num_banned > 0
            && !read_all(req_fd, ban_buf.data(),
                         ban_buf.size() * sizeof(auction::NodeId)))
            ::_exit(0);
        for (const auction::NodeId node : ban_buf) banned.ban(node);

        for (const ShardFault& fault : faults) {
            if (fault.shard != shard_index || fault.round != req.round) continue;
            if (fault.die) ::_exit(3);
            if (fault.stall_s > 0.0)
                ::usleep(static_cast<useconds_t>(fault.stall_s * 1e6));
        }

        if (req.round > 1) shard.evolve_with_salt(req.evolve_salt);

        frame.reset(shard.size(), layout.size());
        collect_bid_rows(shard, 0, shard.size(), layout, strategy, scoring,
                         strategy_scores_broadcast_rule, payment_method, banned, frame,
                         0, columns, /*parallel=*/false);
        frame.set_scored(true);

        auction::TieKeys keys;
        keys.salted = true;
        keys.salt = req.tie_salt;
        auction::collect_shard_head(frame, shard.node_offset(), keys, req.limit, head);

        payload.clear();
        head.serialize(payload);
        const std::uint64_t size = payload.size();
        if (!write_all(resp_fd, &size, sizeof(size))
            || !write_all(resp_fd, payload.data(), payload.size()))
            ::_exit(0);
    }
}

} // namespace

ProcessShardAggregator::ProcessShardAggregator(
    const PopulationStore& store, const auction::ScoringRule& scoring,
    const auction::EquilibriumStrategy& strategy,
    auction::WinnerDeterminationConfig wd_config, QualityLayout layout,
    std::size_t num_shards, double shard_timeout_s, std::vector<ShardFault> faults)
    : impl_(std::make_unique<Impl>(scoring, strategy, std::move(wd_config),
                                   std::move(layout))) {
    if (impl_->wd.tie_break != auction::TieBreak::salted)
        throw std::invalid_argument(
            "ProcessShardAggregator: requires TieBreak::salted (a shuffle "
            "permutation cannot be shipped over the wire)");
    if (impl_->wd.psi < 1.0 || !impl_->wd.psi_per_node.empty())
        throw std::invalid_argument(
            "ProcessShardAggregator: psi-probabilistic acceptance walks the whole "
            "board and cannot run on bounded shard heads");
    if (impl_->wd.full_ranking)
        throw std::invalid_argument(
            "ProcessShardAggregator: full_ranking would ship every bid; use the "
            "in-process ShardedAuctionSelector for full boards");
    if (!(shard_timeout_s > 0.0) || std::isinf(shard_timeout_s))
        throw std::invalid_argument("ProcessShardAggregator: shard_timeout_s = "
                                    + std::to_string(shard_timeout_s)
                                    + ": must be finite and > 0");
    if (impl_->layout.empty()
        || impl_->layout.size() != impl_->strategy.dimensions())
        throw std::invalid_argument(
            "ProcessShardAggregator: quality layout must be non-empty and match the "
            "strategy's dimensions");
    impl_->timeout_s = shard_timeout_s;
    impl_->n = store.size();
    impl_->strategy_scores_broadcast_rule =
        impl_->strategy.scoring_rule() == &impl_->scoring;
    // Fail on non-wire-friendly mechanism resolution before any fork.
    (void)impl_->engine_for(impl_->wd.num_winners == 0 ? 1 : impl_->wd.num_winners);

    std::vector<PopulationStore> shards = store.split_even(num_shards);
    impl_->workers.resize(num_shards);
    impl_->heads.resize(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
        int down[2];  // aggregator -> worker
        int up[2];    // worker -> aggregator
        if (::pipe(down) != 0 || ::pipe(up) != 0)
            throw std::runtime_error("ProcessShardAggregator: pipe() failed");
        const pid_t pid = ::fork();
        if (pid < 0) throw std::runtime_error("ProcessShardAggregator: fork() failed");
        if (pid == 0) {
            // Worker: keep only its two pipe ends. Earlier siblings' fds
            // were inherited and MUST be closed, or this worker's copy of
            // their request-pipe write ends would keep those pipes open and
            // break EOF-based shutdown.
            ::close(down[1]);
            ::close(up[0]);
            for (std::size_t prev = 0; prev < s; ++prev) {
                ::close(impl_->workers[prev].req_fd);
                ::close(impl_->workers[prev].resp_fd);
            }
            worker_main(down[0], up[1], std::move(shards[s]), impl_->scoring,
                        impl_->strategy, impl_->layout,
                        impl_->strategy_scores_broadcast_rule,
                        auction::PaymentMethod::integral, s, faults);
        }
        ::close(down[0]);
        ::close(up[1]);
        impl_->workers[s] = Impl::Worker{pid, down[1], up[0], true};
    }
}

ProcessShardAggregator::~ProcessShardAggregator() {
    if (!impl_) return;
    for (std::size_t s = 0; s < impl_->workers.size(); ++s) {
        Impl::Worker& w = impl_->workers[s];
        if (!w.alive) continue;
        // Closing the request pipe is the shutdown signal; workers exit on
        // EOF. Reap, then force the stragglers.
        ::close(w.req_fd);
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == 0) {
            ::usleep(20000);
            if (::waitpid(w.pid, &status, WNOHANG) == 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &status, 0);
            }
        }
        ::close(w.resp_fd);
        w.alive = false;
    }
}

const auction::AuctionOutcome& ProcessShardAggregator::run_round(std::size_t round,
                                                                 std::size_t k,
                                                                 stats::Rng& rng) {
    Impl& impl = *impl_;
    const auction::ScoreAuctionMechanism* engine = impl.engine_for(k);

    // Exactly the monolithic salted round's generator discipline: one
    // drift salt (round > 1), one tie salt — nothing else crosses the wire.
    RoundRequest req;
    req.round = round;
    req.k = k;
    req.evolve_salt = round > 1 ? rng.engine()() : 0;
    req.tie_salt = rng.engine()();
    req.num_banned = impl.pending_bans.size();
    const std::size_t m = impl.n - impl.banned_set.size();
    req.limit = engine->ranking_cutoff(m);

    // Ship all requests first so workers overlap, then collect responses.
    for (std::size_t s = 0; s < impl.workers.size(); ++s) {
        Impl::Worker& w = impl.workers[s];
        if (!w.alive) continue;
        if (!write_all(w.req_fd, &req, sizeof(req))
            || (req.num_banned > 0
                && !write_all(w.req_fd, impl.pending_bans.data(),
                              impl.pending_bans.size() * sizeof(auction::NodeId)))) {
            impl.evict(s);
        }
    }
    impl.pending_bans.clear();

    impl.last_dropped.clear();
    std::vector<std::uint8_t> payload;
    for (std::size_t s = 0; s < impl.workers.size(); ++s) {
        impl.heads[s].clear();
        Impl::Worker& w = impl.workers[s];
        if (!w.alive) continue;
        const auto deadline =
            std::chrono::steady_clock::now()
            + std::chrono::microseconds(
                static_cast<long long>(impl.timeout_s * 1e6));
        std::uint64_t size = 0;
        bool ok = read_deadline(w.resp_fd, &size, sizeof(size), deadline);
        if (ok) {
            payload.resize(size);
            ok = read_deadline(w.resp_fd, payload.data(), size, deadline);
        }
        if (!ok) {
            impl.evict(s);
            impl.last_dropped.push_back(s);
            continue;
        }
        impl.heads[s] = auction::ShardHead::deserialize(payload.data(), payload.size());
    }

    auction::merge_heads(impl.heads, req.limit, impl.outcome.ranking);
    engine->select_into(impl.outcome.ranking, rng, impl.scratch.chosen);
    engine->price_into(impl.scoring, impl.outcome.ranking, impl.scratch.chosen,
                       impl.outcome.winners);
    return impl.outcome;
}

const std::vector<std::size_t>& ProcessShardAggregator::last_dropped_shards() const {
    return impl_->last_dropped;
}

std::size_t ProcessShardAggregator::dead_shards() const { return impl_->dead; }

std::size_t ProcessShardAggregator::num_shards() const {
    return impl_->workers.size();
}

std::size_t ProcessShardAggregator::population_size() const { return impl_->n; }

void ProcessShardAggregator::ban(auction::NodeId node) {
    if (impl_->banned_set.contains(node)) return;
    impl_->banned_set.ban(node);
    impl_->pending_bans.push_back(node);
}

} // namespace fmore::mec
