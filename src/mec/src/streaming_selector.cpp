#include "fmore/mec/streaming_selector.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "fmore/mec/population_store.hpp"

namespace fmore::mec {

StreamingAuctionSelector::StreamingAuctionSelector(
    MecPopulation& population, const auction::ScoringRule& scoring,
    const auction::EquilibriumStrategy& strategy,
    auction::WinnerDeterminationConfig wd_config, QualityLayout layout,
    std::size_t data_dimension, StreamingRoundConfig streaming,
    auction::PaymentMethod payment_method)
    : population_(population),
      scoring_(scoring),
      strategy_(strategy),
      wd_config_(std::move(wd_config)),
      layout_(std::move(layout)),
      data_dimension_(data_dimension),
      streaming_(std::move(streaming)),
      payment_method_(payment_method) {
    if (layout_.empty())
        throw std::invalid_argument("StreamingAuctionSelector: empty quality layout "
                                    "(streaming rounds run the fused bid path only)");
    if (layout_.size() != strategy_.dimensions())
        throw std::logic_error(
            "StreamingAuctionSelector: layout/strategy dimension mismatch");
    if (streaming_.process == ArrivalProcess::poisson
        && !(streaming_.arrival_rate_hz > 0.0))
        throw std::invalid_argument(
            "StreamingAuctionSelector: poisson arrivals need arrival_rate_hz > 0");
    if (streaming_.shards == 0)
        throw std::invalid_argument(
            "StreamingAuctionSelector: shards = 0 (1 = the monolithic close)");
    if (streaming_.adaptive_quorum && streaming_.quorum == 0)
        throw std::invalid_argument(
            "StreamingAuctionSelector: adaptive_quorum needs a starting "
            "quorum > 0 (timing.min_updates seeds the controller)");
    strategy_scores_broadcast_rule_ = strategy_.scoring_rule() == &scoring_;
    last_quorum_ = streaming_.quorum;
}

void StreamingAuctionSelector::ensure_market(std::size_t k) {
    if (market_ && market_k_ == k) return;
    auction::WinnerDeterminationConfig wd = wd_config_;
    wd.num_winners = k;
    market_ = std::make_unique<auction::StreamingMarket>(
        std::shared_ptr<const auction::Mechanism>(auction::make_mechanism(wd)),
        scoring_);
    market_k_ = k;
}

const auction::AuctionOutcome& StreamingAuctionSelector::run_auction_round(
    std::size_t round, std::size_t k, stats::Rng& rng) {
    // Round 1 bids on the initial resource state; drift applies afterwards
    // — the batch selector's convention, so the generator streams align.
    if (round > 1) population_.evolve(rng);
    const PopulationStore& store = population_.store();
    const std::size_t n = store.size();
    staging_.reset(n, layout_.size());
    collect_bid_rows(store, 0, n, layout_, strategy_, scoring_,
                     strategy_scores_broadcast_rule_, payment_method_, blacklist_,
                     staging_, 0, columns_, /*parallel=*/true);
    staging_.set_scored(true);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) expected += staging_.active(i) ? 1 : 0;

    ensure_market(k);

    // The arrival schedule. Poisson draws BEFORE the round opens (one
    // shuffle + one uniform per node, a fixed sequence); closed-loop
    // latencies consume nothing and are built once.
    const ArrivalModel* arrivals = nullptr;
    ArrivalModel poisson_round;
    if (streaming_.process == ArrivalProcess::poisson) {
        poisson_round = ArrivalModel::poisson(n, streaming_.arrival_rate_hz, rng);
        arrivals = &poisson_round;
    } else {
        if (!latency_arrivals_) {
            std::vector<double> latencies = streaming_.bid_latencies_s;
            latencies.resize(n, 0.0);
            latency_arrivals_ = ArrivalModel::closed_loop(latencies);
        }
        arrivals = &*latency_arrivals_;
    }

    // The quorum this round opens with: fixed, or the adaptive
    // controller's current target. The controller is a pure function of
    // the close telemetry it has observed, so re-running the same trial
    // replays the same quorum schedule byte for byte.
    ensure_adaptive(n);
    last_quorum_ = adaptive_ ? adaptive_->quorum() : streaming_.quorum;

    auction::StreamingRoundSpec spec;
    spec.deadline_s = streaming_.deadline_s;
    spec.quorum = last_quorum_;
    spec.expected_bids = expected;
    market_->open_round(n, layout_.size(), spec, rng);
    for (const Arrival& arrival : arrivals->schedule()) {
        // Blacklisted defaulters never bid; their schedule slots lapse.
        if (!staging_.active(arrival.node)) continue;
        if (!market_->offer(arrival.node, staging_.quality_row(arrival.node),
                            staging_.payment(arrival.node),
                            staging_.score(arrival.node), arrival.seconds))
            break; // the round closed (quorum or deadline) — the feed stops
    }
    // Sharded close: the same virtual-shard cuts the sharded batch selector
    // uses, folded through the head merge — bit-identical to the monolithic
    // close (streaming_equivalence_test pins this).
    const auction::AuctionOutcome* outcome;
    if (streaming_.shards > 1) {
        shard_starts_.assign(1, 0);
        const std::vector<std::size_t> cuts =
            PopulationStore::even_boundaries(n, streaming_.shards);
        shard_starts_.insert(shard_starts_.end(), cuts.begin(), cuts.end());
        outcome = &market_->close_round_sharded(rng, shard_starts_);
    } else {
        outcome = &market_->close_round(rng);
    }
    if (adaptive_)
        adaptive_->observe(auction::to_string(market_->close_reason()),
                           market_->close_time_s());
    return *outcome;
}

fl::SelectionRecord StreamingAuctionSelector::select(std::size_t round, std::size_t k,
                                                     stats::Rng& rng) {
    (void)run_auction_round(round, k, rng);
    std::function<double(auction::NodeId)> promised;
    if (data_dimension_ != npos) {
        // Winners arrived, so their bids are addressable by NodeId in the
        // market's frame — the fused selector's resolution rule.
        promised = [this](auction::NodeId node) {
            return market_->frame().quality_row(node)[data_dimension_];
        };
    }
    fl::SelectionRecord record = assemble_selection_record(
        market_->outcome(), population_.size(), promised, compliance_, blacklist_, rng);
    // Close telemetry rides the record into RoundMetrics, so a whole run's
    // close-reason mix is summarizable via RunResult::health() — the seed
    // for tuning timing.min_updates adaptively.
    record.close_reason = auction::to_string(market_->close_reason());
    record.close_time_s = market_->close_time_s();
    record.arrived_bids = market_->arrived();
    record.bid_quorum = last_quorum_;
    return record;
}

auction::CloseReason StreamingAuctionSelector::last_close_reason() const {
    return market_ ? market_->close_reason() : auction::CloseReason::open;
}

std::size_t StreamingAuctionSelector::last_arrived() const {
    return market_ ? market_->arrived() : 0;
}

double StreamingAuctionSelector::last_close_time_s() const {
    return market_ ? market_->close_time_s() : 0.0;
}

std::size_t StreamingAuctionSelector::last_head_churn() const {
    return market_ ? market_->head_churn() : 0;
}

void StreamingAuctionSelector::ensure_adaptive(std::size_t population_size) {
    if (streaming_.adaptive_quorum && !adaptive_) {
        fl::AdaptiveQuorumConfig ac;
        ac.initial = streaming_.quorum;
        ac.max_quorum = population_size;
        ac.deadline_s = streaming_.deadline_s;
        adaptive_.emplace(ac);
    }
}

void StreamingAuctionSelector::save_checkpoint(fl::SelectorCheckpoint& ckpt) const {
    for (std::size_t node : blacklist_.banned_ids())
        ckpt.banned_nodes.push_back(node);
    // The close replay is NOT recorded here: the trial rebuilds it from the
    // checkpointed metrics tape (every closed round's reason/time already
    // rides its SelectionRecord), keeping one source of truth.
}

void StreamingAuctionSelector::restore_checkpoint(const fl::SelectorCheckpoint& ckpt) {
    blacklist_.clear();
    for (std::uint64_t node : ckpt.banned_nodes)
        blacklist_.ban(static_cast<std::size_t>(node));
    if (streaming_.adaptive_quorum && !ckpt.close_replay.empty()) {
        adaptive_.reset();
        ensure_adaptive(population_.size());
        for (const auto& [reason, close_time_s] : ckpt.close_replay)
            adaptive_->observe(reason, close_time_s);
        last_quorum_ = adaptive_->quorum();
    }
}

} // namespace fmore::mec
