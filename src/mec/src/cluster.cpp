#include "fmore/mec/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::mec {

ClusterTimeModel::ClusterTimeModel(const MecPopulation& population,
                                   ClusterTimeConfig config, bool auction_round)
    : population_(population), config_(config), auction_round_(auction_round) {
    if (!(config_.model_bytes > 0.0))
        throw std::invalid_argument("ClusterTimeModel: model_bytes must be > 0");
}

double ClusterTimeModel::round_seconds(const fl::SelectionRecord& selection,
                                       const std::vector<std::size_t>& samples) const {
    double slowest = 0.0;
    std::size_t si = 0;
    for (const fl::SelectedClient& sel : selection.selected) {
        const EdgeNode& node = population_.node(sel.client);
        const double bw_bytes_s =
            std::max(1.0, node.resources().bandwidth_mbps) * 1.0e6 / 8.0;
        const double transfer = 2.0 * config_.model_bytes / bw_bytes_s; // down + up
        const double trained =
            si < samples.size() ? static_cast<double>(samples[si]) : 0.0;
        const double cores = std::max(0.25, node.resources().cpu_cores);
        const double compute = trained * config_.seconds_per_sample_core / cores;
        slowest = std::max(slowest, transfer + compute);
        ++si;
    }
    double total = slowest + config_.round_overhead_s;
    if (auction_round_) total += config_.auction_overhead_s;
    return total;
}

fl::RoundTimeModel ClusterTimeModel::as_time_model() const {
    return [this](const fl::SelectionRecord& selection,
                  const std::vector<std::size_t>& samples) {
        return round_seconds(selection, samples);
    };
}

} // namespace fmore::mec
