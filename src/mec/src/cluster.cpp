#include "fmore/mec/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::mec {

ClusterTimeModel::ClusterTimeModel(const MecPopulation& population,
                                   ClusterTimeConfig config, bool auction_round)
    : population_(population), config_(config), auction_round_(auction_round) {
    if (!(config_.model_bytes > 0.0))
        throw std::invalid_argument("ClusterTimeModel: model_bytes must be > 0");
    if (!std::isfinite(config_.latency_spread) || config_.latency_spread < 0.0)
        throw std::invalid_argument(
            "ClusterTimeModel: latency_spread must be finite and >= 0");
    if (std::isnan(config_.dropout_prob) || config_.dropout_prob < 0.0
        || config_.dropout_prob >= 1.0)
        throw std::invalid_argument(
            "ClusterTimeModel: dropout_prob must be in [0, 1)");
}

ClusterTimeModel::ClusterTimeModel(const MecPopulation& population,
                                   ClusterTimeConfig config, bool auction_round,
                                   stats::Rng& factor_rng)
    : ClusterTimeModel(population, config, auction_round) {
    // One lognormal draw per node, population order — per-trial straggler
    // identities are then a pure function of the factor seed, independent
    // of which rounds or policies later query the model.
    if (config_.latency_spread > 0.0) {
        latency_factors_.reserve(population_.size());
        for (std::size_t i = 0; i < population_.size(); ++i) {
            latency_factors_.push_back(
                std::exp(config_.latency_spread * factor_rng.normal(0.0, 1.0)));
        }
    }
}

double ClusterTimeModel::latency_factor(std::size_t i) const {
    return latency_factors_.empty() ? 1.0 : latency_factors_.at(i);
}

double ClusterTimeModel::client_seconds(std::size_t client,
                                        std::size_t samples) const {
    // Straight off the SoA columns — the AoS `node()` mirror would rebuild
    // all N views after every evolve just to answer K queries.
    const PopulationStore& store = population_.store();
    const double bw_bytes_s = std::max(1.0, store.bandwidth_mbps(client)) * 1.0e6 / 8.0;
    const double transfer = 2.0 * config_.model_bytes / bw_bytes_s; // down + up
    const double cores = std::max(0.25, store.cpu_cores(client));
    const double compute =
        static_cast<double>(samples) * config_.seconds_per_sample_core / cores;
    return latency_factor(client) * (transfer + compute);
}

double ClusterTimeModel::round_seconds(const fl::SelectionRecord& selection,
                                       const std::vector<std::size_t>& samples) const {
    double slowest = 0.0;
    std::size_t si = 0;
    for (const fl::SelectedClient& sel : selection.selected) {
        const std::size_t trained = si < samples.size() ? samples[si] : 0;
        slowest = std::max(slowest, client_seconds(sel.client, trained));
        ++si;
    }
    double total = slowest + config_.round_overhead_s;
    if (auction_round_) total += config_.auction_overhead_s;
    return total;
}

fl::RoundTimeModel ClusterTimeModel::as_time_model() const {
    return [this](const fl::SelectionRecord& selection,
                  const std::vector<std::size_t>& samples) {
        return round_seconds(selection, samples);
    };
}

fl::ClientTimeModel ClusterTimeModel::as_client_time_model() const {
    return [this](std::size_t client, std::size_t samples, stats::Rng& rng) {
        fl::DispatchTiming timing;
        timing.seconds = client_seconds(client, samples);
        // Guarded so a dropout-free configuration consumes no RNG — the
        // async determinism/equivalence contracts depend on it.
        timing.dropped =
            config_.dropout_prob > 0.0 && rng.bernoulli(config_.dropout_prob);
        return timing;
    };
}

} // namespace fmore::mec
