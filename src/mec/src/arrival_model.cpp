#include "fmore/mec/arrival_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::mec {

std::string to_string(ArrivalProcess process) {
    switch (process) {
        case ArrivalProcess::latency: return "latency";
        case ArrivalProcess::poisson: return "poisson";
    }
    return "?";
}

ArrivalProcess parse_arrival_process(const std::string& text) {
    if (text == "latency") return ArrivalProcess::latency;
    if (text == "poisson") return ArrivalProcess::poisson;
    throw std::invalid_argument("unknown arrival process '" + text
                                + "' (valid: latency, poisson)");
}

namespace {

void sort_schedule(std::vector<Arrival>& schedule) {
    std::sort(schedule.begin(), schedule.end(), [](const Arrival& a, const Arrival& b) {
        if (a.seconds != b.seconds) return a.seconds < b.seconds;
        return a.node < b.node;
    });
}

} // namespace

ArrivalModel ArrivalModel::closed_loop(const std::vector<double>& latencies_s) {
    ArrivalModel model;
    model.schedule_.reserve(latencies_s.size());
    for (std::size_t i = 0; i < latencies_s.size(); ++i) {
        const double latency = latencies_s[i];
        if (!(latency >= 0.0) || std::isinf(latency))
            throw std::invalid_argument("ArrivalModel: latencies_s["
                                        + std::to_string(i) + "] = "
                                        + std::to_string(latency)
                                        + ": must be finite and >= 0");
        model.schedule_.push_back(Arrival{i, latency});
    }
    sort_schedule(model.schedule_);
    return model;
}

ArrivalModel ArrivalModel::from_cluster_time(const ClusterTimeModel& model,
                                             std::size_t n) {
    std::vector<double> latencies(n);
    const double overhead = model.config().auction_overhead_s;
    for (std::size_t i = 0; i < n; ++i)
        latencies[i] = model.latency_factor(i) * overhead;
    return closed_loop(latencies);
}

ArrivalModel ArrivalModel::poisson(std::size_t n, double rate_hz, stats::Rng& rng) {
    if (!(rate_hz > 0.0) || std::isinf(rate_hz))
        throw std::invalid_argument("ArrivalModel: poisson rate_hz = "
                                    + std::to_string(rate_hz)
                                    + ": must be finite and > 0");
    // Uniform node order first, then one exponential gap per arrival —
    // a fixed draw sequence, so the schedule is reproducible from the
    // generator state alone.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);
    ArrivalModel model;
    model.schedule_.reserve(n);
    double t = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const double u = rng.uniform(0.0, 1.0);
        t += -std::log1p(-u) / rate_hz;
        model.schedule_.push_back(Arrival{order[k], t});
    }
    // Gaps are positive, so the stream is already time-sorted.
    return model;
}

} // namespace fmore::mec
