#include "fmore/mec/population.hpp"

#include <utility>

namespace fmore::mec {

MecPopulation::MecPopulation(const std::vector<ml::ClientShard>& shards,
                             std::size_t num_classes,
                             const stats::Distribution& theta_dist,
                             const PopulationSpec& spec, stats::Rng& rng)
    : store_(shards, num_classes, theta_dist, spec, rng) {}

MecPopulation::MecPopulation(PopulationStore store) : store_(std::move(store)) {}

void MecPopulation::refresh_mirror() const {
    if (!mirror_stale_) return;
    mirror_.clear();
    mirror_.reserve(store_.size());
    for (std::size_t i = 0; i < store_.size(); ++i) {
        mirror_.emplace_back(i, store_.theta(i), store_.resources(i), store_.caps(i));
    }
    mirror_stale_ = false;
}

const EdgeNode& MecPopulation::node(std::size_t i) const {
    refresh_mirror();
    return mirror_.at(i);
}

const std::vector<EdgeNode>& MecPopulation::nodes() const {
    refresh_mirror();
    return mirror_;
}

void MecPopulation::evolve(stats::Rng& rng) {
    store_.evolve(rng);
    mirror_stale_ = true;
}

void MecPopulation::evolve_with_salt(std::uint64_t salt) {
    store_.evolve_with_salt(salt);
    mirror_stale_ = true;
}

} // namespace fmore::mec
