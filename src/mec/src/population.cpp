#include "fmore/mec/population.hpp"

#include <stdexcept>

namespace fmore::mec {

MecPopulation::MecPopulation(const std::vector<ml::ClientShard>& shards,
                             std::size_t num_classes,
                             const stats::Distribution& theta_dist,
                             const PopulationSpec& spec, stats::Rng& rng)
    : dynamics_(spec.dynamics),
      theta_lo_(theta_dist.support_lo()),
      theta_hi_(theta_dist.support_hi()) {
    if (shards.empty()) throw std::invalid_argument("MecPopulation: no shards");
    nodes_.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
        ResourceState caps;
        caps.data_size = static_cast<double>(shards[i].indices.size());
        caps.category_proportion = shards[i].category_proportion(num_classes);
        caps.bandwidth_mbps = rng.uniform(spec.bandwidth_lo, spec.bandwidth_hi);
        caps.cpu_cores = rng.uniform(spec.cpu_lo, spec.cpu_hi);

        // Nodes start somewhere inside their envelope, not pinned at it.
        ResourceState initial = caps;
        initial.bandwidth_mbps *= rng.uniform(0.6, 1.0);
        initial.cpu_cores *= rng.uniform(0.6, 1.0);
        initial.data_size *= rng.uniform(0.8, 1.0);

        nodes_.emplace_back(i, theta_dist.sample(rng), initial, caps);
    }
}

void MecPopulation::evolve(stats::Rng& rng) {
    for (EdgeNode& node : nodes_) {
        node.evolve(dynamics_, theta_lo_, theta_hi_, rng);
    }
}

} // namespace fmore::mec
