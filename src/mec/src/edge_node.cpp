#include "fmore/mec/edge_node.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::mec {

EdgeNode::EdgeNode(std::size_t id, double theta, ResourceState initial, ResourceState caps)
    : id_(id), theta_(theta), current_(initial), caps_(caps) {
    current_.data_size = std::min(current_.data_size, caps_.data_size);
    current_.category_proportion =
        std::min(current_.category_proportion, caps_.category_proportion);
    current_.bandwidth_mbps = std::min(current_.bandwidth_mbps, caps_.bandwidth_mbps);
    current_.cpu_cores = std::min(current_.cpu_cores, caps_.cpu_cores);
}

namespace {

double jitter(double value, double cap, double rel, stats::Rng& rng) {
    if (cap <= 0.0 || rel <= 0.0) return value;
    const double step = cap * rel;
    return std::clamp(value + rng.uniform(-step, step), 0.05 * cap, cap);
}

} // namespace

void EdgeNode::evolve(const ResourceDynamics& dynamics, double theta_lo, double theta_hi,
                      stats::Rng& rng) {
    current_.bandwidth_mbps =
        jitter(current_.bandwidth_mbps, caps_.bandwidth_mbps, dynamics.resource_jitter, rng);
    current_.cpu_cores =
        jitter(current_.cpu_cores, caps_.cpu_cores, dynamics.resource_jitter, rng);
    // Data holdings only grow toward the shard cap (nodes accumulate data).
    if (caps_.data_size > 0.0 && dynamics.resource_jitter > 0.0) {
        const double step = caps_.data_size * dynamics.resource_jitter;
        current_.data_size =
            std::clamp(current_.data_size + rng.uniform(0.0, step), 0.0, caps_.data_size);
    }
    if (dynamics.theta_jitter > 0.0) {
        if (!(theta_lo < theta_hi))
            throw std::invalid_argument("EdgeNode::evolve: bad theta bounds");
        theta_ = std::clamp(theta_ + rng.uniform(-dynamics.theta_jitter, dynamics.theta_jitter),
                            theta_lo, theta_hi);
    }
}

} // namespace fmore::mec
