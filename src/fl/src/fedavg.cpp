#include "fmore/fl/fedavg.hpp"

#include <stdexcept>

namespace fmore::fl {

std::vector<float> federated_average(const std::vector<std::vector<float>>& client_params,
                                     const std::vector<double>& weights) {
    if (client_params.empty())
        throw std::invalid_argument("federated_average: no clients");
    if (client_params.size() != weights.size())
        throw std::invalid_argument("federated_average: weight count mismatch");

    const std::size_t dim = client_params.front().size();
    double total_weight = 0.0;
    for (const double w : weights) {
        if (!(w > 0.0)) throw std::invalid_argument("federated_average: weights must be > 0");
        total_weight += w;
    }

    std::vector<double> acc(dim, 0.0);
    for (std::size_t c = 0; c < client_params.size(); ++c) {
        if (client_params[c].size() != dim)
            throw std::invalid_argument("federated_average: parameter size mismatch");
        const double w = weights[c] / total_weight;
        for (std::size_t i = 0; i < dim; ++i) {
            acc[i] += w * static_cast<double>(client_params[c][i]);
        }
    }
    std::vector<float> out(dim);
    for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
    return out;
}

} // namespace fmore::fl
