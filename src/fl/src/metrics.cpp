#include "fmore/fl/metrics.hpp"

#include <stdexcept>

namespace fmore::fl {

double RunResult::final_accuracy() const {
    if (rounds.empty()) throw std::logic_error("RunResult: empty run");
    return rounds.back().test_accuracy;
}

double RunResult::final_loss() const {
    if (rounds.empty()) throw std::logic_error("RunResult: empty run");
    return rounds.back().test_loss;
}

std::optional<std::size_t> RunResult::rounds_to_accuracy(double target) const {
    for (const RoundMetrics& r : rounds) {
        if (r.test_accuracy >= target) return r.round;
    }
    return std::nullopt;
}

std::optional<double> RunResult::seconds_to_accuracy(double target) const {
    double elapsed = 0.0;
    for (const RoundMetrics& r : rounds) {
        elapsed += r.round_seconds;
        if (r.test_accuracy >= target) return elapsed;
    }
    return std::nullopt;
}

double RunResult::total_seconds() const {
    double elapsed = 0.0;
    for (const RoundMetrics& r : rounds) elapsed += r.round_seconds;
    return elapsed;
}

} // namespace fmore::fl
