#include "fmore/fl/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::fl {

namespace {

/// Nearest-rank percentile over an unsorted sample (copied and sorted).
double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

} // namespace

double RunResult::final_accuracy() const {
    if (rounds.empty()) throw std::logic_error("RunResult: empty run");
    return rounds.back().test_accuracy;
}

double RunResult::final_loss() const {
    if (rounds.empty()) throw std::logic_error("RunResult: empty run");
    return rounds.back().test_loss;
}

std::optional<std::size_t> RunResult::rounds_to_accuracy(double target) const {
    for (const RoundMetrics& r : rounds) {
        if (r.test_accuracy >= target) return r.round;
    }
    return std::nullopt;
}

std::optional<double> RunResult::seconds_to_accuracy(double target) const {
    double elapsed = 0.0;
    for (const RoundMetrics& r : rounds) {
        elapsed += r.round_seconds;
        if (r.test_accuracy >= target) return elapsed;
    }
    return std::nullopt;
}

double RunResult::total_seconds() const {
    double elapsed = 0.0;
    for (const RoundMetrics& r : rounds) elapsed += r.round_seconds;
    return elapsed;
}

RoundHealth RunResult::health() const {
    RoundHealth h;
    h.rounds = rounds.size();
    std::size_t quorum = 0;
    std::size_t deadline = 0;
    std::vector<double> close_times;
    for (const RoundMetrics& r : rounds) {
        const SelectionRecord& sel = r.selection;
        if (!sel.close_reason.empty()) {
            ++h.streaming_rounds;
            if (sel.close_reason == "quorum") ++quorum;
            if (sel.close_reason == "deadline") ++deadline;
            close_times.push_back(sel.close_time_s);
        }
        if (!sel.dropped_shards.empty()) ++h.rounds_degraded;
        h.shard_evictions += sel.shard_health.evictions;
        h.shard_respawns += sel.shard_health.respawns;
        h.corrupt_frames += sel.shard_health.corrupt_frames;
        h.frame_retries += sel.shard_health.frame_retries;
    }
    if (h.streaming_rounds > 0) {
        const double denom = static_cast<double>(h.streaming_rounds);
        h.quorum_close_fraction = static_cast<double>(quorum) / denom;
        h.deadline_close_fraction = static_cast<double>(deadline) / denom;
        h.close_p50_s = percentile(close_times, 50.0);
        h.close_p99_s = percentile(close_times, 99.0);
    }
    return h;
}

} // namespace fmore::fl
