#include "fmore/fl/policy.hpp"

#include <stdexcept>
#include <utility>

#include "fmore/util/registry.hpp"

namespace fmore::fl {

namespace {

/// RandFL — uniform random K of N each round (Section II.B).
class RandFlPolicy final : public SelectionPolicy {
public:
    [[nodiscard]] std::string name() const override { return "randfl"; }
    [[nodiscard]] std::unique_ptr<ClientSelector>
    make_selector(const PolicyContext& context) const override {
        return std::make_unique<RandomSelector>(context.num_clients);
    }
};

/// FixFL — one random winner set drawn up front and reused every round
/// (Section V.A). The draw's stream is derived from the trial seed alone,
/// so a trial's fixed set is identical no matter where the policy is built.
class FixFlPolicy final : public SelectionPolicy {
public:
    [[nodiscard]] std::string name() const override { return "fixfl"; }
    [[nodiscard]] std::unique_ptr<ClientSelector>
    make_selector(const PolicyContext& context) const override {
        stats::Rng fix_rng(context.trial_seed ^ 0xf1f1ULL);
        return std::make_unique<FixedSelector>(context.num_clients, context.winners,
                                               fix_rng);
    }
};

/// FMore / psi-FMore — delegate to the experiment layer's auction factory
/// (Algorithm 1); psi-FMore flips the probabilistic-acceptance flag the
/// factory maps to its configured psi.
class AuctionPolicy final : public SelectionPolicy {
public:
    AuctionPolicy(std::string name, bool probabilistic)
        : name_(std::move(name)), probabilistic_(probabilistic) {}
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] std::unique_ptr<ClientSelector>
    make_selector(const PolicyContext& context) const override {
        if (!context.make_auction_selector)
            throw std::invalid_argument(
                "SelectionPolicy '" + name_
                + "': the PolicyContext has no auction-selector factory; auction "
                  "policies need an experiment layer that installs "
                  "PolicyContext::make_auction_selector (non-auction baselines: "
                  "randfl, fixfl)");
        PolicyContext ctx = context;
        ctx.probabilistic_acceptance = probabilistic_;
        return context.make_auction_selector(ctx);
    }

private:
    std::string name_;
    bool probabilistic_;
};

} // namespace

struct PolicyRegistry::Impl {
    util::NamedRegistry<PolicyFactory> registry{"PolicyRegistry", "selection policy"};
};


PolicyRegistry::PolicyRegistry() : impl_(std::make_shared<Impl>()) {
    impl_->registry.replace("randfl", [] { return std::make_unique<RandFlPolicy>(); });
    impl_->registry.replace("fixfl", [] { return std::make_unique<FixFlPolicy>(); });
    impl_->registry.replace("fmore", [] {
        return std::make_unique<AuctionPolicy>("fmore", false);
    });
    impl_->registry.replace("psi_fmore", [] {
        return std::make_unique<AuctionPolicy>("psi_fmore", true);
    });
}

PolicyRegistry& PolicyRegistry::instance() {
    static PolicyRegistry registry;
    return registry;
}

void PolicyRegistry::add(const std::string& name, PolicyFactory factory) {
    util::require_factory(factory, "PolicyRegistry", "add", name);
    impl_->registry.add(name, std::move(factory));
}

void PolicyRegistry::replace(const std::string& name, PolicyFactory factory) {
    util::require_factory(factory, "PolicyRegistry", "replace", name);
    impl_->registry.replace(name, std::move(factory));
}

void PolicyRegistry::remove(const std::string& name) { impl_->registry.remove(name); }

bool PolicyRegistry::contains(const std::string& name) const {
    return impl_->registry.contains(name);
}

std::vector<std::string> PolicyRegistry::names() const { return impl_->registry.names(); }

std::unique_ptr<SelectionPolicy> PolicyRegistry::create(const std::string& name) const {
    std::unique_ptr<SelectionPolicy> policy = impl_->registry.get(name)();
    if (!policy)
        throw std::logic_error("PolicyRegistry: factory for '" + name
                               + "' returned null");
    return policy;
}

std::unique_ptr<SelectionPolicy> make_policy(const std::string& name) {
    return PolicyRegistry::instance().create(name);
}

} // namespace fmore::fl
