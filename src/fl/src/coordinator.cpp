#include "fmore/fl/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmore/fl/fedavg.hpp"

namespace fmore::fl {

Coordinator::Coordinator(ml::Model& model, const ml::Dataset& train,
                         const ml::Dataset& test, std::vector<ml::ClientShard> shards,
                         CoordinatorConfig config)
    : model_(model),
      train_(train),
      test_(test),
      shards_(std::move(shards)),
      config_(config) {
    if (shards_.empty()) throw std::invalid_argument("Coordinator: no client shards");
    if (config_.rounds == 0) throw std::invalid_argument("Coordinator: zero rounds");
    if (config_.winners_per_round == 0)
        throw std::invalid_argument("Coordinator: zero winners per round");
    eval_indices_.resize(test_.size());
    for (std::size_t i = 0; i < eval_indices_.size(); ++i) eval_indices_[i] = i;
    if (config_.eval_cap > 0 && config_.eval_cap < eval_indices_.size()) {
        eval_indices_.resize(config_.eval_cap);
    }
}

std::vector<Coordinator::ClientTask>
Coordinator::build_tasks(const std::vector<SelectedClient>& picked,
                         stats::Rng& rng) const {
    std::vector<ClientTask> tasks;
    tasks.reserve(picked.size());
    for (const SelectedClient& sel : picked) {
        if (sel.client >= shards_.size())
            throw std::out_of_range("Coordinator: selector picked unknown client");
        const ml::ClientShard& shard = shards_[sel.client];
        if (shard.indices.empty()) continue;

        ClientTask task;
        task.slot = tasks.size();
        task.selected = &sel;
        // Honour the contracted data volume: FMore winners train on the
        // bid data size; baselines train on the full shard.
        task.local = shard.indices;
        if (sel.train_samples.has_value() && *sel.train_samples < task.local.size()) {
            rng.shuffle(task.local);
            task.local.resize(std::max<std::size_t>(1, *sel.train_samples));
        }
        task.seed = rng.engine()();
        tasks.push_back(std::move(task));
    }
    if (tasks.empty())
        throw std::runtime_error("Coordinator: every selected client had an empty shard");
    return tasks;
}

std::size_t Coordinator::eval_batch_count() const {
    return (eval_indices_.size() + ml::kEvalBatch - 1) / ml::kEvalBatch;
}

std::size_t Coordinator::acquire_workers(std::size_t cap,
                                         std::optional<util::ThreadLease>& lease) const {
    // Explicit overrides (config/FMORE_ROUND_THREADS) are honoured even
    // when they overdraw the budget, but still recorded so sibling levels
    // see them; the auto path *claims* its workers atomically — concurrent
    // coordinators split what is free instead of each reading the same
    // remainder — and the calling thread takes a slot of its own unless a
    // trial-level lease already counted it.
    const std::size_t explicit_req = util::explicit_round_threads(config_.round_threads);
    std::size_t workers = 1;
    if (cap > 1) {
        if (explicit_req > 0) {
            workers = std::min(explicit_req, cap);
            lease.emplace(workers - 1, /*exact=*/true);
        } else if (util::ThreadBudget::current_thread_counted()) {
            lease.emplace(cap - 1); // helpers only; the caller is paid for
            workers = 1 + lease->granted();
        } else {
            lease.emplace(cap); // the caller claims its own slot too
            workers = std::max<std::size_t>(1, lease->granted());
        }
    }
    return workers;
}

void Coordinator::train_clients(const std::vector<float>& global,
                                std::vector<ClientTask>& tasks,
                                std::vector<ClientUpdate>& updates,
                                std::size_t workers) {
    // One clone trains one client at a time: set the round's global
    // parameters, reset the training stream to the client's seed, run the
    // local epochs. The computation is a pure function of (global, task),
    // so which worker slot executes it cannot matter.
    auto train_one = [&](ml::Model& model, const ClientTask& task) {
        model.set_parameters(global);
        model.reseed(task.seed);
        ml::TrainStats stats{};
        for (std::size_t e = 0; e < config_.local_epochs; ++e) {
            stats = model.train_epoch(train_, task.local, config_.batch_size,
                                      config_.learning_rate);
        }
        ClientUpdate& update = updates[task.slot];
        update.params = model.get_parameters();
        update.stats = stats;
    };

    if (workers <= 1) {
        // Serial path: the coordinator's own model is the (only) worker.
        for (const ClientTask& task : tasks) train_one(model_, task);
        return;
    }

    if (worker_models_.size() < workers) worker_models_.resize(workers);
    util::ThreadPool::shared().parallel_for(
        tasks.size(), workers - 1, [&](std::size_t slot, std::size_t i) {
            std::unique_ptr<ml::Model>& local = worker_models_[slot];
            if (!local) local = std::make_unique<ml::Model>(model_.clone());
            train_one(*local, tasks[i]);
        });
}

ml::EvalStats Coordinator::evaluate_global(std::size_t workers,
                                           const std::vector<float>& global) {
    const std::size_t batches =
        (eval_indices_.size() + ml::kEvalBatch - 1) / ml::kEvalBatch;
    const std::size_t chunks = std::min(workers, batches);
    if (chunks <= 1) return model_.evaluate(test_, eval_indices_);

    // Batch boundaries are fixed by ml::kEvalBatch (never by the worker
    // count) and records are reduced in batch order, so any chunking is
    // bit-identical to the serial pass.
    std::vector<ml::EvalBatch> records(batches);
    if (worker_models_.size() < chunks) worker_models_.resize(chunks);
    const std::size_t per_chunk = (batches + chunks - 1) / chunks;
    util::ThreadPool::shared().parallel_for(
        chunks, workers - 1, [&](std::size_t slot, std::size_t c) {
            const std::size_t lo = c * per_chunk;
            const std::size_t hi = std::min(batches, lo + per_chunk);
            if (lo >= hi) return;
            std::unique_ptr<ml::Model>& local = worker_models_[slot];
            if (!local) local = std::make_unique<ml::Model>(model_.clone());
            local->set_parameters(global);
            local->evaluate_batches(test_, eval_indices_, ml::kEvalBatch, lo, hi,
                                    records.data());
        });
    return ml::reduce_eval_batches(records);
}

RunResult Coordinator::run(ClientSelector& selector, stats::Rng& rng,
                           const RoundTimeModel& time_model, const RunControl* control) {
    RunResult result;
    std::vector<float> global = model_.get_parameters();
    std::size_t first_round = 1;
    if (control) {
        first_round = control->start_round;
        result.rounds = control->prior_rounds;
        if (!control->global.empty()) {
            global = control->global;
            model_.set_parameters(global);
        }
    }

    for (std::size_t round = first_round; round <= config_.rounds; ++round) {
        RoundMetrics metrics;
        metrics.round = round;
        metrics.selection = selector.select(round, config_.winners_per_round, rng);
        metrics.dropped_shards = metrics.selection.dropped_shards.size();
        const std::vector<SelectedClient>& picked = metrics.selection.selected;
        if (picked.empty())
            throw std::runtime_error("Coordinator: selector returned no clients");

        // Serial pre-pass in selection order: everything that touches the
        // shared round RNG (contracted-volume subsampling, the per-client
        // training seeds) happens here, so the stream is independent of
        // scheduling.
        std::vector<ClientTask> tasks = build_tasks(picked, rng);

        // Size the round's workers, capped at the widest parallel section
        // (client trainings or eval batches).
        const std::size_t cap = std::max(tasks.size(), eval_batch_count());
        std::optional<util::ThreadLease> lease;
        const std::size_t workers = acquire_workers(cap, lease);

        std::vector<ClientUpdate> updates(tasks.size());
        train_clients(global, tasks, updates, std::min(workers, tasks.size()));

        // Fixed-order aggregation over the selection-order slots.
        // `client_samples` stays parallel to `picked` — a selected client
        // whose shard was empty trained nothing, and the RoundTimeModel
        // zips samples with `selection.selected` positionally.
        std::vector<std::vector<float>> client_params;
        std::vector<double> client_weights;
        std::vector<std::size_t> client_samples(picked.size(), 0);
        client_params.reserve(tasks.size());
        client_weights.reserve(tasks.size());
        double train_loss_sum = 0.0;
        double train_loss_weight = 0.0;
        for (ClientTask& task : tasks) {
            ClientUpdate& update = updates[task.slot];
            const auto weight = static_cast<double>(task.local.size());
            client_params.push_back(std::move(update.params));
            client_weights.push_back(weight);
            client_samples[static_cast<std::size_t>(task.selected - picked.data())] =
                task.local.size();
            train_loss_sum += update.stats.mean_loss * weight;
            train_loss_weight += weight;
            metrics.mean_winner_payment += task.selected->payment;
            metrics.mean_winner_score += task.selected->score;
        }

        global = federated_average(client_params, client_weights);
        model_.set_parameters(global);

        const ml::EvalStats eval = evaluate_global(workers, global);
        metrics.aggregated_updates = tasks.size();
        metrics.test_accuracy = eval.accuracy;
        metrics.test_loss = eval.mean_loss;
        metrics.train_loss =
            train_loss_weight > 0.0 ? train_loss_sum / train_loss_weight : 0.0;
        const auto n_sel = static_cast<double>(picked.size());
        metrics.mean_winner_payment /= n_sel;
        metrics.mean_winner_score /= n_sel;
        if (time_model) {
            metrics.round_seconds = time_model(metrics.selection, client_samples);
        }
        result.rounds.push_back(std::move(metrics));
        if (control && control->on_round)
            control->on_round(round, result.rounds, global, {}, 0);
    }
    return result;
}

} // namespace fmore::fl
