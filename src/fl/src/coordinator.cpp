#include "fmore/fl/coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmore/fl/fedavg.hpp"

namespace fmore::fl {

Coordinator::Coordinator(ml::Model& model, const ml::Dataset& train,
                         const ml::Dataset& test, std::vector<ml::ClientShard> shards,
                         CoordinatorConfig config)
    : model_(model),
      train_(train),
      test_(test),
      shards_(std::move(shards)),
      config_(config) {
    if (shards_.empty()) throw std::invalid_argument("Coordinator: no client shards");
    if (config_.rounds == 0) throw std::invalid_argument("Coordinator: zero rounds");
    if (config_.winners_per_round == 0)
        throw std::invalid_argument("Coordinator: zero winners per round");
    eval_indices_.resize(test_.size());
    for (std::size_t i = 0; i < eval_indices_.size(); ++i) eval_indices_[i] = i;
    if (config_.eval_cap > 0 && config_.eval_cap < eval_indices_.size()) {
        eval_indices_.resize(config_.eval_cap);
    }
}

RunResult Coordinator::run(ClientSelector& selector, stats::Rng& rng,
                           const RoundTimeModel& time_model) {
    RunResult result;
    std::vector<float> global = model_.get_parameters();

    for (std::size_t round = 1; round <= config_.rounds; ++round) {
        RoundMetrics metrics;
        metrics.round = round;
        metrics.selection = selector.select(round, config_.winners_per_round, rng);
        const std::vector<SelectedClient>& picked = metrics.selection.selected;
        if (picked.empty())
            throw std::runtime_error("Coordinator: selector returned no clients");

        std::vector<std::vector<float>> client_params;
        std::vector<double> client_weights;
        std::vector<std::size_t> client_samples;
        client_params.reserve(picked.size());
        client_weights.reserve(picked.size());
        double train_loss_sum = 0.0;
        double train_loss_weight = 0.0;

        for (const SelectedClient& sel : picked) {
            if (sel.client >= shards_.size())
                throw std::out_of_range("Coordinator: selector picked unknown client");
            const ml::ClientShard& shard = shards_[sel.client];
            if (shard.indices.empty()) continue;

            // Honour the contracted data volume: FMore winners train on the
            // bid data size; baselines train on the full shard.
            std::vector<std::size_t> local = shard.indices;
            if (sel.train_samples.has_value() && *sel.train_samples < local.size()) {
                rng.shuffle(local);
                local.resize(std::max<std::size_t>(1, *sel.train_samples));
            }

            model_.set_parameters(global);
            ml::TrainStats stats{};
            for (std::size_t e = 0; e < config_.local_epochs; ++e) {
                stats = model_.train_epoch(train_, local, config_.batch_size,
                                           config_.learning_rate);
            }
            client_params.push_back(model_.get_parameters());
            client_weights.push_back(static_cast<double>(local.size()));
            client_samples.push_back(local.size());
            train_loss_sum += stats.mean_loss * static_cast<double>(local.size());
            train_loss_weight += static_cast<double>(local.size());

            metrics.mean_winner_payment += sel.payment;
            metrics.mean_winner_score += sel.score;
        }
        if (client_params.empty())
            throw std::runtime_error("Coordinator: every selected client had an empty shard");

        global = federated_average(client_params, client_weights);
        model_.set_parameters(global);

        const ml::EvalStats eval = model_.evaluate(test_, eval_indices_);
        metrics.test_accuracy = eval.accuracy;
        metrics.test_loss = eval.mean_loss;
        metrics.train_loss =
            train_loss_weight > 0.0 ? train_loss_sum / train_loss_weight : 0.0;
        const auto n_sel = static_cast<double>(picked.size());
        metrics.mean_winner_payment /= n_sel;
        metrics.mean_winner_score /= n_sel;
        if (time_model) {
            metrics.round_seconds = time_model(metrics.selection, client_samples);
        }
        result.rounds.push_back(std::move(metrics));
    }
    return result;
}

} // namespace fmore::fl
