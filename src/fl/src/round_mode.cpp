#include "fmore/fl/round_mode.hpp"

#include <stdexcept>

namespace fmore::fl {

std::string to_string(RoundMode mode) {
    switch (mode) {
        case RoundMode::sync: return "sync";
        case RoundMode::semi_sync: return "semi_sync";
        case RoundMode::async: return "async";
    }
    return "?";
}

RoundMode parse_round_mode(const std::string& text) {
    if (text == "sync") return RoundMode::sync;
    if (text == "semi_sync") return RoundMode::semi_sync;
    if (text == "async") return RoundMode::async;
    throw std::invalid_argument("round mode '" + text
                                + "': expected sync, semi_sync or async");
}

} // namespace fmore::fl
