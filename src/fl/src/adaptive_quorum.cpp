#include "fmore/fl/adaptive_quorum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fmore::fl {

namespace {

/// The same nearest-rank interpolated percentile RunResult::health() uses,
/// so a window's p99 agrees with the run-level telemetry it samples.
double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

} // namespace

AdaptiveQuorumController::AdaptiveQuorumController(AdaptiveQuorumConfig config)
    : config_(config) {
    if (config_.initial == 0)
        throw std::invalid_argument(
            "AdaptiveQuorumController: initial quorum must be >= 1 (0 would "
            "disable the quorum trigger the controller exists to tune)");
    if (config_.window == 0)
        throw std::invalid_argument(
            "AdaptiveQuorumController: window must be >= 1");
    if (config_.min_quorum == 0) config_.min_quorum = 1;
    if (config_.max_quorum == 0) config_.max_quorum = config_.initial;
    if (config_.min_quorum > config_.max_quorum
        || config_.initial < config_.min_quorum
        || config_.initial > config_.max_quorum)
        throw std::invalid_argument(
            "AdaptiveQuorumController: need min_quorum <= initial <= "
            "max_quorum (got " + std::to_string(config_.min_quorum) + " / "
            + std::to_string(config_.initial) + " / "
            + std::to_string(config_.max_quorum) + ")");
    if (!(config_.slack_ratio >= 0.0) || !(config_.slack_ratio <= 1.0)
        || std::isnan(config_.slack_ratio))
        throw std::invalid_argument(
            "AdaptiveQuorumController: slack_ratio must be in [0, 1]");
    if (!(config_.dominance > 0.0) || !(config_.dominance <= 1.0)
        || std::isnan(config_.dominance))
        throw std::invalid_argument(
            "AdaptiveQuorumController: dominance must be in (0, 1]");
    if (!(config_.deadline_s >= 0.0) || std::isnan(config_.deadline_s))
        throw std::invalid_argument(
            "AdaptiveQuorumController: deadline_s must be finite and >= 0");
    quorum_ = config_.initial;
    step_ = config_.step > 0 ? config_.step
                             : std::max<std::size_t>(1, config_.initial / 8);
    window_close_times_.reserve(config_.window);
}

void AdaptiveQuorumController::observe(const std::string& close_reason,
                                       double close_time_s) {
    if (close_reason == "quorum") ++window_quorum_closes_;
    if (close_reason == "deadline") ++window_deadline_closes_;
    window_close_times_.push_back(close_time_s);

    if (window_close_times_.size() >= config_.window) {
        const double denom = static_cast<double>(window_close_times_.size());
        const double deadline_frac =
            static_cast<double>(window_deadline_closes_) / denom;
        const double quorum_frac =
            static_cast<double>(window_quorum_closes_) / denom;
        if (deadline_frac >= config_.dominance) {
            // The quorum is stalling: rounds sit out the whole deadline.
            const std::size_t drop = std::min(step_, quorum_ - config_.min_quorum);
            quorum_ -= drop;
        } else if (quorum_frac >= config_.dominance && config_.deadline_s > 0.0
                   && percentile(window_close_times_, 99.0)
                          <= config_.slack_ratio * config_.deadline_s) {
            // Comfortably early quorum closes: spend the idle latency
            // budget on a deeper market.
            const std::size_t raise = std::min(step_, config_.max_quorum - quorum_);
            quorum_ += raise;
        }
        window_quorum_closes_ = 0;
        window_deadline_closes_ = 0;
        window_close_times_.clear();
    }
    schedule_.push_back(quorum_);
}

} // namespace fmore::fl
