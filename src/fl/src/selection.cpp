#include "fmore/fl/selection.hpp"

#include <stdexcept>

namespace fmore::fl {

RandomSelector::RandomSelector(std::size_t num_clients) : num_clients_(num_clients) {
    if (num_clients_ == 0) throw std::invalid_argument("RandomSelector: no clients");
}

SelectionRecord RandomSelector::select(std::size_t /*round*/, std::size_t k,
                                       stats::Rng& rng) {
    const std::size_t take = std::min(k, num_clients_);
    SelectionRecord record;
    for (const std::size_t idx : rng.sample_without_replacement(num_clients_, take)) {
        record.selected.push_back(SelectedClient{idx, 0.0, 0.0, std::nullopt});
    }
    return record;
}

FixedSelector::FixedSelector(std::size_t num_clients, std::size_t k, stats::Rng& rng) {
    if (num_clients == 0) throw std::invalid_argument("FixedSelector: no clients");
    fixed_ = rng.sample_without_replacement(num_clients, std::min(k, num_clients));
}

FixedSelector::FixedSelector(std::vector<std::size_t> fixed) : fixed_(std::move(fixed)) {
    if (fixed_.empty()) throw std::invalid_argument("FixedSelector: empty set");
}

SelectionRecord FixedSelector::select(std::size_t /*round*/, std::size_t k,
                                      stats::Rng& /*rng*/) {
    SelectionRecord record;
    const std::size_t take = std::min(k, fixed_.size());
    for (std::size_t i = 0; i < take; ++i) {
        record.selected.push_back(SelectedClient{fixed_[i], 0.0, 0.0, std::nullopt});
    }
    return record;
}

} // namespace fmore::fl
