#include "fmore/fl/async_coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fmore/fl/fedavg.hpp"

namespace fmore::fl {

namespace {

bool bad(double value) { return std::isnan(value) || std::isinf(value); }

} // namespace

AsyncCoordinator::AsyncCoordinator(ml::Model& model, const ml::Dataset& train,
                                   const ml::Dataset& test,
                                   std::vector<ml::ClientShard> shards,
                                   CoordinatorConfig config,
                                   AsyncCoordinatorConfig async_config)
    : Coordinator(model, train, test, std::move(shards), config),
      async_(async_config) {
    if (async_.mode == RoundMode::sync)
        throw std::invalid_argument(
            "AsyncCoordinator: mode = sync — use fl::Coordinator for the "
            "synchronous barrier");
    if (async_.min_updates > config.winners_per_round)
        throw std::invalid_argument(
            "AsyncCoordinator: min_updates = " + std::to_string(async_.min_updates)
            + " exceeds winners_per_round = "
            + std::to_string(config.winners_per_round));
    if (bad(async_.round_deadline_s) || async_.round_deadline_s < 0.0)
        throw std::invalid_argument(
            "AsyncCoordinator: round_deadline_s must be finite and >= 0");
    if (async_.round_deadline_s > 0.0 && async_.mode != RoundMode::semi_sync)
        throw std::invalid_argument(
            "AsyncCoordinator: round_deadline_s only applies to semi_sync "
            "(async aggregates purely on update count)");
    if (bad(async_.staleness_alpha) || async_.staleness_alpha < 0.0)
        throw std::invalid_argument(
            "AsyncCoordinator: staleness_alpha must be finite and >= 0");
    if (bad(async_.round_overhead_s) || async_.round_overhead_s < 0.0
        || bad(async_.auction_overhead_s) || async_.auction_overhead_s < 0.0)
        throw std::invalid_argument(
            "AsyncCoordinator: overheads must be finite and >= 0");
}

RunResult AsyncCoordinator::run_async(ClientSelector& selector, stats::Rng& rng,
                                      const ClientTimeModel& time_model,
                                      const RunControl* control) {
    if (!time_model)
        throw std::invalid_argument("AsyncCoordinator: null ClientTimeModel — "
                                    "async rounds need a per-client clock");

    RunResult result;
    std::vector<float> global = model_.get_parameters();
    std::vector<InFlight> flight;
    std::uint64_t next_seq = 0;
    std::size_t first_round = 1;
    constexpr double kNever = std::numeric_limits<double>::infinity();
    if (control) {
        first_round = control->start_round;
        result.rounds = control->prior_rounds;
        if (!control->global.empty()) {
            global = control->global;
            model_.set_parameters(global);
        }
        next_seq = control->next_seq;
        flight.reserve(control->flight.size());
        for (const InFlightUpdate& u : control->flight) {
            InFlight entry;
            entry.seq = u.seq;
            entry.base_round = u.base_round;
            entry.weight = u.weight;
            entry.arrival = u.dropped ? kNever : u.arrival;
            entry.dropped = u.dropped;
            entry.params = u.params;
            entry.stats = u.stats;
            flight.push_back(std::move(entry));
        }
    }

    for (std::size_t round = first_round; round <= config_.rounds; ++round) {
        RoundMetrics metrics;
        metrics.round = round;
        metrics.selection = selector.select(round, config_.winners_per_round, rng);
        metrics.dropped_shards = metrics.selection.dropped_shards.size();
        const std::vector<SelectedClient>& picked = metrics.selection.selected;
        if (picked.empty())
            throw std::runtime_error("AsyncCoordinator: selector returned no clients");

        // Serial pre-pass, selection order: the shared Coordinator pre-pass
        // (contracted-volume subsampling, per-client training seeds), then
        // this mode's timing draws — one DispatchTiming per task, in slot
        // order, so dropout draws consume the round RNG deterministically.
        std::vector<ClientTask> tasks = build_tasks(picked, rng);
        struct DispatchInfo {
            double weight = 0.0;   ///< samples this dispatch trains (D_i)
            double payment = 0.0;
            double score = 0.0;
            double seconds = 0.0;
            bool dropped = false;
        };
        std::vector<DispatchInfo> dispatch(tasks.size());
        for (const ClientTask& task : tasks) {
            const DispatchTiming t =
                time_model(task.selected->client, task.local.size(), rng);
            dispatch[task.slot] = DispatchInfo{static_cast<double>(task.local.size()),
                                               task.selected->payment,
                                               task.selected->score,
                                               t.seconds,
                                               t.dropped};
        }

        // Train the dispatches that will eventually report. Dropped clients
        // never deliver, so their training is skipped outright — safe
        // because every task already owns its seed (no shared stream).
        std::vector<ClientTask> trainable;
        trainable.reserve(tasks.size());
        for (ClientTask& task : tasks) {
            if (!dispatch[task.slot].dropped) trainable.push_back(std::move(task));
        }
        const std::size_t cap = std::max(trainable.size(), eval_batch_count());
        std::optional<util::ThreadLease> lease;
        const std::size_t workers = acquire_workers(cap, lease);
        std::vector<ClientUpdate> updates(dispatch.size()); // slot-addressed
        if (!trainable.empty()) {
            train_clients(global, trainable, updates,
                          std::min(workers, trainable.size()));
        }

        // Enter this round's dispatches into the in-flight set, slot order.
        // `arrival` is relative to the round start; dropped dispatches
        // never arrive but do anchor this round's aggregation (the server
        // cannot know yet that they died).
        for (std::size_t slot = 0; slot < dispatch.size(); ++slot) {
            const DispatchInfo& info = dispatch[slot];
            InFlight entry;
            entry.seq = next_seq++;
            entry.base_round = round;
            entry.weight = info.weight;
            if (info.dropped) {
                entry.arrival = kNever;
                entry.dropped = true;
            } else {
                entry.arrival = info.seconds;
                entry.params = std::move(updates[slot].params);
                entry.stats = updates[slot].stats;
            }
            flight.push_back(std::move(entry));
        }

        // When does this round's aggregation fire? Walk pending arrivals in
        // time order (ties by dispatch order). `min_updates` counts *this
        // round's* dispatches — carried-over late updates merge
        // opportunistically when the trigger fires but never hasten it
        // (they land near t=0 and would otherwise collapse every round to
        // the overhead floor, aggregating nothing but stale state). 0 means
        // "every dispatched winner" — the synchronous barrier.
        std::vector<std::size_t> order; // indices into flight, arriving entries
        for (std::size_t i = 0; i < flight.size(); ++i) {
            if (!flight[i].dropped) order.push_back(i);
        }
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            if (flight[a].arrival != flight[b].arrival)
                return flight[a].arrival < flight[b].arrival;
            return flight[a].seq < flight[b].seq;
        });
        const std::size_t want_raw =
            async_.min_updates == 0 ? trainable.size() : async_.min_updates;
        const std::size_t want = std::max<std::size_t>(want_raw, 1);
        const bool deadline_active =
            async_.mode == RoundMode::semi_sync && async_.round_deadline_s > 0.0;

        double trigger = 0.0;
        if (!order.empty()) {
            // Arrival of the want-th fresh update, if dropouts leave that
            // many; the last fresh arrival otherwise.
            double reached = -1.0;
            double last_fresh = -1.0;
            std::size_t fresh_seen = 0;
            for (const std::size_t i : order) {
                if (flight[i].base_round != round) continue;
                last_fresh = flight[i].arrival;
                if (++fresh_seen == want) {
                    reached = flight[i].arrival;
                    break;
                }
            }
            if (reached >= 0.0) {
                trigger = reached;
                if (deadline_active && async_.round_deadline_s < trigger) {
                    // Deadline fires first — but never aggregate thin air:
                    // stretch to the first arrival when nothing landed yet.
                    trigger =
                        std::max(async_.round_deadline_s, flight[order[0]].arrival);
                }
            } else if (deadline_active) {
                // Dropouts make min_updates unreachable, but the server
                // cannot know that — it holds the round open to its
                // deadline (stretched to the first arrival when even that
                // brings nothing).
                trigger = std::max(async_.round_deadline_s, flight[order[0]].arrival);
            } else if (last_fresh >= 0.0) {
                // No deadline to wait for: close on the last fresh arrival.
                trigger = last_fresh;
            } else {
                // Only carried updates remain; close on the first so the
                // run still makes progress.
                trigger = flight[order[0]].arrival;
            }
        } else {
            // Pathological round: every dispatch (and everything carried)
            // dropped. Close the round at the deadline and move on with the
            // global unchanged.
            trigger = deadline_active ? async_.round_deadline_s : 0.0;
        }

        // Everything that has landed by the trigger participates, freshest
        // staleness first in dispatch order (== selection-slot order within
        // a round, which is what makes the no-straggler case bit-identical
        // to the sync coordinator's aggregation).
        std::vector<std::size_t> participants;
        for (const std::size_t i : order) {
            if (flight[i].arrival <= trigger) participants.push_back(i);
        }
        std::sort(participants.begin(), participants.end(),
                  [&](std::size_t a, std::size_t b) {
                      return flight[a].seq < flight[b].seq;
                  });

        // Staleness expiry has one authority — the carry loop below, which
        // never lets an entry survive past max_staleness — so everything
        // arriving here merges.
        std::vector<std::vector<float>> client_params;
        std::vector<double> client_weights;
        double train_loss_sum = 0.0;
        double train_loss_weight = 0.0;
        double staleness_sum = 0.0;
        const std::size_t merged = participants.size();
        for (const std::size_t i : participants) {
            InFlight& entry = flight[i];
            const std::size_t staleness = round - entry.base_round;
            const double decay =
                std::pow(1.0 + static_cast<double>(staleness), async_.staleness_alpha);
            const double weight = entry.weight / decay;
            client_params.push_back(std::move(entry.params));
            client_weights.push_back(weight);
            train_loss_sum += entry.stats.mean_loss * weight;
            train_loss_weight += weight;
            staleness_sum += static_cast<double>(staleness);
        }

        // Clients the server has not heard from anchor the current global
        // at full data weight — absent winners implicitly vote "no change",
        // so a thin aggregation takes a proportionally small step instead
        // of being yanked toward whichever client happened to be fastest.
        double anchor = 0.0;
        for (const InFlight& entry : flight) {
            if (!entry.dropped && entry.arrival <= trigger) continue; // merged
            anchor += entry.weight;
        }
        if (merged > 0) {
            if (anchor > 0.0) {
                client_params.push_back(global);
                client_weights.push_back(anchor);
            }
            global = federated_average(client_params, client_weights);
            model_.set_parameters(global);
        }

        // Metrics mirror the sync coordinator's definitions; payment/score
        // average over the round's *selection* in slot order (the auction
        // happened and the payments are owed regardless of who finished in
        // time).
        for (const DispatchInfo& info : dispatch) {
            metrics.mean_winner_payment += info.payment;
            metrics.mean_winner_score += info.score;
        }
        const auto n_sel = static_cast<double>(picked.size());
        metrics.mean_winner_payment /= n_sel;
        metrics.mean_winner_score /= n_sel;

        const ml::EvalStats eval = evaluate_global(workers, global);
        metrics.test_accuracy = eval.accuracy;
        metrics.test_loss = eval.mean_loss;
        metrics.train_loss =
            train_loss_weight > 0.0 ? train_loss_sum / train_loss_weight : 0.0;
        metrics.aggregated_updates = merged;
        metrics.mean_staleness =
            merged > 0 ? staleness_sum / static_cast<double>(merged) : 0.0;
        metrics.round_seconds = trigger + async_.round_overhead_s;
        metrics.round_seconds += async_.auction_overhead_s;
        result.rounds.push_back(std::move(metrics));

        // Carry the survivors: drop what merged, expired or died, and
        // rebase arrivals onto the next round's clock (clients keep
        // computing through the aggregation overhead, hence the floor).
        const double elapsed = result.rounds.back().round_seconds;
        std::vector<InFlight> carried;
        carried.reserve(flight.size());
        for (InFlight& entry : flight) {
            if (entry.dropped) continue;
            if (entry.arrival <= trigger) continue;
            const std::size_t next_staleness = round + 1 - entry.base_round;
            if (async_.max_staleness > 0 && next_staleness > async_.max_staleness)
                continue;
            entry.arrival = std::max(0.0, entry.arrival - elapsed);
            carried.push_back(std::move(entry));
        }
        flight = std::move(carried);

        if (control && control->on_round) {
            // Snapshot the carry state exactly as the next round will see
            // it: dropped entries are already gone, arrivals are rebased.
            std::vector<InFlightUpdate> carry;
            carry.reserve(flight.size());
            for (const InFlight& entry : flight) {
                InFlightUpdate u;
                u.seq = entry.seq;
                u.base_round = entry.base_round;
                u.weight = entry.weight;
                u.arrival = entry.arrival;
                u.dropped = entry.dropped;
                u.params = entry.params;
                u.stats = entry.stats;
                carry.push_back(std::move(u));
            }
            control->on_round(round, result.rounds, global, carry, next_seq);
        }
    }
    return result;
}

} // namespace fmore::fl
