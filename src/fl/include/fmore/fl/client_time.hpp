#pragma once

/// @file client_time.hpp
/// Per-client dispatch timing for async/semi-sync rounds. Split out of
/// async_coordinator.hpp (like round_mode.hpp) so timing providers —
/// mec::ClusterTimeModel in particular — can name the adapter types
/// without pulling in the coordinator/model/dataset header stack.

#include <cstddef>
#include <functional>

#include "fmore/stats/rng.hpp"

namespace fmore::fl {

/// Simulated timing of one dispatched client: seconds from dispatch until
/// its update arrives at the server, or `dropped` when it never reports
/// (device failure / churn).
struct DispatchTiming {
    double seconds = 0.0;
    bool dropped = false;
};

/// Per-dispatch wall-clock model for async rounds: given the client, the
/// samples it will train on and the round RNG (consumed only by stochastic
/// models, e.g. dropout draws — deterministic models must not touch it),
/// return when its update lands. Provided by
/// `mec::ClusterTimeModel::as_client_time_model`.
using ClientTimeModel = std::function<DispatchTiming(
    std::size_t client, std::size_t samples, stats::Rng& rng)>;

} // namespace fmore::fl
