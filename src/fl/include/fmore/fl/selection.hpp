#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fmore/stats/rng.hpp"

namespace fmore::fl {

/// Per-winner outcome of one selection round. `train_samples`, when set,
/// caps how many of the client's local samples this round's contract covers
/// (FMore winners train on the data volume they bid; RandFL/FixFL clients
/// train on everything they have).
struct SelectedClient {
    std::size_t client = 0;
    double payment = 0.0;
    double score = 0.0;
    std::optional<std::size_t> train_samples;
};

/// Health counters of one sharded market round: what the supervisor saw,
/// detected and repaired while assembling the round. All zero for
/// unsharded selectors. The mec layer aliases this as `mec::ShardHealth`
/// (fl sits below mec in the module order, so the struct lives here where
/// `SelectionRecord` can carry it).
struct ShardHealth {
    /// Shards whose head made it into this round (0 = unsharded market).
    std::size_t live_shards = 0;
    /// Frames whose checksum or self-described length failed verification.
    /// Detected frames are NEVER consumed — they are re-requested once,
    /// then the worker is evicted.
    std::size_t corrupt_frames = 0;
    /// Bounded re-requests issued after a corrupt or short frame.
    std::size_t frame_retries = 0;
    /// Workers killed and unsubscribed this round (deadline miss, death,
    /// or a second bad frame).
    std::size_t evictions = 0;
    /// Workers re-forked and re-synced with round state this round.
    std::size_t respawns = 0;
};

/// Result of one selection round, including the full score board when the
/// strategy is auction-based (Fig. 8 plots the population-vs-winner score
/// distributions).
struct SelectionRecord {
    std::vector<SelectedClient> selected;
    /// Descending scores; empty for non-auction strategies. Complete by
    /// default; truncated to the entries winner selection needed when the
    /// experiment opts out of the full board
    /// (`AuctionSpec::full_scoreboard = false`, the O(N log K) path).
    std::vector<double> all_scores;
    /// Score of each client indexed by client id (empty for non-auction
    /// strategies); lets benches look up what a *differently* selected
    /// node would have scored on the same board.
    std::vector<double> scores_by_node;
    /// Market shards whose bids missed this round's deadline (sharded
    /// selectors only; empty = full market). A degraded round still
    /// selects winners — from the responsive shards' bids.
    std::vector<std::size_t> dropped_shards;
    /// Supervision counters for the round (sharded selectors only).
    ShardHealth shard_health;
    /// Why a streaming round stopped accepting bids ("quorum", "deadline",
    /// "exhausted"); empty for batch selectors.
    std::string close_reason;
    /// Virtual time at which the streaming round closed.
    double close_time_s = 0.0;
    /// Bids that arrived before the streaming round closed.
    std::size_t arrived_bids = 0;
    /// Bid quorum this streaming round OPENED with (`timing.min_updates`,
    /// or the adaptive controller's current target when
    /// `timing.adaptive_quorum` is on); 0 for batch selectors. The
    /// per-round sequence of these IS the quorum schedule the adaptive
    /// determinism test replays.
    std::size_t bid_quorum = 0;
};

/// Selector state a durable-run checkpoint carries (defined in
/// run_state.hpp; forward-declared here to keep the include order acyclic).
struct SelectorCheckpoint;

/// Strategy interface: which K clients train in a given round.
class ClientSelector {
public:
    virtual ~ClientSelector() = default;
    [[nodiscard]] virtual SelectionRecord select(std::size_t round, std::size_t k,
                                                 stats::Rng& rng) = 0;
    [[nodiscard]] virtual std::string name() const = 0;
    /// True when winners train only on the data volume their accepted bid
    /// covers (`SelectedClient::train_samples`). Wall-clock models use this
    /// to decide between contracted-volume and whole-shard round timing, so
    /// custom auction-style selectors must override it — it is a capability
    /// flag, not a type check.
    [[nodiscard]] virtual bool contracts_data_volume() const { return false; }
    /// Durable-run hooks: record into / restore from a checkpoint whatever
    /// per-run state the selector accumulates (bans, adaptive-quorum
    /// telemetry). Stateless selectors — the baselines — keep the no-op
    /// defaults; their draws come entirely from the run RNG, which the
    /// checkpoint captures separately.
    virtual void save_checkpoint(SelectorCheckpoint&) const {}
    virtual void restore_checkpoint(const SelectorCheckpoint&) {}
};

/// RandFL — the classic federated learning baseline: "the aggregator
/// randomly chooses K nodes from all the N edge nodes" (Section II.B).
class RandomSelector final : public ClientSelector {
public:
    explicit RandomSelector(std::size_t num_clients);
    [[nodiscard]] SelectionRecord select(std::size_t round, std::size_t k,
                                         stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "RandFL"; }

private:
    std::size_t num_clients_;
};

/// FixFL — "federated learning with fixed node selection" (Section V.A):
/// one random set of K nodes is drawn up front and reused every round.
class FixedSelector final : public ClientSelector {
public:
    FixedSelector(std::size_t num_clients, std::size_t k, stats::Rng& rng);
    /// Pin an explicit winner set (tests).
    explicit FixedSelector(std::vector<std::size_t> fixed);
    [[nodiscard]] SelectionRecord select(std::size_t round, std::size_t k,
                                         stats::Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "FixFL"; }

private:
    std::vector<std::size_t> fixed_;
};

} // namespace fmore::fl
