#pragma once

/// @file run_state.hpp
/// The resumable-run seam between the coordinators and the durable-run
/// subsystem (docs/ARCHITECTURE.md, "Durability model"). A checkpoint saved
/// after round r captures exactly the state both run loops carry across the
/// round boundary; `RunControl` injects that state back so round r+1 of a
/// resumed run replays bit-identically to a never-interrupted one.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fmore/fl/metrics.hpp"
#include "fmore/ml/model.hpp"

namespace fmore::fl {

/// One dispatched-but-unmerged client training of the async/semi-sync
/// coordinator, in checkpointable form (mirrors its private `InFlight`
/// bookkeeping field for field). Sync runs carry none.
struct InFlightUpdate {
    std::uint64_t seq = 0;       ///< global dispatch order (aggregation order)
    std::size_t base_round = 0;  ///< round whose global it trained on
    double weight = 0.0;         ///< D_i — samples actually trained
    double arrival = 0.0;        ///< seconds after the current round's start
    bool dropped = false;
    std::vector<float> params;
    ml::TrainStats stats;
};

/// Selector-side state a checkpoint carries: the blacklist and, for the
/// streaming lanes, the close telemetry tape the adaptive quorum controller
/// is a pure function of. Population columns are NOT here — every selector
/// lane reads the trial-owned population, which the trial snapshots itself.
struct SelectorCheckpoint {
    std::vector<std::uint64_t> banned_nodes;
    /// (close_reason, close_time_s) per completed streaming round, in round
    /// order — the observations the AdaptiveQuorumController is a pure
    /// function of; replaying them reconstructs its schedule state exactly.
    /// The trial rebuilds this from the checkpointed metrics tape.
    std::vector<std::pair<std::string, double>> close_replay;
};

/// Resume-and-checkpoint harness for one run. Default-constructed (or
/// absent) it changes nothing: rounds start at 1 from the model's initial
/// parameters with an empty tape.
struct RunControl {
    /// First round to execute (completed_rounds + 1 when resuming).
    std::size_t start_round = 1;
    /// Metrics of the rounds already completed before the restart; the run
    /// result is the concatenation, so a resumed tape is indistinguishable
    /// from an uninterrupted one.
    std::vector<RoundMetrics> prior_rounds;
    /// Global parameters entering `start_round` (empty = model's current).
    std::vector<float> global;
    /// Async lanes only: dispatches still in flight at the checkpoint.
    std::vector<InFlightUpdate> flight;
    /// Async lanes only: next dispatch sequence number.
    std::uint64_t next_seq = 0;
    /// Called after each completed round with the metrics tape so far and
    /// the global parameters leaving the round — where the trial writes
    /// checkpoints (and where the deterministic coordinator-kill faults
    /// fire). The flight/seq arguments mirror the async carry state (empty
    /// and 0 for sync runs).
    std::function<void(std::size_t round, const std::vector<RoundMetrics>& rounds,
                       const std::vector<float>& global,
                       const std::vector<InFlightUpdate>& flight,
                       std::uint64_t next_seq)>
        on_round;
};

} // namespace fmore::fl
