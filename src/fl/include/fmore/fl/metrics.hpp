#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "fmore/fl/selection.hpp"

namespace fmore::fl {

/// Metrics of one federated round.
struct RoundMetrics {
    std::size_t round = 0;
    double test_accuracy = 0.0;
    double test_loss = 0.0;
    double train_loss = 0.0;
    double mean_winner_payment = 0.0;
    double mean_winner_score = 0.0;
    double round_seconds = 0.0; ///< filled by the MEC time model when present
    /// Client updates merged into this round's global (== the winner count
    /// for sync rounds; can be fewer or include carried-over late updates
    /// for semi_sync/async rounds).
    std::size_t aggregated_updates = 0;
    /// Mean staleness (global versions elapsed since dispatch) of the
    /// merged updates; 0 for sync rounds and fresh-only aggregations.
    double mean_staleness = 0.0;
    /// Market shards that missed this round's bid deadline (sharded
    /// selection only; 0 = the round saw the whole market).
    std::size_t dropped_shards = 0;
    SelectionRecord selection;
};

/// Run-level health summary distilled from the per-round selection
/// telemetry: the streaming close-reason mix and tail close latency (the
/// adaptive-quorum seed — a later PR tunes `timing.min_updates` from
/// these) next to the shard-supervision counters.
struct RoundHealth {
    std::size_t rounds = 0;
    /// Rounds that carried streaming close telemetry (non-empty
    /// close_reason); the fractions below are over these rounds.
    std::size_t streaming_rounds = 0;
    double quorum_close_fraction = 0.0;
    double deadline_close_fraction = 0.0;
    /// Virtual close-time percentiles over the streaming rounds. NaN when
    /// the run had NO streaming rounds — a run that never streamed has no
    /// close times, which is not the same thing as closing at t = 0;
    /// consumers must gate on `streaming_rounds` (or std::isnan) before
    /// comparing or serializing these.
    double close_p50_s = std::numeric_limits<double>::quiet_NaN();
    double close_p99_s = std::numeric_limits<double>::quiet_NaN();
    /// Rounds that lost at least one market shard.
    std::size_t rounds_degraded = 0;
    std::size_t shard_evictions = 0;
    std::size_t shard_respawns = 0;
    std::size_t corrupt_frames = 0;
    std::size_t frame_retries = 0;
};

/// Full history of one federated run.
struct RunResult {
    std::vector<RoundMetrics> rounds;

    [[nodiscard]] double final_accuracy() const;
    [[nodiscard]] double final_loss() const;
    /// First round index (1-based) whose test accuracy reaches `target`, or
    /// nullopt if the run never got there.
    [[nodiscard]] std::optional<std::size_t> rounds_to_accuracy(double target) const;
    /// Cumulative wall-clock until `target` accuracy (MEC experiments).
    [[nodiscard]] std::optional<double> seconds_to_accuracy(double target) const;
    [[nodiscard]] double total_seconds() const;
    /// Aggregate the per-round close/supervision telemetry.
    [[nodiscard]] RoundHealth health() const;
};

} // namespace fmore::fl
