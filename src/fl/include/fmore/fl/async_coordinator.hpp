#pragma once

/// @file async_coordinator.hpp
/// Asynchronous / semi-synchronous federated rounds with staleness-weighted
/// FedAvg. The synchronous coordinator closes every round on its slowest
/// winner; under heterogeneous client latency (the straggler scenarios the
/// paper's testbed figures hint at) that barrier dominates wall-clock time.
/// The AsyncCoordinator simulates heterogeneous completion times over a
/// virtual clock and aggregates early, merging late updates with
/// polynomially decayed weights — see docs/ARCHITECTURE.md, "The async
/// round model".

#include "fmore/fl/client_time.hpp"
#include "fmore/fl/coordinator.hpp"
#include "fmore/fl/round_mode.hpp"

namespace fmore::fl {

/// Knobs of the async/semi-sync aggregation rule.
struct AsyncCoordinatorConfig {
    RoundMode mode = RoundMode::semi_sync;
    /// Aggregate once this many of the *current round's* dispatches have
    /// arrived; 0 = every one of them (which, with no latency spread or
    /// dropouts, reproduces the synchronous barrier bit-identically).
    /// Carried-over late updates merge opportunistically at the trigger but
    /// never hasten it — they land near t=0 and counting them would
    /// collapse every round to the overhead floor.
    std::size_t min_updates = 0;
    /// semi_sync only: aggregate at this offset from round start even when
    /// fewer than `min_updates` arrived (extended to the first arrival when
    /// nothing is in yet); 0 = no deadline.
    double round_deadline_s = 0.0;
    /// Polynomial staleness decay: an update dispatched `s` global versions
    /// ago merges with FedAvg weight D_i / (1+s)^alpha. alpha = 0 treats
    /// stale updates at full weight; larger alpha forgets them faster.
    double staleness_alpha = 0.5;
    /// Discard updates (and expire in-flight dispatches) staler than this
    /// many global versions; 0 = never discard.
    std::size_t max_staleness = 4;
    /// Per-round scheduling + aggregation cost (mec::ClusterTimeConfig).
    double round_overhead_s = 0.0;
    /// Extra per-round cost of the auction itself (0 for baselines).
    double auction_overhead_s = 0.0;
};

/// Event-driven coordinator: per round the selector proposes K winners as
/// usual, each dispatch gets a simulated completion time from the
/// ClientTimeModel, and the server aggregates at the `min_updates`-th
/// arrival (or the semi-sync deadline). Clients still running carry over;
/// their updates merge in a later round with weight D_i / (1+s)^alpha
/// (s = global versions elapsed). Clients the server has not heard from at
/// aggregation time anchor the current global with their full data weight,
/// so a round that merges few updates takes a correspondingly small step.
///
/// Determinism contract (same as the sync coordinator): all RNG use — the
/// selector, contracted-volume subsampling, per-client training seeds,
/// dropout draws — happens in a serial pre-pass in selection order;
/// training runs on slot-addressed updates and aggregation walks dispatch
/// order, so every round metric is bit-identical for any
/// `FMORE_ROUND_THREADS` value. With `min_updates = 0` (or = K), a timing
/// model with zero latency spread and no dropouts, the run reproduces
/// `Coordinator::run`'s metrics bit-identically, round_seconds included —
/// assuming every selected client holds data, which the experiment engines
/// guarantee (both coordinators skip empty-shard clients when training,
/// but the synchronous ClusterTimeModel would still bill such a phantom's
/// transfer time while this engine never dispatches it).
class AsyncCoordinator : public Coordinator {
public:
    /// @throws std::invalid_argument for mode == sync (use Coordinator),
    ///         min_updates > K, or non-finite/negative timing knobs
    AsyncCoordinator(ml::Model& model, const ml::Dataset& train,
                     const ml::Dataset& test, std::vector<ml::ClientShard> shards,
                     CoordinatorConfig config, AsyncCoordinatorConfig async_config);

    /// Run `config().rounds` aggregation rounds; `time_model` must be
    /// non-null (async rounds are meaningless without a clock). `control`
    /// resumes mid-tape — including the in-flight dispatch carry — and/or
    /// observes each completed round (see `RunControl`).
    [[nodiscard]] RunResult run_async(ClientSelector& selector, stats::Rng& rng,
                                      const ClientTimeModel& time_model,
                                      const RunControl* control = nullptr);

    [[nodiscard]] const AsyncCoordinatorConfig& async_config() const { return async_; }

private:
    /// One dispatched client training, from dispatch until its update is
    /// merged (or expires). `arrival` is seconds after the *current* round's
    /// start; entries carried across rounds are rebased each aggregation.
    struct InFlight {
        std::uint64_t seq = 0;       ///< global dispatch order (aggregation order)
        std::size_t base_round = 0;  ///< round whose global it trained on
        double weight = 0.0;         ///< D_i — samples actually trained
        double arrival = 0.0;
        bool dropped = false;
        std::vector<float> params;
        ml::TrainStats stats;
    };

    AsyncCoordinatorConfig async_;
};

} // namespace fmore::fl
