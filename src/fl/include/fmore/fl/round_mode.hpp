#pragma once

/// @file round_mode.hpp
/// How the coordinator closes a federated round. Split out of
/// coordinator.hpp so the experiment layer (core::TimingSpec) can name the
/// mode without pulling in the model/dataset headers.

#include <cstdint>
#include <string>

namespace fmore::fl {

/// Aggregation discipline of one federated round.
///
///  - `sync` — the paper's Algorithm 1: the round is a barrier; the server
///    waits for every winner, so the round lasts as long as its slowest
///    client (`mec::ClusterTimeModel::round_seconds`).
///  - `semi_sync` — the server aggregates once `min_updates` updates have
///    arrived or the round deadline fires, whichever is first; clients
///    still running carry over and merge later with staleness weighting.
///  - `async` — purely count-triggered: aggregate as soon as `min_updates`
///    updates are in, no deadline.
enum class RoundMode : std::uint8_t {
    sync,
    semi_sync,
    async,
};

[[nodiscard]] std::string to_string(RoundMode mode);

/// Inverse of `to_string`.
/// @throws std::invalid_argument for anything but "sync", "semi_sync",
///         "async"
[[nodiscard]] RoundMode parse_round_mode(const std::string& text);

} // namespace fmore::fl
