#pragma once

/// @file policy.hpp
/// The open client-selection seam: a SelectionPolicy builds the
/// ClientSelector a federated run drives, and a string-keyed registry maps
/// policy names ("fmore", "psi_fmore", "randfl", "fixfl", or anything a
/// library registers) to factories. This replaces the closed Strategy-enum
/// switch the experiment layer used to carry — RandFL/FixFL/FMore are
/// policies, not cases.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fmore/fl/selection.hpp"

namespace fmore::fl {

struct PolicyContext;

/// Experiment-layer hook that builds an auction-backed selector. The fl
/// module knows nothing about MEC populations or equilibria; the trial that
/// owns them installs this closure so auction policies can ask for "the
/// auction selector of this world" without fl depending on mec.
using AuctionSelectorFactory =
    std::function<std::unique_ptr<ClientSelector>(const PolicyContext&)>;

/// Everything a policy may need to assemble its selector for one run.
struct PolicyContext {
    std::size_t num_clients = 0;  ///< N
    std::size_t winners = 0;      ///< K
    /// Trial-scoped seed; policies that draw setup randomness (FixFL's
    /// one-time winner set) derive their stream from it, never from shared
    /// state, preserving the repo's determinism discipline.
    std::uint64_t trial_seed = 0;
    /// Set by the psi_fmore policy before invoking the auction factory; the
    /// experiment layer maps it to its configured psi (plain FMore runs
    /// with psi = 1 regardless of the configured value).
    bool probabilistic_acceptance = false;
    /// Installed by auction-capable experiment layers; nullptr otherwise
    /// (auction policies then throw with an actionable message).
    AuctionSelectorFactory make_auction_selector;
};

/// A named client-selection policy: a factory for ClientSelectors.
class SelectionPolicy {
public:
    virtual ~SelectionPolicy() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    /// Build the selector that will drive one federated run.
    /// @throws std::invalid_argument when the context lacks what the policy
    ///         needs (e.g. an auction policy without an auction factory)
    [[nodiscard]] virtual std::unique_ptr<ClientSelector>
    make_selector(const PolicyContext& context) const = 0;
};

using PolicyFactory = std::function<std::unique_ptr<SelectionPolicy>()>;

/// Process-wide registry of selection policies. The four paper strategies
/// are registered on first use; tests and downstream code add their own.
/// All methods are thread-safe.
class PolicyRegistry {
public:
    [[nodiscard]] static PolicyRegistry& instance();

    /// @throws std::invalid_argument on an empty/duplicate name or null
    ///         factory (use `replace` to overwrite deliberately)
    void add(const std::string& name, PolicyFactory factory);
    void replace(const std::string& name, PolicyFactory factory);
    void remove(const std::string& name);

    [[nodiscard]] bool contains(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> names() const;

    /// @throws std::invalid_argument for unknown names, listing what is
    ///         registered
    [[nodiscard]] std::unique_ptr<SelectionPolicy> create(const std::string& name) const;

private:
    PolicyRegistry();
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// Shorthand for `PolicyRegistry::instance().create(name)`.
[[nodiscard]] std::unique_ptr<SelectionPolicy> make_policy(const std::string& name);

} // namespace fmore::fl
