#pragma once

#include <functional>
#include <optional>

#include "fmore/fl/metrics.hpp"
#include "fmore/fl/run_state.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/util/thread_pool.hpp"

namespace fmore::fl {

/// Federated training hyperparameters (paper Algorithm 1 / Section V.A).
struct CoordinatorConfig {
    std::size_t rounds = 20;        ///< T — the paper's figures plot 20 rounds
    std::size_t winners_per_round = 20; ///< K
    std::size_t local_epochs = 1;
    std::size_t batch_size = 16;
    double learning_rate = 0.05;    ///< eta of Eq. 2
    /// Evaluate at most this many test samples per round (0 = all); keeps
    /// the benches fast without biasing comparisons (same subset each run).
    std::size_t eval_cap = 0;
    /// Worker threads for the intra-round parallelism (client training and
    /// evaluation). 0 = auto: the `FMORE_ROUND_THREADS` environment
    /// variable when set, otherwise whatever the process-wide
    /// `util::ThreadBudget` has not already leased to the trial runner —
    /// which is what keeps trials x clients from oversubscribing. Round
    /// metrics are bit-identical for every value.
    std::size_t round_threads = 0;
};

/// Optional per-round wall-clock model: given the selected clients and the
/// samples each trained, return the round's duration in seconds. Provided
/// by the MEC cluster simulator for the real-world experiments.
using RoundTimeModel =
    std::function<double(const SelectionRecord&, const std::vector<std::size_t>& samples)>;

/// Orchestrates federated learning (paper Algorithm 1): per round the
/// selector proposes K winners, each winner runs local SGD on its shard,
/// and the coordinator FedAvg-aggregates and evaluates on the held-out
/// test set.
///
/// The K local trainings of a round are independent and run concurrently
/// on the shared `util::ThreadPool`, each on a thread-local clone of the
/// model seeded from a per-client stream drawn in selection order; results
/// land in selection-order slots and are aggregated in that fixed order, so
/// round metrics are bit-identical to the serial path for any thread count
/// (the same guarantee the trial runner gives across trials). Evaluation
/// splits its fixed 128-sample batches over the same workers and reduces
/// per-batch records in batch order — again bit-identical.
class Coordinator {
public:
    /// References must outlive the coordinator. `shards` maps client id ->
    /// local data; a client's FedAvg weight D_i is the number of samples it
    /// actually trained on this round.
    Coordinator(ml::Model& model, const ml::Dataset& train, const ml::Dataset& test,
                std::vector<ml::ClientShard> shards, CoordinatorConfig config);

    /// `control`, when non-null, resumes the run mid-tape and/or observes
    /// each completed round (see `RunControl`); the default is a fresh run.
    [[nodiscard]] RunResult run(ClientSelector& selector, stats::Rng& rng,
                                const RoundTimeModel& time_model = nullptr,
                                const RunControl* control = nullptr);

    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const { return shards_; }
    [[nodiscard]] const CoordinatorConfig& config() const { return config_; }

protected:
    /// One client's unit of work for a round, fixed in the serial pre-pass.
    struct ClientTask {
        std::size_t slot = 0;            ///< selection-order slot
        const SelectedClient* selected = nullptr;
        std::vector<std::size_t> local;  ///< training sample indices
        std::uint64_t seed = 0;          ///< per-client training stream
    };
    /// What a trained client hands back, slot-addressed.
    struct ClientUpdate {
        std::vector<float> params;
        ml::TrainStats stats;
    };

    /// The serial pre-pass shared by the sync and async coordinators:
    /// resolve each selected client to a task in selection order, consuming
    /// the round RNG (contracted-volume subsampling, per-client training
    /// seeds) in that fixed order so the stream is independent of
    /// scheduling and of the coordinator mode.
    /// @throws std::runtime_error on unknown clients / all-empty shards
    [[nodiscard]] std::vector<ClientTask>
    build_tasks(const std::vector<SelectedClient>& picked, stats::Rng& rng) const;

    /// Size this round's workers against the process-wide ThreadBudget,
    /// honouring config/FMORE_ROUND_THREADS overrides; `cap` is the widest
    /// parallel section. Populates `lease` when workers were claimed.
    [[nodiscard]] std::size_t
    acquire_workers(std::size_t cap, std::optional<util::ThreadLease>& lease) const;

    void train_clients(const std::vector<float>& global, std::vector<ClientTask>& tasks,
                       std::vector<ClientUpdate>& updates, std::size_t workers);
    [[nodiscard]] ml::EvalStats evaluate_global(std::size_t workers,
                                                const std::vector<float>& global);

    [[nodiscard]] std::size_t eval_batch_count() const;

    ml::Model& model_;
    const ml::Dataset& train_;
    const ml::Dataset& test_;
    std::vector<ml::ClientShard> shards_;
    CoordinatorConfig config_;
    std::vector<std::size_t> eval_indices_;
    /// Thread-local model clones, one per worker slot; slot 0 is the
    /// calling thread. Built lazily, reused across rounds.
    std::vector<std::unique_ptr<ml::Model>> worker_models_;
};

} // namespace fmore::fl
