#pragma once

#include <functional>

#include "fmore/fl/metrics.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/ml/model.hpp"
#include "fmore/ml/partition.hpp"

namespace fmore::fl {

/// Federated training hyperparameters (paper Algorithm 1 / Section V.A).
struct CoordinatorConfig {
    std::size_t rounds = 20;        ///< T — the paper's figures plot 20 rounds
    std::size_t winners_per_round = 20; ///< K
    std::size_t local_epochs = 1;
    std::size_t batch_size = 16;
    double learning_rate = 0.05;    ///< eta of Eq. 2
    /// Evaluate at most this many test samples per round (0 = all); keeps
    /// the benches fast without biasing comparisons (same subset each run).
    std::size_t eval_cap = 0;
};

/// Optional per-round wall-clock model: given the selected clients and the
/// samples each trained, return the round's duration in seconds. Provided
/// by the MEC cluster simulator for the real-world experiments.
using RoundTimeModel =
    std::function<double(const SelectionRecord&, const std::vector<std::size_t>& samples)>;

/// Orchestrates federated learning (paper Algorithm 1): per round the
/// selector proposes K winners, each winner runs local SGD on its shard,
/// and the coordinator FedAvg-aggregates and evaluates on the held-out
/// test set.
class Coordinator {
public:
    /// References must outlive the coordinator. `shards` maps client id ->
    /// local data; a client's FedAvg weight D_i is the number of samples it
    /// actually trained on this round.
    Coordinator(ml::Model& model, const ml::Dataset& train, const ml::Dataset& test,
                std::vector<ml::ClientShard> shards, CoordinatorConfig config);

    [[nodiscard]] RunResult run(ClientSelector& selector, stats::Rng& rng,
                                const RoundTimeModel& time_model = nullptr);

    [[nodiscard]] const std::vector<ml::ClientShard>& shards() const { return shards_; }
    [[nodiscard]] const CoordinatorConfig& config() const { return config_; }

private:
    ml::Model& model_;
    const ml::Dataset& train_;
    const ml::Dataset& test_;
    std::vector<ml::ClientShard> shards_;
    CoordinatorConfig config_;
    std::vector<std::size_t> eval_indices_;
};

} // namespace fmore::fl
