#pragma once

#include <vector>

namespace fmore::fl {

/// FedAvg global aggregation (paper Eq. 3):
///     w(t+1) = sum_i D_i w_i(t+1) / sum_i D_i
/// `client_params` holds the flat parameter vector of every participating
/// client; `weights` the data sizes D_i.
std::vector<float> federated_average(const std::vector<std::vector<float>>& client_params,
                                     const std::vector<double>& weights);

} // namespace fmore::fl
