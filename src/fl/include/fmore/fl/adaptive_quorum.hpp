#pragma once

/// @file adaptive_quorum.hpp
/// Closed-loop tuning of the streaming market's bid quorum
/// (`timing.min_updates`) from the close telemetry the rounds themselves
/// emit — the `fl::RoundHealth` close-reason mix and close-time tail that
/// PR 8 started aggregating. The control law is deliberately boring:
///
///  - When DEADLINE closes dominate a window, the quorum is stalling —
///    rounds wait out the full deadline because the target is set above
///    what the arrival process delivers in time. Step the quorum DOWN so
///    the quorum trigger can fire early again.
///  - When QUORUM closes dominate AND the window's p99 close time leaves
///    slack against the deadline (p99 <= slack_ratio x deadline), rounds
///    are closing comfortably early. Step the quorum UP to buy more bids
///    (a deeper market) with latency budget that was going unused.
///  - Otherwise hold.
///
/// The schedule is a PURE function of the observation sequence: no clocks,
/// no randomness, integer steps of bounded size, clamped to
/// [min_quorum, max_quorum]. Feeding the same close telemetry replays the
/// same quorum schedule byte for byte — the determinism contract every
/// other replayable engine in this codebase honours.

#include <cstddef>
#include <string>
#include <vector>

namespace fmore::fl {

/// Control-law parameters. Defaults are the conservative profile the
/// `timing.adaptive_quorum` knob wires up.
struct AdaptiveQuorumConfig {
    /// Starting quorum (`timing.min_updates`); must be >= 1.
    std::size_t initial = 0;
    /// Clamp floor (a quorum of 0 would disable the trigger entirely).
    std::size_t min_quorum = 1;
    /// Clamp ceiling; typically the population size. Must be >= initial.
    std::size_t max_quorum = 0;
    /// Quorum delta per adjustment; 0 derives max(1, initial / 8).
    std::size_t step = 0;
    /// Observations per decision window; the controller adjusts at most
    /// once per full window and starts the next window empty.
    std::size_t window = 8;
    /// The bid deadline the close times are measured against
    /// (`timing.round_deadline_s`); 0 disables the raise rule (there is no
    /// latency budget to spend).
    double deadline_s = 0.0;
    /// Raise only while the window's p99 close time is at or below this
    /// fraction of the deadline.
    double slack_ratio = 0.5;
    /// Fraction of the window a close reason must reach to count as
    /// dominant.
    double dominance = 0.5;
};

/// See file comment. `observe()` one closed round at a time; `quorum()` is
/// the target the NEXT round should open with.
class AdaptiveQuorumController {
public:
    /// @throws std::invalid_argument on an unusable config (zero initial,
    ///         zero window, inverted clamp range, out-of-range ratios)
    explicit AdaptiveQuorumController(AdaptiveQuorumConfig config);

    /// Quorum for the next round under the schedule so far.
    [[nodiscard]] std::size_t quorum() const { return quorum_; }

    /// Fold one closed round's telemetry (`SelectionRecord::close_reason`
    /// form: "quorum", "deadline", "exhausted") into the current window;
    /// adjusts the quorum when the window fills, then resets the window.
    void observe(const std::string& close_reason, double close_time_s);

    /// Quorums returned so far, one per observe() call, AFTER folding that
    /// round — i.e. the quorum schedule rounds 2..R+1 opened with. Byte
    /// identical across replays of the same telemetry.
    [[nodiscard]] const std::vector<std::size_t>& schedule() const {
        return schedule_;
    }

    [[nodiscard]] const AdaptiveQuorumConfig& config() const { return config_; }

private:
    AdaptiveQuorumConfig config_;
    std::size_t quorum_ = 0;
    std::size_t step_ = 0;
    std::size_t window_quorum_closes_ = 0;
    std::size_t window_deadline_closes_ = 0;
    std::vector<double> window_close_times_;
    std::vector<std::size_t> schedule_;
};

} // namespace fmore::fl
