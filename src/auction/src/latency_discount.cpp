#include "fmore/auction/latency_discount.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fmore::auction {

LatencyDiscountedMechanism::LatencyDiscountedMechanism(MechanismSpec spec)
    : ScoreAuctionMechanism(std::move(spec), "latency_discounted") {
    if (!(spec_.latency_discount >= 0.0) || std::isinf(spec_.latency_discount))
        throw std::invalid_argument(
            "LatencyDiscountedMechanism: latency_discount = "
            + std::to_string(spec_.latency_discount)
            + ": must be finite and >= 0 (0 disables the discount)");
    for (std::size_t i = 0; i < spec_.expected_latency_s.size(); ++i) {
        const double latency = spec_.expected_latency_s[i];
        if (!(latency >= 0.0) || std::isinf(latency))
            throw std::invalid_argument(
                "LatencyDiscountedMechanism: expected_latency_s["
                + std::to_string(i) + "] = " + std::to_string(latency)
                + ": must be finite and >= 0");
    }
}

double LatencyDiscountedMechanism::discounted_score(const ScoringRule& scoring,
                                                    const Bid& bid) const {
    return scoring.score(bid) - spec_.latency_discount * latency_of(bid.node);
}

std::vector<ScoredBid> LatencyDiscountedMechanism::rank(const ScoringRule& scoring,
                                                        const std::vector<Bid>& bids,
                                                        stats::Rng& rng) const {
    // Same ordering machinery as the base engine — salted keys or the
    // coin-flip shuffle, the partial sort at ranking_cutoff — over the
    // DISCOUNTED scores. The recorded ScoredBid::score is the discounted
    // value: it is what the market ranked and (under second-score) priced
    // against, so downstream scoreboards see the market's actual order.
    std::vector<ScoredBid> ranking;
    ranking.reserve(bids.size());
    for (const Bid& bid : bids) {
        ranking.push_back({bid, discounted_score(scoring, bid)});
    }
    if (spec_.tie_break == TieBreak::salted) {
        const std::uint64_t salt = rng.engine()();
        std::vector<std::uint64_t> keys(ranking.size());
        for (std::size_t i = 0; i < ranking.size(); ++i)
            keys[i] = stats::derive_stream_seed(salt, ranking[i].bid.node);
        std::vector<std::size_t> idx(ranking.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        const auto cmp = [&](std::size_t a, std::size_t b) {
            if (ranking[a].score != ranking[b].score)
                return ranking[a].score > ranking[b].score;
            if (keys[a] != keys[b]) return keys[a] < keys[b];
            return ranking[a].bid.node < ranking[b].bid.node;
        };
        const std::size_t top = ranking_cutoff(ranking.size());
        if (top >= idx.size()) {
            std::sort(idx.begin(), idx.end(), cmp);
        } else {
            std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(top),
                              idx.end(), cmp);
        }
        std::vector<ScoredBid> head;
        head.reserve(std::min(top, idx.size()));
        for (std::size_t i = 0; i < std::min(top, idx.size()); ++i)
            head.push_back(std::move(ranking[idx[i]]));
        return head;
    }

    std::vector<std::size_t> order(ranking.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ScoredBid> shuffled;
    shuffled.reserve(ranking.size());
    for (const std::size_t i : order) shuffled.push_back(std::move(ranking[i]));

    const std::size_t top = ranking_cutoff(shuffled.size());
    if (top >= shuffled.size()) {
        std::stable_sort(shuffled.begin(), shuffled.end(),
                         [](const ScoredBid& a, const ScoredBid& b) {
                             return a.score > b.score;
                         });
        return shuffled;
    }
    std::vector<std::size_t> idx(shuffled.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(top),
                      idx.end(), [&shuffled](std::size_t a, std::size_t b) {
                          if (shuffled[a].score != shuffled[b].score)
                              return shuffled[a].score > shuffled[b].score;
                          return a < b;
                      });
    std::vector<ScoredBid> head;
    head.reserve(top);
    for (std::size_t i = 0; i < top; ++i) head.push_back(std::move(shuffled[idx[i]]));
    return head;
}

} // namespace fmore::auction
