#include "fmore/auction/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <typeinfo>
#include <utility>

#include "fmore/auction/latency_discount.hpp"
#include "fmore/util/registry.hpp"
#include "fmore/util/thread_pool.hpp"

namespace fmore::auction {

// ---------------------------------------------------------------------------
// Mechanism
// ---------------------------------------------------------------------------

AuctionOutcome Mechanism::run(const ScoringRule& scoring, const std::vector<Bid>& bids,
                              stats::Rng& rng) const {
    AuctionOutcome outcome;
    outcome.ranking = rank(scoring, bids, rng);
    const std::vector<std::size_t> chosen = select(outcome.ranking, rng);
    outcome.winners = price(scoring, outcome.ranking, chosen);
    return outcome;
}

void Mechanism::rank_frame(const ScoringRule& scoring, const BidFrame& frame,
                           stats::Rng& rng, RankScratch& scratch,
                           std::vector<ScoredBid>& head) const {
    // Adapter default: any mechanism that only implements the vector API
    // works on frame-collected rounds (at the vector API's cost).
    frame.to_bids(scratch.bids);
    head = rank(scoring, scratch.bids, rng);
}

void ScoreAuctionMechanism::run_frame(const ScoringRule& scoring, const BidFrame& frame,
                                      stats::Rng& rng, RankScratch& scratch,
                                      AuctionOutcome& outcome) const {
    // Subclasses may override ANY vector-API stage (run/rank/select/price
    // — e.g. a reserve-price select()); composing our own _into stages
    // here would silently bypass those overrides on frame rounds. The
    // fused fast lane is therefore reserved for the exact engine type (all
    // built-in registry entries); subclasses route through the base
    // adapter, which honours every dynamic override at vector-API cost.
    if (typeid(*this) != typeid(ScoreAuctionMechanism)) {
        Mechanism::run_frame(scoring, frame, rng, scratch, outcome);
        return;
    }
    rank_frame(scoring, frame, rng, scratch, outcome.ranking);
    select_into(outcome.ranking, rng, scratch.chosen);
    price_into(scoring, outcome.ranking, scratch.chosen, outcome.winners);
}

// ---------------------------------------------------------------------------
// ScoreAuctionMechanism
// ---------------------------------------------------------------------------

namespace {

void check_probability(double value, const std::string& what) {
    if (!(value > 0.0 && value <= 1.0) || std::isnan(value))
        throw std::invalid_argument(what + " = " + std::to_string(value)
                                    + ": must be a finite probability in (0, 1]"
                                      " (1.0 disables probabilistic acceptance)");
}

} // namespace

ScoreAuctionMechanism::ScoreAuctionMechanism(MechanismSpec spec, std::string name)
    : spec_(std::move(spec)), name_(std::move(name)) {
    if (spec_.num_winners == 0)
        throw std::invalid_argument("ScoreAuctionMechanism: K (num_winners) must be >= 1");
    check_probability(spec_.psi, "ScoreAuctionMechanism: psi");
    for (std::size_t i = 0; i < spec_.psi_per_node.size(); ++i) {
        check_probability(spec_.psi_per_node[i], "ScoreAuctionMechanism: psi_per_node["
                                                     + std::to_string(i) + "]");
    }
    if (!(spec_.budget >= 0.0) || std::isinf(spec_.budget))
        throw std::invalid_argument("ScoreAuctionMechanism: budget = "
                                    + std::to_string(spec_.budget)
                                    + ": must be finite and >= 0 (0 = unconstrained)");
}

std::string ScoreAuctionMechanism::name() const {
    return name_.empty() ? resolve_mechanism_name(spec_) : name_;
}

std::size_t ScoreAuctionMechanism::ranking_cutoff(std::size_t active) const {
    // The psi scan walks the whole board and `full_ranking` is the Fig. 8
    // contract, so both force the complete sort.
    const bool probabilistic = spec_.psi < 1.0 || !spec_.psi_per_node.empty();
    if (spec_.full_ranking || probabilistic) return active;
    std::size_t top = std::min<std::size_t>(active, spec_.num_winners);
    // Second-score payments price against the best loser, rank K.
    if (spec_.payment_rule == PaymentRule::second_price)
        top = std::min<std::size_t>(active, top + 1);
    return top;
}

std::vector<ScoredBid> ScoreAuctionMechanism::rank(const ScoringRule& scoring,
                                                   const std::vector<Bid>& bids,
                                                   stats::Rng& rng) const {
    std::vector<ScoredBid> ranking;
    ranking.reserve(bids.size());
    for (const Bid& bid : bids) {
        ranking.push_back({bid, scoring.score(bid)});
    }
    if (spec_.tie_break == TieBreak::salted) {
        // Position-independent coin flips: one engine draw seeds a per-node
        // hash key, so any subset of the bids — a shard, another process —
        // orders its members exactly as the whole board would. Same strict
        // total order as `rank_frame` in salted mode: bit-identical heads.
        const std::uint64_t salt = rng.engine()();
        std::vector<std::uint64_t> keys(ranking.size());
        for (std::size_t i = 0; i < ranking.size(); ++i)
            keys[i] = stats::derive_stream_seed(salt, ranking[i].bid.node);
        std::vector<std::size_t> idx(ranking.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        const auto cmp = [&](std::size_t a, std::size_t b) {
            if (ranking[a].score != ranking[b].score)
                return ranking[a].score > ranking[b].score;
            if (keys[a] != keys[b]) return keys[a] < keys[b];
            return ranking[a].bid.node < ranking[b].bid.node;
        };
        const std::size_t top = ranking_cutoff(ranking.size());
        if (top >= idx.size()) {
            std::sort(idx.begin(), idx.end(), cmp);
        } else {
            std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(top),
                              idx.end(), cmp);
        }
        std::vector<ScoredBid> head;
        head.reserve(std::min(top, idx.size()));
        for (std::size_t i = 0; i < std::min(top, idx.size()); ++i)
            head.push_back(std::move(ranking[idx[i]]));
        return head;
    }

    // Random shuffle first, then sort by score: bids with exactly equal
    // scores end up in coin-flip order ("Ties are resolved by the flip of a
    // coin", Section V.A).
    std::vector<std::size_t> order(ranking.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ScoredBid> shuffled;
    shuffled.reserve(ranking.size());
    for (const std::size_t i : order) shuffled.push_back(std::move(ranking[i]));

    const std::size_t top = ranking_cutoff(shuffled.size());

    // Comparing (score desc, shuffled position asc) is a strict total order
    // whose result is exactly what stable_sort on the shuffled vector
    // produces, so the partial path returns a bit-identical top segment.
    if (top >= shuffled.size()) {
        std::stable_sort(shuffled.begin(), shuffled.end(),
                         [](const ScoredBid& a, const ScoredBid& b) {
                             return a.score > b.score;
                         });
        return shuffled;
    }
    std::vector<std::size_t> idx(shuffled.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(top),
                      idx.end(), [&shuffled](std::size_t a, std::size_t b) {
                          if (shuffled[a].score != shuffled[b].score)
                              return shuffled[a].score > shuffled[b].score;
                          return a < b;
                      });
    std::vector<ScoredBid> head;
    head.reserve(top);
    for (std::size_t i = 0; i < top; ++i) head.push_back(std::move(shuffled[idx[i]]));
    return head;
}

void ScoreAuctionMechanism::rank_frame(const ScoringRule& scoring, const BidFrame& frame,
                                       stats::Rng& rng, RankScratch& scratch,
                                       std::vector<ScoredBid>& head) const {
    // Same exact-type dispatch as run_frame: a subclass overriding rank()
    // must see its override even when a caller invokes rank_frame
    // directly — the fused lane below replicates the BASE ranking only.
    if (typeid(*this) != typeid(ScoreAuctionMechanism)) {
        Mechanism::rank_frame(scoring, frame, rng, scratch, head);
        return;
    }
    // Active rows in ascending node order — the same sequence
    // `BidFrame::to_bids` materializes, so the tie-break shuffle below
    // consumes exactly the RNG draws the vector path would.
    std::vector<std::size_t>& active = scratch.active;
    active.clear();
    for (NodeId row = 0; row < frame.rows(); ++row) {
        if (frame.active(row)) active.push_back(row);
    }
    const std::size_t m = active.size();
    if (frame.rows() > UINT32_MAX)
        throw std::invalid_argument("rank_frame: more than 2^32 rows");

    const bool salted = spec_.tie_break == TieBreak::salted;
    std::uint64_t tie_salt = 0;
    std::vector<std::uint32_t>& pos = scratch.pos;
    std::vector<std::size_t>& order = scratch.order;
    if (salted) {
        // One engine draw for the whole board; per-row keys are a pure hash
        // of (salt, node), so a shard scanning only ITS rows computes the
        // very keys these rows carry in the monolithic sort.
        tie_salt = rng.engine()();
    } else {
        order.assign(active.begin(), active.end());
        rng.shuffle(order);
        // Inverse permutation: each row's coin-flip tie-break key. Inverting
        // lets the scan below walk rows in ASCENDING order — streaming the
        // frame columns — instead of hopping through them in shuffled order.
        pos.resize(frame.rows());
        for (std::size_t j = 0; j < m; ++j)
            pos[order[j]] = static_cast<std::uint32_t>(j);
    }

    // Same cut-off rule as `rank` and the shard-head collector.
    const std::size_t top = ranking_cutoff(m);

    using Candidate = RankScratch::Candidate;
    // (score desc, key asc, node asc) is a strict total order. In shuffle
    // mode keys are the unique shuffled positions, and the order equals
    // what stable_sort over the shuffled bid list produces: the
    // bit-identity argument of this whole fast path.
    const auto better = [](const Candidate& a, const Candidate& b) {
        if (a.score != b.score) return a.score > b.score;
        if (a.key != b.key) return a.key < b.key;
        return a.node < b.node;
    };
    const std::size_t dims = frame.dims();
    // A collector that filled the score column already did this arithmetic
    // with the row's quality hot in registers; otherwise score on the fly.
    const bool scored = frame.scored();
    const auto candidate_at = [&](std::size_t a) {
        const NodeId row = active[a];
        const double score =
            scored ? frame.score(row)
                   : scoring.score_span(frame.quality_row(row), dims, frame.payment(row));
        const std::uint64_t key =
            salted ? stats::derive_stream_seed(tie_salt, row) : pos[row];
        return Candidate{score, key, row};
    };

    constexpr std::size_t kChunk = 2048;
    const std::size_t chunks = (m + kChunk - 1) / kChunk;
    const std::size_t workers =
        chunks <= 1 ? 1 : util::resolve_round_threads(0, chunks);

    std::vector<Candidate>& merged = scratch.merged;
    merged.clear();
    if (top >= m) {
        // Full board: one streaming pass (chunk-parallel when workers are
        // idle) and a single sort.
        merged.resize(m);
        if (workers <= 1) {
            for (std::size_t a = 0; a < m; ++a) merged[a] = candidate_at(a);
        } else {
            util::ThreadPool::shared().parallel_for(
                chunks, workers - 1, [&](std::size_t, std::size_t chunk) {
                    const std::size_t lo = chunk * kChunk;
                    const std::size_t hi = std::min(m, lo + kChunk);
                    for (std::size_t a = lo; a < hi; ++a) merged[a] = candidate_at(a);
                });
        }
        std::sort(merged.begin(), merged.end(), better);
    } else {
        // Fused top-K: each worker slot keeps a bounded heap (root = worst
        // kept candidate) over the chunks it happens to claim. The union
        // of the per-slot heaps always contains the global top `top`, so
        // the deterministic merge sort below yields the same head
        // regardless of how chunks landed on slots.
        const std::size_t slots = std::max<std::size_t>(1, workers);
        scratch.slot_cands.resize(slots * top);
        scratch.slot_size.assign(slots, 0);
        const auto consider = [&](std::size_t slot, std::size_t a) {
            const Candidate cand = candidate_at(a);
            Candidate* heap = scratch.slot_cands.data() + slot * top;
            std::size_t& size = scratch.slot_size[slot];
            if (size < top) {
                heap[size++] = cand;
                std::push_heap(heap, heap + size, better);
            } else if (better(cand, heap[0])) {
                std::pop_heap(heap, heap + size, better);
                heap[size - 1] = cand;
                std::push_heap(heap, heap + size, better);
            }
        };
        if (workers <= 1) {
            for (std::size_t a = 0; a < m; ++a) consider(0, a);
        } else {
            util::ThreadPool::shared().parallel_for(
                chunks, workers - 1, [&](std::size_t slot, std::size_t chunk) {
                    const std::size_t lo = chunk * kChunk;
                    const std::size_t hi = std::min(m, lo + kChunk);
                    for (std::size_t a = lo; a < hi; ++a) consider(slot, a);
                });
        }
        for (std::size_t slot = 0; slot < slots; ++slot) {
            const Candidate* heap = scratch.slot_cands.data() + slot * top;
            merged.insert(merged.end(), heap, heap + scratch.slot_size[slot]);
        }
        std::sort(merged.begin(), merged.end(), better);
        if (merged.size() > top) merged.resize(top);
    }

    // Materialize the head. Entries and their QualityVectors are reused
    // across rounds, so a steady-state round allocates nothing here.
    head.resize(merged.size());
    for (std::size_t r = 0; r < merged.size(); ++r) {
        const NodeId row = merged[r].node;
        ScoredBid& sb = head[r];
        sb.bid.node = row;
        sb.bid.quality.assign(frame.quality_row(row), frame.quality_row(row) + dims);
        sb.bid.payment = frame.payment(row);
        sb.score = merged[r].score;
    }
}

std::vector<std::size_t> ScoreAuctionMechanism::select(const std::vector<ScoredBid>& ranking,
                                                       stats::Rng& rng) const {
    std::vector<std::size_t> chosen;
    select_into(ranking, rng, chosen);
    return chosen;
}

void ScoreAuctionMechanism::select_into(const std::vector<ScoredBid>& ranking,
                                        stats::Rng& rng,
                                        std::vector<std::size_t>& chosen) const {
    const std::size_t want = std::min<std::size_t>(spec_.num_winners, ranking.size());
    chosen.clear();
    chosen.reserve(want);
    auto psi_for = [this](NodeId node) {
        if (spec_.psi_per_node.empty()) return spec_.psi;
        if (node >= spec_.psi_per_node.size())
            throw std::out_of_range(
                "ScoreAuctionMechanism: psi_per_node has "
                + std::to_string(spec_.psi_per_node.size()) + " entries but bidder NodeId "
                + std::to_string(node)
                + " is out of range; per-node psi is indexed by NodeId and must cover "
                  "every bidder");
        return spec_.psi_per_node[node];
    };
    if (spec_.psi >= 1.0 && spec_.psi_per_node.empty()) {
        for (std::size_t i = 0; i < want; ++i) chosen.push_back(i);
        return;
    }
    // Scratch keeps its capacity across rounds (allocation-free steady
    // state); per-thread so concurrent trials do not share flags.
    thread_local std::vector<std::uint8_t> taken;
    taken.assign(ranking.size(), 0);
    std::size_t passes = 0;
    while (chosen.size() < want && passes < spec_.max_psi_passes) {
        for (std::size_t i = 0; i < ranking.size() && chosen.size() < want; ++i) {
            if (taken[i] != 0) continue;
            if (rng.bernoulli(psi_for(ranking[i].bid.node))) {
                taken[i] = 1;
                chosen.push_back(i);
            }
        }
        ++passes;
    }
    // Deterministic fill if psi was so small that the passes budget ran out.
    for (std::size_t i = 0; i < ranking.size() && chosen.size() < want; ++i) {
        if (taken[i] == 0) {
            taken[i] = 1;
            chosen.push_back(i);
        }
    }
}

double ScoreAuctionMechanism::payment_for(const ScoringRule& scoring,
                                          const std::vector<ScoredBid>& ranking,
                                          std::size_t winner_rank,
                                          double best_losing_score) const {
    const ScoredBid& winner = ranking[winner_rank];
    if (spec_.payment_rule == PaymentRule::first_price) {
        return winner.bid.payment;
    }
    // Second-score payment: pay the winner enough that its score would drop
    // to the best losing score, i.e. p = s(q) - S_loser. Never below its own
    // ask (IR for the winner).
    const double s_q = scoring.quality_score(winner.bid.quality);
    return std::max(winner.bid.payment, s_q - best_losing_score);
}

std::vector<Winner> ScoreAuctionMechanism::price(const ScoringRule& scoring,
                                                 const std::vector<ScoredBid>& ranking,
                                                 const std::vector<std::size_t>& chosen) const {
    std::vector<Winner> winners;
    price_into(scoring, ranking, chosen, winners);
    return winners;
}

void ScoreAuctionMechanism::price_into(const ScoringRule& scoring,
                                       const std::vector<ScoredBid>& ranking,
                                       const std::vector<std::size_t>& chosen,
                                       std::vector<Winner>& winners) const {
    // Best losing score for second-price payments: the highest-ranked bid
    // that was not selected; a reserve score of zero if everyone won.
    double best_losing_score = 0.0;
    if (spec_.payment_rule == PaymentRule::second_price) {
        thread_local std::vector<std::uint8_t> selected;
        selected.assign(ranking.size(), 0);
        for (const std::size_t i : chosen) selected[i] = 1;
        for (std::size_t i = 0; i < ranking.size(); ++i) {
            if (selected[i] == 0) {
                best_losing_score = ranking[i].score;
                break;
            }
        }
    }

    winners.clear();
    winners.reserve(chosen.size());
    double spent = 0.0;
    for (const std::size_t i : chosen) {
        const ScoredBid& sb = ranking[i];
        const double payment = payment_for(scoring, ranking, i, best_losing_score);
        if (spec_.budget > 0.0 && spent + payment > spec_.budget) {
            // Budget-feasible prefix in selection order; cheaper lower-score
            // bids are NOT pulled forward (that would break monotonicity and
            // with it incentive compatibility).
            break;
        }
        spent += payment;
        winners.push_back(Winner{sb.bid.node, sb.score, payment});
    }
}

// ---------------------------------------------------------------------------
// MechanismRegistry
// ---------------------------------------------------------------------------

struct MechanismRegistry::Impl {
    util::NamedRegistry<MechanismFactory> registry{"MechanismRegistry", "mechanism"};
};

namespace {

/// Built-in factory: the configurable score auction under a fixed display
/// name, with the headline knob pinned so e.g. "second_score" always prices
/// second-score no matter what the spec's payment_rule says.
MechanismFactory score_auction_factory(std::string name,
                                       void (*pin)(MechanismSpec&)) {
    return [name = std::move(name), pin](const MechanismSpec& spec) {
        MechanismSpec pinned = spec;
        if (pin != nullptr) pin(pinned);
        return std::make_unique<ScoreAuctionMechanism>(std::move(pinned), name);
    };
}

} // namespace

MechanismRegistry::MechanismRegistry() : impl_(std::make_shared<Impl>()) {
    // The four paper mechanisms. Each honours every other spec knob, so the
    // pre-registry knob combinations (psi + budget + second score) keep
    // composing bit-identically.
    impl_->registry.replace("first_score", score_auction_factory(
        "first_score", +[](MechanismSpec& s) { s.payment_rule = PaymentRule::first_price; }));
    impl_->registry.replace("second_score", score_auction_factory(
        "second_score",
        +[](MechanismSpec& s) { s.payment_rule = PaymentRule::second_price; }));
    impl_->registry.replace("psi_fmore", score_auction_factory("psi_fmore", nullptr));
    impl_->registry.replace("budget_feasible",
                            score_auction_factory("budget_feasible", nullptr));
    // The streaming marketplace's async-aware pricing: rank on the
    // latency-discounted score (latency_discount.hpp). A distinct engine
    // TYPE, so frame rounds route through the vector adapter and its
    // rank() override.
    impl_->registry.replace("latency_discounted", [](const MechanismSpec& spec) {
        return std::make_unique<LatencyDiscountedMechanism>(spec);
    });
}

MechanismRegistry& MechanismRegistry::instance() {
    static MechanismRegistry registry;
    return registry;
}

void MechanismRegistry::add(const std::string& name, MechanismFactory factory) {
    util::require_factory(factory, "MechanismRegistry", "add", name);
    impl_->registry.add(name, std::move(factory));
}

void MechanismRegistry::replace(const std::string& name, MechanismFactory factory) {
    util::require_factory(factory, "MechanismRegistry", "replace", name);
    impl_->registry.replace(name, std::move(factory));
}

void MechanismRegistry::remove(const std::string& name) { impl_->registry.remove(name); }

bool MechanismRegistry::contains(const std::string& name) const {
    return impl_->registry.contains(name);
}

std::vector<std::string> MechanismRegistry::names() const {
    return impl_->registry.names();
}

std::unique_ptr<Mechanism> MechanismRegistry::create(const std::string& name,
                                                     const MechanismSpec& spec) const {
    std::unique_ptr<Mechanism> mechanism = impl_->registry.get(name)(spec);
    if (!mechanism)
        throw std::logic_error("MechanismRegistry: factory for '" + name
                               + "' returned null");
    return mechanism;
}

std::string resolve_mechanism_name(const MechanismSpec& spec) {
    if (!spec.mechanism.empty()) return spec.mechanism;
    if (spec.latency_discount > 0.0) return "latency_discounted";
    if (spec.budget > 0.0) return "budget_feasible";
    if (spec.psi < 1.0 || !spec.psi_per_node.empty()) return "psi_fmore";
    if (spec.payment_rule == PaymentRule::second_price) return "second_score";
    return "first_score";
}

std::unique_ptr<Mechanism> make_mechanism(const MechanismSpec& spec) {
    return MechanismRegistry::instance().create(resolve_mechanism_name(spec), spec);
}

} // namespace fmore::auction
