#include "fmore/auction/winner_determination.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::auction {

WinnerDetermination::WinnerDetermination(const ScoringRule& scoring,
                                         WinnerDeterminationConfig config)
    : scoring_(scoring), config_(config) {
    if (config_.num_winners == 0)
        throw std::invalid_argument("WinnerDetermination: K must be >= 1");
    if (!(config_.psi > 0.0 && config_.psi <= 1.0))
        throw std::invalid_argument("WinnerDetermination: psi must be in (0, 1]");
}

std::vector<ScoredBid> WinnerDetermination::rank(const std::vector<Bid>& bids,
                                                 stats::Rng& rng) const {
    std::vector<ScoredBid> ranking;
    ranking.reserve(bids.size());
    for (const Bid& bid : bids) {
        ranking.push_back({bid, scoring_.score(bid)});
    }
    // Random shuffle first, then stable sort by score: bids with exactly
    // equal scores end up in coin-flip order.
    std::vector<std::size_t> order(ranking.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ScoredBid> shuffled;
    shuffled.reserve(ranking.size());
    for (const std::size_t i : order) shuffled.push_back(std::move(ranking[i]));
    std::stable_sort(shuffled.begin(), shuffled.end(),
                     [](const ScoredBid& a, const ScoredBid& b) { return a.score > b.score; });
    return shuffled;
}

std::vector<std::size_t> WinnerDetermination::select(const std::vector<ScoredBid>& ranking,
                                                     stats::Rng& rng) const {
    const std::size_t want = std::min<std::size_t>(config_.num_winners, ranking.size());
    std::vector<std::size_t> chosen;
    chosen.reserve(want);
    auto psi_for = [this](NodeId node) {
        if (node < config_.psi_per_node.size()) return config_.psi_per_node[node];
        return config_.psi;
    };
    if (config_.psi >= 1.0 && config_.psi_per_node.empty()) {
        for (std::size_t i = 0; i < want; ++i) chosen.push_back(i);
        return chosen;
    }
    std::vector<bool> taken(ranking.size(), false);
    std::size_t passes = 0;
    while (chosen.size() < want && passes < config_.max_psi_passes) {
        for (std::size_t i = 0; i < ranking.size() && chosen.size() < want; ++i) {
            if (taken[i]) continue;
            if (rng.bernoulli(psi_for(ranking[i].bid.node))) {
                taken[i] = true;
                chosen.push_back(i);
            }
        }
        ++passes;
    }
    // Deterministic fill if psi was so small that the passes budget ran out.
    for (std::size_t i = 0; i < ranking.size() && chosen.size() < want; ++i) {
        if (!taken[i]) {
            taken[i] = true;
            chosen.push_back(i);
        }
    }
    return chosen;
}

double WinnerDetermination::payment_for(const std::vector<ScoredBid>& ranking,
                                        std::size_t winner_rank,
                                        double best_losing_score) const {
    const ScoredBid& winner = ranking[winner_rank];
    if (config_.payment_rule == PaymentRule::first_price) {
        return winner.bid.payment;
    }
    // Second-score payment: pay the winner enough that its score would drop
    // to the best losing score, i.e. p = s(q) - S_loser. Never below its own
    // ask (IR for the winner).
    const double s_q = scoring_.quality_score(winner.bid.quality);
    return std::max(winner.bid.payment, s_q - best_losing_score);
}

AuctionOutcome WinnerDetermination::run(const std::vector<Bid>& bids,
                                        stats::Rng& rng) const {
    AuctionOutcome outcome;
    outcome.ranking = rank(bids, rng);
    const std::vector<std::size_t> chosen = select(outcome.ranking, rng);

    // Best losing score for second-price payments: the highest-ranked bid
    // that was not selected; a reserve score of zero if everyone won.
    double best_losing_score = 0.0;
    if (config_.payment_rule == PaymentRule::second_price) {
        std::vector<bool> selected(outcome.ranking.size(), false);
        for (const std::size_t i : chosen) selected[i] = true;
        for (std::size_t i = 0; i < outcome.ranking.size(); ++i) {
            if (!selected[i]) {
                best_losing_score = outcome.ranking[i].score;
                break;
            }
        }
    }

    outcome.winners.reserve(chosen.size());
    double spent = 0.0;
    for (const std::size_t i : chosen) {
        const ScoredBid& sb = outcome.ranking[i];
        const double payment = payment_for(outcome.ranking, i, best_losing_score);
        if (config_.budget > 0.0 && spent + payment > config_.budget) {
            // Budget-feasible prefix in selection order; cheaper lower-score
            // bids are NOT pulled forward (that would break monotonicity and
            // with it incentive compatibility).
            break;
        }
        spent += payment;
        outcome.winners.push_back(Winner{sb.bid.node, sb.score, payment});
    }
    return outcome;
}

} // namespace fmore::auction
