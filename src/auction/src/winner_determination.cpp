#include "fmore/auction/winner_determination.hpp"

#include <stdexcept>
#include <utility>

namespace fmore::auction {

WinnerDetermination::WinnerDetermination(const ScoringRule& scoring,
                                         WinnerDeterminationConfig config)
    : scoring_(scoring), config_(std::move(config)), mechanism_(make_mechanism(config_)) {}

WinnerDetermination::WinnerDetermination(const ScoringRule& scoring,
                                         WinnerDeterminationConfig config,
                                         std::shared_ptr<const Mechanism> mechanism)
    : scoring_(scoring), config_(std::move(config)), mechanism_(std::move(mechanism)) {
    if (!mechanism_)
        throw std::invalid_argument("WinnerDetermination: null mechanism");
}

AuctionOutcome WinnerDetermination::run(const std::vector<Bid>& bids,
                                        stats::Rng& rng) const {
    return mechanism_->run(scoring_, bids, rng);
}

AuctionOutcome WinnerDetermination::run_frame(const BidFrame& frame, stats::Rng& rng,
                                              RankScratch& scratch) const {
    AuctionOutcome outcome;
    mechanism_->run_frame(scoring_, frame, rng, scratch, outcome);
    return outcome;
}

} // namespace fmore::auction
