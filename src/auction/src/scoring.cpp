#include "fmore/auction/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::auction {

WeightedScoringBase::WeightedScoringBase(std::vector<double> coefficients,
                                         std::vector<stats::MinMaxNormalizer> normalizers)
    : coefficients_(std::move(coefficients)), normalizers_(std::move(normalizers)) {
    if (coefficients_.empty())
        throw std::invalid_argument("scoring: need at least one coefficient");
    if (!normalizers_.empty() && normalizers_.size() != coefficients_.size())
        throw std::invalid_argument("scoring: normalizer/coefficient count mismatch");
}

double WeightedScoringBase::normalized(const QualityVector& q, std::size_t d) const {
    return normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
}

void WeightedScoringBase::check_dims(const QualityVector& q) const {
    if (q.size() != coefficients_.size())
        throw std::invalid_argument("scoring: quality vector has wrong dimension");
}

double ScoringRule::quality_score_span(const double* q, std::size_t n) const {
    // Correct-by-default adapter for custom rules: the scratch keeps its
    // capacity across calls, so steady-state rounds stay allocation-free.
    thread_local QualityVector scratch;
    scratch.assign(q, q + n);
    return quality_score(scratch);
}

double AdditiveScoring::quality_score(const QualityVector& q) const {
    check_dims(q);
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
        total += coefficients_[d] * normalized(q, d);
    }
    return total;
}

double AdditiveScoring::quality_score_span(const double* q, std::size_t n) const {
    if (n != coefficients_.size())
        throw std::invalid_argument("scoring: quality vector has wrong dimension");
    double total = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
        const double qi = normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
        total += coefficients_[d] * qi;
    }
    return total;
}

double LeontiefScoring::quality_score(const QualityVector& q) const {
    check_dims(q);
    double lowest = coefficients_[0] * normalized(q, 0);
    for (std::size_t d = 1; d < q.size(); ++d) {
        lowest = std::min(lowest, coefficients_[d] * normalized(q, d));
    }
    return lowest;
}

double LeontiefScoring::quality_score_span(const double* q, std::size_t n) const {
    if (n != coefficients_.size())
        throw std::invalid_argument("scoring: quality vector has wrong dimension");
    auto norm = [this, q](std::size_t d) {
        return normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
    };
    double lowest = coefficients_[0] * norm(0);
    for (std::size_t d = 1; d < n; ++d) {
        lowest = std::min(lowest, coefficients_[d] * norm(d));
    }
    return lowest;
}

double CobbDouglasScoring::quality_score(const QualityVector& q) const {
    check_dims(q);
    double product = 1.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
        const double qi = normalized(q, d);
        if (qi < 0.0)
            throw std::domain_error("CobbDouglasScoring: negative quality");
        product *= std::pow(qi, coefficients_[d]);
    }
    return product;
}

double CobbDouglasScoring::quality_score_span(const double* q, std::size_t n) const {
    if (n != coefficients_.size())
        throw std::invalid_argument("scoring: quality vector has wrong dimension");
    double product = 1.0;
    for (std::size_t d = 0; d < n; ++d) {
        const double qi = normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
        if (qi < 0.0)
            throw std::domain_error("CobbDouglasScoring: negative quality");
        product *= std::pow(qi, coefficients_[d]);
    }
    return product;
}

ScaledProductScoring::ScaledProductScoring(double alpha, std::size_t dims,
                                           std::vector<stats::MinMaxNormalizer> normalizers)
    : alpha_(alpha), dims_(dims), normalizers_(std::move(normalizers)) {
    if (dims_ == 0) throw std::invalid_argument("ScaledProductScoring: dims must be > 0");
    if (!normalizers_.empty() && normalizers_.size() != dims_)
        throw std::invalid_argument("ScaledProductScoring: normalizer count mismatch");
}

double ScaledProductScoring::quality_score(const QualityVector& q) const {
    if (q.size() != dims_)
        throw std::invalid_argument("ScaledProductScoring: quality vector has wrong dimension");
    double product = alpha_;
    for (std::size_t d = 0; d < dims_; ++d) {
        product *= normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
    }
    return product;
}

double ScaledProductScoring::quality_score_span(const double* q, std::size_t n) const {
    if (n != dims_)
        throw std::invalid_argument("ScaledProductScoring: quality vector has wrong dimension");
    double product = alpha_;
    for (std::size_t d = 0; d < dims_; ++d) {
        product *= normalizers_.empty() ? q[d] : normalizers_[d].transform(q[d]);
    }
    return product;
}

} // namespace fmore::auction
