#include "fmore/auction/game.hpp"

#include <stdexcept>

namespace fmore::auction {

AuctionGame::AuctionGame(const ScoringRule& scoring, const CostModel& cost,
                         const stats::Distribution& theta_dist, QualityVector q_lo,
                         QualityVector q_hi, EquilibriumConfig eq_config,
                         WinnerDeterminationConfig wd_config)
    : scoring_(scoring),
      cost_(cost),
      theta_dist_(theta_dist),
      strategy_(EquilibriumSolver(scoring, cost, theta_dist, std::move(q_lo),
                                  std::move(q_hi), eq_config)
                    .solve()),
      determination_(scoring, wd_config),
      num_bidders_(eq_config.num_bidders) {
    if (wd_config.num_winners != eq_config.num_winners)
        throw std::invalid_argument(
            "AuctionGame: equilibrium K and winner-determination K must agree");
}

GameResult AuctionGame::play(stats::Rng& rng, PaymentMethod method) const {
    std::vector<double> thetas(num_bidders_);
    for (double& theta : thetas) theta = theta_dist_.sample(rng);
    return play_with_types(thetas, rng, method);
}

GameResult AuctionGame::play_with_types(const std::vector<double>& thetas, stats::Rng& rng,
                                        PaymentMethod method) const {
    GameResult result;
    result.thetas = thetas;
    std::vector<Bid> bids;
    bids.reserve(thetas.size());
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        bids.push_back(strategy_.bid(i, thetas[i], method));
    }
    result.outcome = determination_.run(bids, rng);
    for (const Winner& w : result.outcome.winners) {
        const QualityVector q = strategy_.quality(thetas[w.node]);
        result.mean_winner_payment += w.payment;
        result.mean_winner_score += w.score;
        result.aggregator_profit += scoring_.quality_score(q) - w.payment;
        result.social_surplus += scoring_.quality_score(q) - cost_.cost(q, thetas[w.node]);
    }
    if (!result.outcome.winners.empty()) {
        const auto n = static_cast<double>(result.outcome.winners.size());
        result.mean_winner_payment /= n;
        result.mean_winner_score /= n;
    }
    return result;
}

} // namespace fmore::auction
