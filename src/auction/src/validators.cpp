#include "fmore/auction/validators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::auction {

IncentiveCompatibilityReport audit_incentive_compatibility(
    const EquilibriumStrategy& strategy, const ScoringRule& scoring, stats::Rng& rng,
    std::size_t trials) {
    IncentiveCompatibilityReport report;
    report.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
        const double theta =
            rng.uniform(strategy.theta_lo(), strategy.theta_hi());
        const QualityVector q = strategy.quality(theta);
        const double p = strategy.payment(theta);
        const double honest_score = scoring.score(q, p);

        // Under-declare at least one dimension by a random fraction.
        QualityVector q_hat = q;
        const auto dim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
        q_hat[dim] *= rng.uniform(0.05, 0.95);
        const double declared_score = scoring.score(q_hat, p);

        if (declared_score > honest_score + 1e-12) {
            ++report.violations;
            report.worst_violation =
                std::max(report.worst_violation, declared_score - honest_score);
        }
    }
    return report;
}

double social_surplus(const ScoringRule& scoring, const CostModel& cost,
                      const std::vector<QualityVector>& winner_qualities,
                      const std::vector<double>& winner_thetas) {
    if (winner_qualities.size() != winner_thetas.size())
        throw std::invalid_argument("social_surplus: size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < winner_qualities.size(); ++i) {
        total += scoring.quality_score(winner_qualities[i])
                 - cost.cost(winner_qualities[i], winner_thetas[i]);
    }
    return total;
}

ParetoReport audit_pareto_efficiency(const EquilibriumStrategy& strategy,
                                     const ScoringRule& scoring, const CostModel& cost,
                                     const QualityVector& q_lo, const QualityVector& q_hi,
                                     stats::Rng& rng, std::size_t trials, double tol) {
    if (q_lo.size() != q_hi.size())
        throw std::invalid_argument("audit_pareto_efficiency: bound mismatch");
    ParetoReport report;
    report.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
        const double theta = rng.uniform(strategy.theta_lo(), strategy.theta_hi());
        const QualityVector q_star = strategy.quality(theta);
        const double base = scoring.quality_score(q_star) - cost.cost(q_star, theta);

        QualityVector q_alt(q_star.size());
        for (std::size_t d = 0; d < q_alt.size(); ++d) {
            q_alt[d] = rng.uniform(q_lo[d], q_hi[d]);
        }
        const double alt = scoring.quality_score(q_alt) - cost.cost(q_alt, theta);
        if (alt > base + tol) {
            ++report.improvements;
            report.best_improvement = std::max(report.best_improvement, alt - base);
        }
    }
    return report;
}

bool individual_rationality_holds(const EquilibriumStrategy& strategy,
                                  const CostModel& cost, std::size_t grid, double tol) {
    for (std::size_t j = 0; j < grid; ++j) {
        const double theta = strategy.theta_lo()
                             + (strategy.theta_hi() - strategy.theta_lo())
                                   * static_cast<double>(j) / static_cast<double>(grid - 1);
        const QualityVector q = strategy.quality(theta);
        if (strategy.payment(theta) + tol < cost.cost(q, theta)) return false;
    }
    return true;
}

std::vector<double> proposition4_optimal_qualities(const std::vector<double>& alphas,
                                                   const std::vector<double>& betas,
                                                   double theta, double budget) {
    if (alphas.size() != betas.size() || alphas.empty())
        throw std::invalid_argument("proposition4: dimension mismatch");
    if (!(theta > 0.0) || !(budget > 0.0))
        throw std::invalid_argument("proposition4: theta and budget must be > 0");
    double alpha_sum = 0.0;
    for (const double a : alphas) {
        if (!(a > 0.0)) throw std::invalid_argument("proposition4: alphas must be > 0");
        alpha_sum += a;
    }
    std::vector<double> q(alphas.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (!(betas[i] > 0.0))
            throw std::invalid_argument("proposition4: betas must be > 0");
        // Lagrange solution of max prod q^alpha s.t. theta * sum beta q = c0:
        // spend share alpha_i/sum(alpha) of the budget on resource i.
        q[i] = (alphas[i] / alpha_sum) * budget / (theta * betas[i]);
    }
    return q;
}

} // namespace fmore::auction
