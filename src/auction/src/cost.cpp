#include "fmore/auction/cost.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::auction {

namespace {

void check_betas(const std::vector<double>& betas) {
    if (betas.empty()) throw std::invalid_argument("cost: need at least one beta");
    for (const double b : betas) {
        if (!(b >= 0.0)) throw std::invalid_argument("cost: betas must be >= 0");
    }
}

void check_quality_dims(const QualityVector& q, std::size_t expected) {
    if (q.size() != expected)
        throw std::invalid_argument("cost: quality vector has wrong dimension");
}

} // namespace

double CostModel::cost_span(const double* q, std::size_t n, double theta) const {
    // Correct-by-default adapter for custom models: the scratch keeps its
    // capacity across calls, so steady-state rounds stay allocation-free.
    thread_local QualityVector scratch;
    scratch.assign(q, q + n);
    return cost(scratch, theta);
}

AdditiveCost::AdditiveCost(std::vector<double> betas) : betas_(std::move(betas)) {
    check_betas(betas_);
}

double AdditiveCost::cost(const QualityVector& q, double theta) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) total += betas_[d] * q[d];
    return theta * total;
}

double AdditiveCost::cost_span(const double* q, std::size_t n, double theta) const {
    if (n != betas_.size())
        throw std::invalid_argument("cost: quality vector has wrong dimension");
    double total = 0.0;
    for (std::size_t d = 0; d < n; ++d) total += betas_[d] * q[d];
    return theta * total;
}

double AdditiveCost::cost_theta_derivative(const QualityVector& q, double) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) total += betas_[d] * q[d];
    return total;
}

QuadraticCost::QuadraticCost(std::vector<double> betas) : betas_(std::move(betas)) {
    check_betas(betas_);
}

double QuadraticCost::cost(const QualityVector& q, double theta) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) total += betas_[d] * q[d] * q[d];
    return theta * total;
}

double QuadraticCost::cost_theta_derivative(const QualityVector& q, double) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) total += betas_[d] * q[d] * q[d];
    return total;
}

PowerCost::PowerCost(std::vector<double> betas, double gamma)
    : betas_(std::move(betas)), gamma_(gamma) {
    check_betas(betas_);
    if (!(gamma_ >= 1.0)) throw std::invalid_argument("PowerCost: gamma must be >= 1");
}

double PowerCost::cost(const QualityVector& q, double theta) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
        if (q[d] < 0.0) throw std::domain_error("PowerCost: negative quality");
        total += betas_[d] * std::pow(q[d], gamma_);
    }
    return theta * total;
}

double PowerCost::cost_theta_derivative(const QualityVector& q, double) const {
    check_quality_dims(q, betas_.size());
    double total = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) total += betas_[d] * std::pow(q[d], gamma_);
    return total;
}

SingleCrossingReport check_single_crossing(const CostModel& cost, const QualityVector& q_lo,
                                           const QualityVector& q_hi, double theta_lo,
                                           double theta_hi, std::size_t samples) {
    if (q_lo.size() != q_hi.size() || q_lo.size() != cost.dimensions())
        throw std::invalid_argument("check_single_crossing: dimension mismatch");
    if (samples < 3) samples = 3;

    SingleCrossingReport report;
    const std::size_t m = q_lo.size();
    const double dtheta = (theta_hi - theta_lo) / static_cast<double>(samples - 1);

    for (std::size_t d = 0; d < m; ++d) {
        const double hq = (q_hi[d] - q_lo[d]) / static_cast<double>(samples + 1);
        if (!(hq > 0.0)) continue;
        for (std::size_t ti = 0; ti < samples; ++ti) {
            const double theta = theta_lo + static_cast<double>(ti) * dtheta;
            const double theta2 = theta + 0.5 * dtheta;
            for (std::size_t qi = 1; qi <= samples; ++qi) {
                QualityVector q = q_lo;
                for (std::size_t e = 0; e < m; ++e) q[e] = 0.5 * (q_lo[e] + q_hi[e]);
                q[d] = q_lo[d] + static_cast<double>(qi) * hq;

                auto cq = [&](double qd, double th) {
                    QualityVector probe = q;
                    probe[d] = qd + 0.5 * hq;
                    const double hi_val = cost.cost(probe, th);
                    probe[d] = qd - 0.5 * hq;
                    return (hi_val - cost.cost(probe, th)) / hq;
                };
                const double c_q = cq(q[d], theta);
                const double c_qq = (cq(q[d] + 0.5 * hq, theta) - cq(q[d] - 0.5 * hq, theta)) / hq;
                const double c_q_hi_theta = cq(q[d], theta2);
                const double c_qq_hi_theta =
                    (cq(q[d] + 0.5 * hq, theta2) - cq(q[d] - 0.5 * hq, theta2)) / hq;

                constexpr double tol = 1e-9;
                if (c_q < -tol) report.cost_increasing_in_quality = false;
                if (c_qq < -tol) report.convex_in_quality = false;
                if (theta2 > theta && c_q_hi_theta <= c_q - tol)
                    report.marginal_increasing_in_theta = false;
                if (c_qq_hi_theta < c_qq - tol) report.curvature_increasing_in_theta = false;
            }
        }
    }
    return report;
}

} // namespace fmore::auction
