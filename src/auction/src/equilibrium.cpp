#include "fmore/auction/equilibrium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fmore/numeric/optimize.hpp"
#include "fmore/numeric/quadrature.hpp"

namespace fmore::auction {

namespace {

constexpr double k_tiny_prob = 1e-12;

} // namespace

// ------------------------------------------------------------------ Strategy

QualityVector EquilibriumStrategy::quality(double theta) const {
    QualityVector q(quality_curves_.size());
    for (std::size_t d = 0; d < q.size(); ++d) q[d] = (*quality_curves_[d])(theta);
    return q;
}

double EquilibriumStrategy::max_surplus(double theta) const {
    return (*surplus_curve_)(theta);
}

double EquilibriumStrategy::payment(double theta, PaymentMethod method) const {
    const QualityVector q = quality(theta);
    const double c = cost_->cost(q, theta);
    if (degenerate_) return c;
    return c + markup_curve(method)(max_surplus(theta));
}

Bid EquilibriumStrategy::bid(NodeId node, double theta, PaymentMethod method) const {
    return Bid{node, quality(theta), payment(theta, method)};
}

double EquilibriumStrategy::expected_profit(double theta) const {
    if (degenerate_) return 0.0;
    return (*profit_curve_)(max_surplus(theta));
}

double EquilibriumStrategy::win_probability_at(double theta) const {
    if (degenerate_) {
        return static_cast<double>(num_winners_) / static_cast<double>(num_bidders_);
    }
    return (*win_prob_curve_)(max_surplus(theta));
}

double EquilibriumStrategy::score_cdf(double u) const {
    if (degenerate_) return u < u_min_ ? 0.0 : 1.0;
    if (u <= u_min_) return 0.0;
    if (u >= u_max_) return 1.0;
    return (*score_cdf_curve_)(u);
}

double EquilibriumStrategy::markup_at_score(double u, PaymentMethod method) const {
    if (degenerate_) return 0.0;
    return markup_curve(method)(std::clamp(u, u_min_, u_max_));
}

double EquilibriumStrategy::payment_for(const QualityVector& q, double theta,
                                        PaymentMethod method) const {
    const double c = cost_->cost(q, theta);
    const double u = scoring_->quality_score(q) - c;
    return c + markup_at_score(u, method);
}

void EquilibriumStrategy::quality_into(double theta, double* out) const {
    // Every quality curve is tabulated by the solver on the SAME theta
    // grid, so one segment lookup serves all dimensions. Values are
    // bit-identical to calling each curve's operator() (same segment, same
    // lerp arithmetic).
    const numeric::LinearInterpolator& first = *quality_curves_[0];
    if (theta <= first.x_min()) {
        for (std::size_t d = 0; d < quality_curves_.size(); ++d) {
            out[d] = quality_curves_[d]->ys().front();
        }
        return;
    }
    if (theta >= first.x_max()) {
        for (std::size_t d = 0; d < quality_curves_.size(); ++d) {
            out[d] = quality_curves_[d]->ys().back();
        }
        return;
    }
    const std::size_t hi = first.segment_for(theta);
    for (std::size_t d = 0; d < quality_curves_.size(); ++d) {
        out[d] = quality_curves_[d]->eval_segment(hi, theta);
    }
}

double EquilibriumStrategy::payment_for_span(const double* q, std::size_t n, double theta,
                                             PaymentMethod method) const {
    const double c = cost_->cost_span(q, n, theta);
    const double u = scoring_->quality_score_span(q, n) - c;
    return c + markup_at_score(u, method);
}

EquilibriumStrategy::SealedQuote EquilibriumStrategy::quote_span(
    const double* q, std::size_t n, double theta, PaymentMethod method) const {
    const double c = cost_->cost_span(q, n, theta);
    const double s = scoring_->quality_score_span(q, n);
    const double u = s - c;
    return {c + markup_at_score(u, method), s};
}

const numeric::LinearInterpolator&
EquilibriumStrategy::markup_curve(PaymentMethod method) const {
    switch (method) {
        case PaymentMethod::euler_ode: return *markup_euler_;
        case PaymentMethod::rk4_ode: return *markup_rk4_;
        case PaymentMethod::integral: break;
    }
    return *markup_integral_;
}

// -------------------------------------------------------------------- Solver

EquilibriumSolver::EquilibriumSolver(const ScoringRule& scoring, const CostModel& cost,
                                     const stats::Distribution& theta_dist,
                                     QualityVector q_lo, QualityVector q_hi,
                                     EquilibriumConfig config)
    : scoring_(scoring),
      cost_(cost),
      theta_dist_(theta_dist),
      q_lo_(std::move(q_lo)),
      q_hi_(std::move(q_hi)),
      config_(config) {
    if (q_lo_.size() != q_hi_.size() || q_lo_.empty())
        throw std::invalid_argument("EquilibriumSolver: bad quality bounds");
    if (q_lo_.size() != scoring_.dimensions() || q_lo_.size() != cost_.dimensions())
        throw std::invalid_argument("EquilibriumSolver: dimension mismatch");
    for (std::size_t d = 0; d < q_lo_.size(); ++d) {
        if (!(q_lo_[d] <= q_hi_[d]))
            throw std::invalid_argument("EquilibriumSolver: q_lo > q_hi");
    }
    if (config_.num_winners == 0 || config_.num_winners >= config_.num_bidders)
        throw std::invalid_argument(
            "EquilibriumSolver: need 1 <= K < N (with K >= N every bid wins and the "
            "first-price equilibrium payment is unbounded)");
    if (config_.theta_grid_points < 8)
        throw std::invalid_argument("EquilibriumSolver: theta_grid_points too small");
    if (config_.score_grid_points < 16)
        throw std::invalid_argument("EquilibriumSolver: score_grid_points too small");
}

QualityVector EquilibriumSolver::best_quality(double theta) const {
    if (q_lo_.size() == 1) {
        auto objective = [&](double q1) {
            const QualityVector q{q1};
            return scoring_.quality_score(q) - cost_.cost(q, theta);
        };
        return {numeric::grid_refine_maximize(objective, q_lo_[0], q_hi_[0],
                                              config_.quality_grid_points)
                    .x};
    }
    auto objective = [&](const QualityVector& q) {
        return scoring_.quality_score(q) - cost_.cost(q, theta);
    };
    return numeric::coordinate_ascent_maximize(objective, q_lo_, q_hi_,
                                               config_.quality_grid_points)
        .x;
}

EquilibriumSolver::QualityTable EquilibriumSolver::tabulate_qualities() const {
    QualityTable table;
    const std::size_t g = config_.theta_grid_points;
    const double lo = theta_dist_.support_lo();
    const double hi = theta_dist_.support_hi();
    table.thetas.resize(g);
    table.qualities.resize(g);
    table.surpluses.resize(g);
    for (std::size_t j = 0; j < g; ++j) {
        const double theta =
            lo + (hi - lo) * static_cast<double>(j) / static_cast<double>(g - 1);
        table.thetas[j] = theta;
        table.qualities[j] = best_quality(theta);
        table.surpluses[j] = scoring_.quality_score(table.qualities[j])
                             - cost_.cost(table.qualities[j], theta);
    }
    // Single crossing makes u0 non-increasing in theta; clean numerical
    // wiggle so downstream inversion is well posed.
    for (std::size_t j = 1; j < g; ++j) {
        table.surpluses[j] = std::min(table.surpluses[j], table.surpluses[j - 1]);
    }
    return table;
}

EquilibriumStrategy EquilibriumSolver::solve() const {
    const QualityTable table = tabulate_qualities();
    const std::size_t g = table.thetas.size();
    const std::size_t dims = q_lo_.size();

    EquilibriumStrategy strategy;
    strategy.scoring_ = &scoring_;
    strategy.cost_ = &cost_;
    strategy.theta_lo_ = table.thetas.front();
    strategy.theta_hi_ = table.thetas.back();
    strategy.num_bidders_ = config_.num_bidders;
    strategy.num_winners_ = config_.num_winners;

    for (std::size_t d = 0; d < dims; ++d) {
        std::vector<double> qd(g);
        for (std::size_t j = 0; j < g; ++j) qd[j] = table.qualities[j][d];
        strategy.quality_curves_.push_back(std::make_unique<numeric::LinearInterpolator>(
            table.thetas, std::move(qd)));
    }
    strategy.surplus_curve_ =
        std::make_unique<numeric::LinearInterpolator>(table.thetas, table.surpluses);

    const double u_max = table.surpluses.front();
    const double u_min = table.surpluses.back();
    strategy.u_min_ = u_min;
    strategy.u_max_ = u_max;

    if (u_max - u_min < 1e-12) {
        // All types achieve the same score (e.g. constant cost in theta):
        // competition drives the markup to zero and every bidder ties
        // (Proposition 2's setting). Payment = cost.
        strategy.degenerate_ = true;
        return strategy;
    }

    // H(u) = 1 - F(theta(u)) tabulated on the score grid. theta(u) comes from
    // inverting the (theta, u0) table; u0 is non-increasing in theta.
    const numeric::LinearInterpolator theta_of_u =
        numeric::LinearInterpolator::inverse_of(table.thetas, table.surpluses);

    const std::size_t s = config_.score_grid_points;
    std::vector<double> us(s + 1);
    std::vector<double> hs(s + 1);
    std::vector<double> gs(s + 1);
    for (std::size_t i = 0; i <= s; ++i) {
        const double u =
            u_min + (u_max - u_min) * static_cast<double>(i) / static_cast<double>(s);
        us[i] = u;
        hs[i] = std::clamp(1.0 - theta_dist_.cdf(theta_of_u(u)), 0.0, 1.0);
        gs[i] = win_probability(config_.win_model, hs[i], config_.num_bidders,
                                config_.num_winners);
    }
    // Boundary exactness: the best type ties nobody above it, the worst type
    // never beats anyone.
    hs.front() = 0.0;
    gs.front() = win_probability(config_.win_model, 0.0, config_.num_bidders,
                                 config_.num_winners);
    hs.back() = 1.0;
    gs.back() = 1.0;

    std::vector<double> cumulative = numeric::cumulative_trapezoid(us, gs);

    // markup_integral(u) = I(u)/g(u); limit 0 at u_min where both vanish.
    std::vector<double> markup_int(s + 1, 0.0);
    for (std::size_t i = 0; i <= s; ++i) {
        markup_int[i] = gs[i] > k_tiny_prob ? cumulative[i] / gs[i] : 0.0;
    }

    // Markup ODE m' = 1 - m g'/g integrated upward. The layer near u_min is
    // stiff (g'/g ~ (N-K)/(u - u_min)); we seed from the integral solution at
    // the first stable step and fall back to it below the seed.
    const double h = (u_max - u_min) / static_cast<double>(s);
    auto phi_at = [&](std::size_t i) {
        const std::size_t a = i == 0 ? 0 : i - 1;
        const std::size_t b = i == s ? s : i + 1;
        const double dg = gs[b] - gs[a];
        const double du = us[b] - us[a];
        return gs[i] > k_tiny_prob ? (dg / du) / gs[i] : 0.0;
    };
    std::size_t seed = 0;
    while (seed < s && (gs[seed] <= 1e-9 || phi_at(seed) * h > 0.5)) ++seed;

    std::vector<double> markup_euler = markup_int;
    std::vector<double> markup_rk4 = markup_int;
    if (seed < s) {
        double m_e = markup_int[seed];
        double m_r = markup_int[seed];
        for (std::size_t i = seed; i < s; ++i) {
            // Explicit Euler (the paper's Eq. 14).
            m_e = m_e + h * (1.0 - m_e * phi_at(i));
            markup_euler[i + 1] = std::max(0.0, m_e);
            // RK4 with phi linearly interpolated at half steps.
            const double phi_i = phi_at(i);
            const double phi_n = phi_at(i + 1);
            const double phi_h = 0.5 * (phi_i + phi_n);
            const double k1 = 1.0 - m_r * phi_i;
            const double k2 = 1.0 - (m_r + 0.5 * h * k1) * phi_h;
            const double k3 = 1.0 - (m_r + 0.5 * h * k2) * phi_h;
            const double k4 = 1.0 - (m_r + h * k3) * phi_n;
            m_r = m_r + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
            markup_rk4[i + 1] = std::max(0.0, m_r);
        }
    }

    strategy.score_cdf_curve_ = std::make_unique<numeric::LinearInterpolator>(us, hs);
    strategy.win_prob_curve_ = std::make_unique<numeric::LinearInterpolator>(us, gs);
    strategy.profit_curve_ =
        std::make_unique<numeric::LinearInterpolator>(us, std::move(cumulative));
    strategy.markup_integral_ =
        std::make_unique<numeric::LinearInterpolator>(us, std::move(markup_int));
    strategy.markup_euler_ =
        std::make_unique<numeric::LinearInterpolator>(us, std::move(markup_euler));
    strategy.markup_rk4_ =
        std::make_unique<numeric::LinearInterpolator>(us, std::move(markup_rk4));
    return strategy;
}

double EquilibriumSolver::payment_che_closed_form(double theta, std::size_t exponent) const {
    const double hi = theta_dist_.support_hi();
    if (theta >= hi) {
        const QualityVector q = best_quality(theta);
        return cost_.cost(q, theta);
    }
    const double one_minus_f = 1.0 - theta_dist_.cdf(theta);
    if (one_minus_f <= k_tiny_prob) {
        const QualityVector q = best_quality(theta);
        return cost_.cost(q, theta);
    }
    const std::size_t panels = 512;
    auto integrand = [&](double t) {
        const QualityVector qt = best_quality(t);
        const double ratio = (1.0 - theta_dist_.cdf(t)) / one_minus_f;
        return cost_.cost_theta_derivative(qt, t)
               * std::pow(ratio, static_cast<double>(exponent));
    };
    const double integral = numeric::trapezoid(integrand, theta, hi, panels);
    const QualityVector q = best_quality(theta);
    return cost_.cost(q, theta) + integral;
}

} // namespace fmore::auction
