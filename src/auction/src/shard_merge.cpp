#include "fmore/auction/shard_merge.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace fmore::auction {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* data, std::size_t size, std::size_t& at) {
    if (at + sizeof(T) > size)
        throw std::invalid_argument("ShardHead::deserialize: truncated payload");
    T value;
    std::memcpy(&value, data + at, sizeof(T));
    at += sizeof(T);
    return value;
}

} // namespace

void ShardHead::serialize(std::vector<std::uint8_t>& out) const {
    put<std::uint64_t>(out, rows.size());
    put<std::uint64_t>(out, dims);
    for (const HeadRow& row : rows) {
        put<std::uint64_t>(out, row.node);
        put<double>(out, row.score);
        put<std::uint64_t>(out, row.key);
        put<double>(out, row.payment);
    }
    for (const double q : quality) put<double>(out, q);
}

ShardHead ShardHead::deserialize(const std::uint8_t* data, std::size_t size) {
    std::size_t at = 0;
    ShardHead head;
    const std::uint64_t count = get<std::uint64_t>(data, size, at);
    head.dims = static_cast<std::size_t>(get<std::uint64_t>(data, size, at));
    head.rows.reserve(count);
    for (std::uint64_t r = 0; r < count; ++r) {
        HeadRow row;
        row.node = static_cast<NodeId>(get<std::uint64_t>(data, size, at));
        row.score = get<double>(data, size, at);
        row.key = get<std::uint64_t>(data, size, at);
        row.payment = get<double>(data, size, at);
        head.rows.push_back(row);
    }
    head.quality.reserve(count * head.dims);
    for (std::uint64_t q = 0; q < count * head.dims; ++q)
        head.quality.push_back(get<double>(data, size, at));
    if (at != size)
        throw std::invalid_argument("ShardHead::deserialize: trailing bytes");
    return head;
}

void collect_shard_head(const BidFrame& frame, std::size_t node_offset,
                        const TieKeys& keys, std::size_t limit, ShardHead& out) {
    collect_shard_head(frame, 0, frame.rows(), node_offset, keys, limit, out);
}

void collect_shard_head(const BidFrame& frame, std::size_t begin_row,
                        std::size_t end_row, std::size_t node_offset,
                        const TieKeys& keys, std::size_t limit, ShardHead& out) {
    if (!frame.scored())
        throw std::logic_error(
            "collect_shard_head: frame must carry the aggregator score column");
    out.clear();
    out.dims = frame.dims();
    if (limit == 0) return;

    // Bounded heap, root = worst kept row — the same structure the fused
    // monolithic pass keeps per worker slot, here per shard.
    std::vector<HeadRow>& heap = out.rows;
    heap.reserve(limit);
    for (NodeId row = begin_row; row < end_row; ++row) {
        if (!frame.active(row)) continue;
        const NodeId global = node_offset + row;
        const HeadRow cand{global, frame.score(row), keys.key(global),
                           frame.payment(row)};
        if (heap.size() < limit) {
            heap.push_back(cand);
            std::push_heap(heap.begin(), heap.end(), head_row_better);
        } else if (head_row_better(cand, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), head_row_better);
            heap.back() = cand;
            std::push_heap(heap.begin(), heap.end(), head_row_better);
        }
    }
    std::sort(heap.begin(), heap.end(), head_row_better);

    // Quality vectors of the kept rows only — the payload stays O(limit·d)
    // no matter how large the shard is.
    out.quality.resize(heap.size() * out.dims);
    for (std::size_t r = 0; r < heap.size(); ++r) {
        const NodeId local = heap[r].node - node_offset;
        const double* q = frame.quality_row(local);
        std::copy(q, q + out.dims, out.quality.begin() + r * out.dims);
    }
}

void merge_heads(const std::vector<ShardHead>& heads, std::size_t cutoff,
                 std::vector<ScoredBid>& ranking) {
    struct Tagged {
        HeadRow row;
        std::uint32_t shard = 0;
        std::uint32_t idx = 0;
    };
    std::vector<Tagged> all;
    std::size_t total = 0;
    for (const ShardHead& head : heads) total += head.rows.size();
    all.reserve(total);
    for (std::size_t s = 0; s < heads.size(); ++s) {
        for (std::size_t r = 0; r < heads[s].rows.size(); ++r) {
            all.push_back(Tagged{heads[s].rows[r], static_cast<std::uint32_t>(s),
                                 static_cast<std::uint32_t>(r)});
        }
    }
    std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
        return head_row_better(a.row, b.row);
    });
    if (all.size() > cutoff) all.resize(cutoff);

    ranking.resize(all.size());
    for (std::size_t r = 0; r < all.size(); ++r) {
        const ShardHead& head = heads[all[r].shard];
        const double* q = head.quality_row(all[r].idx);
        ScoredBid& sb = ranking[r];
        sb.bid.node = all[r].row.node;
        sb.bid.quality.assign(q, q + head.dims);
        sb.bid.payment = all[r].row.payment;
        sb.score = all[r].row.score;
    }
}

} // namespace fmore::auction
