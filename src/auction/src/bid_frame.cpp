#include "fmore/auction/bid_frame.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fmore::auction {

void BidFrame::reset(std::size_t rows, std::size_t dims) {
    rows_ = rows;
    dims_ = dims;
    quality_.resize(rows * dims);
    payment_.resize(rows);
    score_.resize(rows);
    active_.assign(rows, 1);
    scored_ = false;
}

std::size_t BidFrame::active_count() const {
    std::size_t n = 0;
    for (const std::uint8_t a : active_) n += a;
    return n;
}

void BidFrame::to_bids(std::vector<Bid>& out) const {
    out.resize(active_count());
    std::size_t k = 0;
    for (NodeId i = 0; i < rows_; ++i) {
        if (!active(i)) continue;
        Bid& bid = out[k++];
        bid.node = i;
        bid.quality.assign(quality_row(i), quality_row(i) + dims_);
        bid.payment = payment_[i];
    }
}

void BidFrame::from_bids(const std::vector<Bid>& bids) {
    std::size_t rows = 0;
    const std::size_t dims = bids.empty() ? 0 : bids.front().quality.size();
    for (const Bid& bid : bids) rows = std::max(rows, bid.node + 1);
    reset(rows, dims);
    std::fill(active_.begin(), active_.end(), std::uint8_t{0});
    for (const Bid& bid : bids) {
        if (bid.quality.size() != dims)
            throw std::invalid_argument(
                "BidFrame::from_bids: inconsistent quality dimensions ("
                + std::to_string(bid.quality.size()) + " vs " + std::to_string(dims)
                + ")");
        if (active(bid.node))
            throw std::invalid_argument("BidFrame::from_bids: duplicate NodeId "
                                        + std::to_string(bid.node));
        std::copy(bid.quality.begin(), bid.quality.end(), quality_row(bid.node));
        payment_[bid.node] = bid.payment;
        active_[bid.node] = 1;
    }
}

} // namespace fmore::auction
