#include "fmore/auction/streaming_market.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <typeinfo>

namespace fmore::auction {

namespace {

using Candidate = RankScratch::Candidate;

/// The market's strict total order — identical to the `rank_frame` and
/// `head_row_better` comparators, which is the whole bit-identity argument.
bool better(const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.key != b.key) return a.key < b.key;
    return a.node < b.node;
}

} // namespace

const char* to_string(CloseReason reason) {
    switch (reason) {
        case CloseReason::open: return "open";
        case CloseReason::quorum: return "quorum";
        case CloseReason::deadline: return "deadline";
        case CloseReason::exhausted: return "exhausted";
    }
    return "?";
}

StreamingMarket::StreamingMarket(std::shared_ptr<const Mechanism> mechanism,
                                 const ScoringRule& scoring)
    : mechanism_(std::move(mechanism)), scoring_(scoring) {
    if (!mechanism_)
        throw std::invalid_argument("StreamingMarket: null mechanism");
    // Same exact-type dispatch as run_frame/rank_frame: the incremental
    // fast lane replicates the BASE engine's ranking only, so any subclass
    // (which may override rank/select/price) closes through its own
    // run_frame instead.
    if (typeid(*mechanism_) == typeid(ScoreAuctionMechanism))
        engine_ = static_cast<const ScoreAuctionMechanism*>(mechanism_.get());
    salted_incremental_ =
        engine_ != nullptr && engine_->spec().tie_break == TieBreak::salted;
}

void StreamingMarket::open_round(std::size_t rows, std::size_t dims,
                                 const StreamingRoundSpec& spec, stats::Rng& rng) {
    if (spec.expected_bids > rows)
        throw std::invalid_argument("StreamingMarket: expected_bids = "
                                    + std::to_string(spec.expected_bids)
                                    + " exceeds the " + std::to_string(rows)
                                    + "-row bid arena");
    if (!(spec.deadline_s >= 0.0))
        throw std::invalid_argument("StreamingMarket: deadline_s must be >= 0");
    round_ = spec;
    expected_ = spec.expected_bids == 0 ? rows : spec.expected_bids;
    arrived_ = 0;
    reason_ = CloseReason::open;
    finalized_ = false;
    close_time_s_ = 0.0;
    last_arrival_s_ = 0.0;
    head_churn_ = 0;

    frame_.reset(rows, dims);
    // reset() marks every row active (the batch collector's convention);
    // a streaming arena starts EMPTY and rows light up as bids land.
    for (NodeId row = 0; row < rows; ++row) frame_.set_active(row, false);
    frame_.set_scored(true);

    cands_.clear();
    head_.clear();
    if (salted_incremental_) {
        // The batch path's one pre-selection draw, made at open so the
        // generator stream matches run_frame's bit for bit.
        tie_salt_ = rng.engine()();
        const MechanismSpec& ms = engine_->spec();
        const bool probabilistic = ms.psi < 1.0 || !ms.psi_per_node.empty();
        if (ms.full_ranking || probabilistic) {
            cand_cap_ = 0; // the close needs the whole board anyway
        } else {
            cand_cap_ = ms.num_winners
                        + (ms.payment_rule == PaymentRule::second_price ? 1 : 0);
        }
    }
    head_cap_ = round_.head_k != 0 ? round_.head_k
                : engine_ != nullptr ? engine_->spec().num_winners
                                     : 0;
}

void StreamingMarket::track_head(const Candidate& cand) {
    if (head_cap_ == 0) return;
    if (head_.size() < head_cap_) {
        head_.push_back(cand);
        std::push_heap(head_.begin(), head_.end(), better);
    } else if (better(cand, head_.front())) {
        std::pop_heap(head_.begin(), head_.end(), better);
        head_.back() = cand;
        std::push_heap(head_.begin(), head_.end(), better);
        ++head_churn_;
    }
}

bool StreamingMarket::offer(NodeId node, const double* quality, double payment,
                            double score, double arrival_s) {
    if (closed()) return false;
    if (node >= frame_.rows())
        throw std::invalid_argument("StreamingMarket: node " + std::to_string(node)
                                    + " is outside the "
                                    + std::to_string(frame_.rows()) + "-row arena");
    if (frame_.active(node))
        throw std::invalid_argument("StreamingMarket: duplicate bid from node "
                                    + std::to_string(node));
    if (arrival_s < last_arrival_s_)
        throw std::invalid_argument(
            "StreamingMarket: the virtual clock ran backwards (arrival at "
            + std::to_string(arrival_s) + "s after "
            + std::to_string(last_arrival_s_) + "s)");
    // Strictly-later-than-the-deadline misses the round — the same rule the
    // sharded selector applies to a slow shard's head.
    if (round_.deadline_s > 0.0 && arrival_s > round_.deadline_s) {
        reason_ = CloseReason::deadline;
        close_time_s_ = round_.deadline_s;
        return false;
    }
    last_arrival_s_ = arrival_s;

    frame_.set_active(node, true);
    double* q = frame_.quality_row(node);
    for (std::size_t d = 0; d < frame_.dims(); ++d) q[d] = quality[d];
    frame_.payment(node) = payment;
    frame_.score(node) = score;
    ++arrived_;

    const std::uint64_t key =
        salted_incremental_ ? stats::derive_stream_seed(tie_salt_, node) : 0;
    const Candidate cand{score, key, node};
    if (salted_incremental_) {
        // The same bounded-heap fold rank_frame's fused top-K pass runs per
        // chunk, applied per ARRIVAL: root = worst kept candidate, replace
        // when the newcomer beats it. O(log K) per bid.
        if (cand_cap_ == 0 || cands_.size() < cand_cap_) {
            cands_.push_back(cand);
            if (cand_cap_ != 0)
                std::push_heap(cands_.begin(), cands_.end(), better);
        } else if (better(cand, cands_.front())) {
            std::pop_heap(cands_.begin(), cands_.end(), better);
            cands_.back() = cand;
            std::push_heap(cands_.begin(), cands_.end(), better);
        }
    }
    track_head(cand);

    if (round_.quorum > 0 && arrived_ >= round_.quorum) {
        reason_ = CloseReason::quorum;
        close_time_s_ = arrival_s;
    } else if (arrived_ >= expected_) {
        reason_ = CloseReason::exhausted;
        close_time_s_ = arrival_s;
    }
    return true;
}

const AuctionOutcome& StreamingMarket::close_round_sharded(
    stats::Rng& rng, const std::vector<std::size_t>& shard_starts) {
    if (finalized_) return outcome_;
    if (shard_starts.empty() || shard_starts.front() != 0
        || !std::is_sorted(shard_starts.begin(), shard_starts.end())
        || shard_starts.back() > frame_.rows())
        throw std::invalid_argument(
            "StreamingMarket: shard_starts must be sorted, begin at row 0 and "
            "stay inside the bid arena");
    if (!salted_incremental_) return close_round(rng);  // batch replay is exact
    if (reason_ == CloseReason::open) {
        reason_ = CloseReason::exhausted;
        close_time_s_ = last_arrival_s_;
    }
    // Per virtual shard: the same bounded head collection the forked
    // workers run, over this shard's slice of the arrived frame; then the
    // incremental merge. Both sides of the equivalence truncate the same
    // strict total order at the same cutoff, so the ranking — and the
    // selection and pricing over it — matches close_round bit for bit.
    const std::size_t cutoff = engine_->ranking_cutoff(arrived_);
    TieKeys keys;
    keys.salted = true;
    keys.salt = tie_salt_;
    StreamingHeadMerge merge;
    merge.open(frame_.dims(), cutoff);
    ShardHead head;
    for (std::size_t s = 0; s < shard_starts.size(); ++s) {
        const std::size_t begin = shard_starts[s];
        const std::size_t end =
            s + 1 < shard_starts.size() ? shard_starts[s + 1] : frame_.rows();
        collect_shard_head(frame_, begin, end, 0, keys, cutoff, head);
        merge.ingest(head);
    }
    merge.finish(outcome_.ranking);
    engine_->select_into(outcome_.ranking, rng, scratch_.chosen);
    engine_->price_into(scoring_, outcome_.ranking, scratch_.chosen,
                        outcome_.winners);
    finalized_ = true;
    return outcome_;
}

const AuctionOutcome& StreamingMarket::close_round(stats::Rng& rng) {
    if (finalized_) return outcome_;
    if (reason_ == CloseReason::open) {
        // Caller-initiated close with the feed dry: exhausted semantics.
        reason_ = CloseReason::exhausted;
        close_time_s_ = last_arrival_s_;
    }
    if (salted_incremental_) {
        // The arrivals already folded the board; what remains is exactly
        // the tail of rank_frame's salted lane: sort the kept candidates
        // under the market order, truncate at the engine's cutoff, and
        // materialize the head from the frame.
        std::sort(cands_.begin(), cands_.end(), better);
        const std::size_t top = engine_->ranking_cutoff(arrived_);
        if (cands_.size() > top) cands_.resize(top);
        const std::size_t dims = frame_.dims();
        outcome_.ranking.resize(cands_.size());
        for (std::size_t r = 0; r < cands_.size(); ++r) {
            const NodeId row = cands_[r].node;
            ScoredBid& sb = outcome_.ranking[r];
            sb.bid.node = row;
            sb.bid.quality.assign(frame_.quality_row(row),
                                  frame_.quality_row(row) + dims);
            sb.bid.payment = frame_.payment(row);
            sb.score = cands_[r].score;
        }
        engine_->select_into(outcome_.ranking, rng, scratch_.chosen);
        engine_->price_into(scoring_, outcome_.ranking, scratch_.chosen,
                            outcome_.winners);
    } else {
        // Shuffle-mode engine or a custom mechanism: the tie permutation /
        // the mechanism's own semantics are a function of the FINAL arrived
        // set, so the close replays the batch pass over the arrived frame —
        // no draws were consumed during ingestion, so the streams align.
        mechanism_->run_frame(scoring_, frame_, rng, scratch_, outcome_);
    }
    finalized_ = true;
    return outcome_;
}

// ---------------------------------------------------------------------------
// StreamingHeadMerge
// ---------------------------------------------------------------------------

void StreamingHeadMerge::open(std::size_t dims, std::size_t cutoff) {
    dims_ = dims;
    cutoff_ = cutoff;
    ingested_ = 0;
    heap_.clear();
    arena_.resize(cutoff * dims);
    free_.clear();
    for (std::size_t s = cutoff; s-- > 0;)
        free_.push_back(static_cast<std::uint32_t>(s));
}

void StreamingHeadMerge::ingest(const ShardHead& head) {
    if (!head.rows.empty() && head.dims != dims_)
        throw std::invalid_argument("StreamingHeadMerge: head dims = "
                                    + std::to_string(head.dims) + ", expected "
                                    + std::to_string(dims_));
    for (std::size_t r = 0; r < head.rows.size(); ++r)
        ingest_row(head.rows[r], head.quality_row(r));
    ++ingested_;
}

void StreamingHeadMerge::ingest_row(const HeadRow& row, const double* quality) {
    const auto slot_better = [](const Slot& a, const Slot& b) {
        return head_row_better(a.row, b.row);
    };
    if (heap_.size() < cutoff_) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        std::copy(quality, quality + dims_, arena_.data() + slot * dims_);
        heap_.push_back(Slot{row, slot});
        std::push_heap(heap_.begin(), heap_.end(), slot_better);
    } else if (cutoff_ > 0 && head_row_better(row, heap_.front().row)) {
        // Evict the worst kept row and park the newcomer's quality in
        // the slot it vacates — the arena never grows past cutoff.
        const std::uint32_t slot = heap_.front().arena;
        std::pop_heap(heap_.begin(), heap_.end(), slot_better);
        heap_.back() = Slot{row, slot};
        std::copy(quality, quality + dims_, arena_.data() + slot * dims_);
        std::push_heap(heap_.begin(), heap_.end(), slot_better);
    }
}

void StreamingHeadMerge::finish(std::vector<ScoredBid>& ranking) {
    // `merge_heads` sorts the concatenated rows and truncates at cutoff;
    // the bounded heap kept exactly the rows that survive that truncation
    // (the order is strict and total), so sorting them reproduces its
    // output bit for bit.
    std::sort(heap_.begin(), heap_.end(), [](const Slot& a, const Slot& b) {
        return head_row_better(a.row, b.row);
    });
    ranking.resize(heap_.size());
    for (std::size_t r = 0; r < heap_.size(); ++r) {
        const double* q = arena_.data() + heap_[r].arena * dims_;
        ScoredBid& sb = ranking[r];
        sb.bid.node = heap_[r].row.node;
        sb.bid.quality.assign(q, q + dims_);
        sb.bid.payment = heap_[r].row.payment;
        sb.score = heap_[r].row.score;
    }
}

} // namespace fmore::auction
