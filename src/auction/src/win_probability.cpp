#include "fmore/auction/win_probability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::auction {

namespace {

void check_nk(std::size_t n, std::size_t k) {
    if (k == 0) throw std::invalid_argument("win_probability: k must be >= 1");
    if (k >= n) throw std::invalid_argument("win_probability: need k < n");
}

} // namespace

double paper_win_probability(double h, std::size_t n, std::size_t k) {
    check_nk(n, k);
    h = std::clamp(h, 0.0, 1.0);
    double total = 0.0;
    for (std::size_t i = 1; i <= k; ++i) {
        total += std::pow(1.0 - h, static_cast<double>(i - 1))
                 * std::pow(h, static_cast<double>(n - i));
    }
    return std::clamp(total, 0.0, 1.0);
}

double exact_win_probability(double h, std::size_t n, std::size_t k) {
    check_nk(n, k);
    h = std::clamp(h, 0.0, 1.0);
    const std::size_t opponents = n - 1;
    double total = 0.0;
    for (std::size_t j = 0; j + 1 <= k; ++j) {
        // j opponents above the bidder's score.
        if (h == 0.0 && opponents - j > 0) continue;
        if (h == 1.0 && j > 0) continue;
        const double log_term = log_binomial_coefficient(opponents, j)
                                + static_cast<double>(j) * std::log1p(-std::min(h, 1.0 - 1e-300))
                                + static_cast<double>(opponents - j)
                                      * std::log(std::max(h, 1e-300));
        total += std::exp(log_term);
    }
    return std::clamp(total, 0.0, 1.0);
}

double win_probability(WinModel model, double h, std::size_t n, std::size_t k) {
    return model == WinModel::paper ? paper_win_probability(h, n, k)
                                    : exact_win_probability(h, n, k);
}

double log_binomial_coefficient(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("log_binomial_coefficient: k > n");
    return std::lgamma(static_cast<double>(n + 1)) - std::lgamma(static_cast<double>(k + 1))
           - std::lgamma(static_cast<double>(n - k + 1));
}

double psi_success_probability_paper(double psi, std::size_t n, std::size_t k) {
    check_nk(n + 1, k); // allow k == n here: selecting everyone is legal
    psi = std::clamp(psi, 0.0, 1.0);
    double total = 0.0;
    for (std::size_t i = 0; i + k <= n; ++i) {
        const double log_term = log_binomial_coefficient(i + k, i)
                                + static_cast<double>(i) * std::log(std::max(1.0 - psi, 1e-300))
                                + static_cast<double>(k) * std::log(std::max(psi, 1e-300));
        total += std::exp(log_term);
    }
    return total;
}

double psi_success_probability_negbinomial(double psi, std::size_t n, std::size_t k) {
    check_nk(n + 1, k);
    psi = std::clamp(psi, 0.0, 1.0);
    if (psi == 0.0) return 0.0;
    if (psi == 1.0) return 1.0;
    double total = 0.0;
    for (std::size_t i = 0; i + k <= n; ++i) {
        const double log_term = log_binomial_coefficient(i + k - 1, i)
                                + static_cast<double>(i) * std::log(1.0 - psi)
                                + static_cast<double>(k) * std::log(psi);
        total += std::exp(log_term);
    }
    return std::clamp(total, 0.0, 1.0);
}

} // namespace fmore::auction
