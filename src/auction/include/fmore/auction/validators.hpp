#pragma once

#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// Verdict of a randomized incentive-compatibility audit (paper Theorem 5).
struct IncentiveCompatibilityReport {
    std::size_t trials = 0;
    std::size_t violations = 0;
    double worst_violation = 0.0; // largest score gain from misreporting
    [[nodiscard]] bool holds() const { return violations == 0; }
};

/// Randomly perturb equilibrium bids into under-declared qualities
/// (qhat_j < q_j for at least one j, as in the theorem's statement) and
/// verify the score can only drop while the cost stays that of the truthful
/// provision. `trials` random (theta, perturbation) pairs.
IncentiveCompatibilityReport audit_incentive_compatibility(
    const EquilibriumStrategy& strategy, const ScoringRule& scoring,
    stats::Rng& rng, std::size_t trials = 256);

/// Social surplus of a winner set: sum_W [s(q_i) - c(q_i, theta_i)]
/// (paper Theorem 4). Pareto efficiency of FMore = no alternative quality
/// choice for any winner raises this sum.
double social_surplus(const ScoringRule& scoring, const CostModel& cost,
                      const std::vector<QualityVector>& winner_qualities,
                      const std::vector<double>& winner_thetas);

/// Verdict of a Pareto-efficiency audit: perturb each winner's equilibrium
/// quality in random directions and check the surplus never improves by more
/// than `tol`.
struct ParetoReport {
    std::size_t trials = 0;
    std::size_t improvements = 0;
    double best_improvement = 0.0;
    [[nodiscard]] bool holds() const { return improvements == 0; }
};

ParetoReport audit_pareto_efficiency(const EquilibriumStrategy& strategy,
                                     const ScoringRule& scoring, const CostModel& cost,
                                     const QualityVector& q_lo, const QualityVector& q_hi,
                                     stats::Rng& rng, std::size_t trials = 256,
                                     double tol = 1e-7);

/// Individual-rationality audit: equilibrium payment covers cost for every
/// grid type (pi >= 0, Section III.A(2)).
bool individual_rationality_holds(const EquilibriumStrategy& strategy,
                                  const CostModel& cost, std::size_t grid = 64,
                                  double tol = 1e-9);

/// Proposition 4 closed form: optimal quality mix under Cobb-Douglas
/// utility s = prod q_i^{alpha_i} and additive cost theta * sum beta_i q_i
/// with budget c0:  q_i* = alpha_i * c0 / (theta * beta_i * sum alpha).
std::vector<double> proposition4_optimal_qualities(const std::vector<double>& alphas,
                                                   const std::vector<double>& betas,
                                                   double theta, double budget);

} // namespace fmore::auction
