#pragma once

/// @file streaming_market.hpp
/// The auction as a long-lived service: bids arrive ONE AT A TIME on a
/// virtual clock instead of as a round batch, a running top-K is folded
/// incrementally — O(log K) per arrival in the same bounded-heap machinery
/// `rank_frame` uses, keyed by the same strict (score, tie key, node) total
/// order — and the round closes on deadline expiry OR quorum, whichever
/// fires first. The paper's aggregator "waits a given time interval" for
/// sealed bids (Section III.A step 2); this subsystem is that wait made
/// explicit, with the service-style close semantics of Cao et al.
/// (arXiv:2509.10512) and Le et al. (arXiv:2009.10269).
///
/// The load-bearing invariant: closing a streaming round emits winners,
/// payments and a ranking head BIT-IDENTICAL to the batch
/// `Mechanism::run_frame` over the same arrived set. Under
/// `TieBreak::salted` the tie salt is drawn when the round OPENS (the batch
/// path's first and only pre-selection draw, so the generator streams
/// align) and every arrival folds into the running head immediately; under
/// `TieBreak::shuffle` the coin-flip permutation is a function of the final
/// arrived set, so the close replays the batch pass over the arrived frame
/// — same draws, same order, same bits. Custom mechanisms (any type other
/// than the exact built-in engine) also close through `run_frame`, which
/// routes through their own overrides — the equivalence holds for EVERY
/// registered mechanism, not just the built-ins
/// (streaming_equivalence_test).

#include <cstdint>
#include <memory>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/shard_merge.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// Why a streaming round stopped accepting bids.
enum class CloseReason : std::uint8_t {
    open,       ///< still accepting bids
    quorum,     ///< the configured arrival quorum was reached
    deadline,   ///< a bid arrived past the deadline (closed at the deadline)
    exhausted,  ///< every expected bid arrived before either trigger
};

[[nodiscard]] const char* to_string(CloseReason reason);

/// Close policy of one streaming round. Zero disables a trigger; with both
/// disabled the round closes when `expected_bids` have arrived (or when the
/// caller closes it explicitly).
struct StreamingRoundSpec {
    /// Virtual-clock deadline in seconds. A bid whose arrival time is
    /// strictly later misses the round and closes it — the same "strictly
    /// later than the timeout" rule the sharded selector applies to slow
    /// shards.
    double deadline_s = 0.0;
    /// Close as soon as this many bids have arrived (`timing.min_updates`
    /// in spec terms: a quorum over ARRIVED BIDS, so it may legitimately
    /// exceed K).
    std::size_t quorum = 0;
    /// Number of bids that will be offered this round; 0 means one per
    /// frame row. Reaching it closes the round as `exhausted`.
    std::size_t expected_bids = 0;
    /// Capacity of the live provisional head kept for churn statistics;
    /// 0 derives K from the mechanism spec when the built-in engine is
    /// driving (otherwise churn tracking is off).
    std::size_t head_k = 0;
};

/// Long-lived ingestion service over one mechanism: open a round, offer
/// bids as they arrive, close on deadline/quorum/exhaustion. Internal
/// buffers (frame, candidate heaps, scratch) are reused across rounds, so a
/// steady-state round allocates nothing — the same discipline as the fused
/// batch path.
class StreamingMarket {
public:
    /// @throws std::invalid_argument on a null mechanism
    StreamingMarket(std::shared_ptr<const Mechanism> mechanism,
                    const ScoringRule& scoring);

    /// Start a round over a bid arena of `rows` node slots × `dims` quality
    /// dimensions. Under `TieBreak::salted` (built-in engine) this draws
    /// the round's tie salt from `rng` — exactly the one draw batch
    /// `rank_frame` makes before selection, so a streaming round and a
    /// batch round consume identical generator streams.
    void open_round(std::size_t rows, std::size_t dims,
                    const StreamingRoundSpec& spec, stats::Rng& rng);

    /// Offer one sealed bid at virtual time `arrival_s`. Returns true when
    /// the bid was accepted into the round; false when the round is already
    /// closed or the bid misses the deadline (which closes the round).
    /// Arrival times must be non-decreasing — the virtual clock only runs
    /// forward.
    /// @throws std::invalid_argument on an out-of-range node, a duplicate
    ///         bid for a node, or a clock that runs backwards
    bool offer(NodeId node, const double* quality, double payment, double score,
               double arrival_s);

    [[nodiscard]] bool closed() const { return reason_ != CloseReason::open; }
    [[nodiscard]] CloseReason close_reason() const { return reason_; }
    /// Bids accepted into the current round so far.
    [[nodiscard]] std::size_t arrived() const { return arrived_; }
    [[nodiscard]] std::size_t expected() const { return expected_; }
    /// Virtual time at which the round closed (deadline value for deadline
    /// closes, the closing bid's arrival time otherwise).
    [[nodiscard]] double close_time_s() const { return close_time_s_; }
    /// Evictions from the live provisional head after it first filled — how
    /// much the top-K actually moved during ingestion.
    [[nodiscard]] std::size_t head_churn() const { return head_churn_; }

    /// Finalize the round: selection and pricing over the arrived set,
    /// bit-identical to batch `Mechanism::run_frame` over the same frame.
    /// A still-open round is closed as `exhausted` first. Idempotent —
    /// calling again returns the finalized outcome without consuming `rng`.
    const AuctionOutcome& close_round(stats::Rng& rng);

    /// Sharded close: carve the ARRIVED frame into `shard_starts.size()`
    /// contiguous virtual shards (shard s covers rows
    /// `[shard_starts[s], shard_starts[s+1])`), collect each shard's
    /// bounded head and fold the heads through a `StreamingHeadMerge` —
    /// the exact composition the cross-process aggregator runs over its
    /// pipes. Bit-identical to `close_round` over the same arrived set:
    /// the salted lane's sort-and-truncate and the head merge cut the same
    /// strict total order at the same cutoff. Mechanisms outside the
    /// salted incremental lane (shuffle ties, custom types) fall back to
    /// `close_round`'s batch replay, which is already exact per mechanism.
    /// @throws std::invalid_argument on an empty or unsorted shard_starts,
    ///         or a first shard not starting at row 0
    const AuctionOutcome& close_round_sharded(
        stats::Rng& rng, const std::vector<std::size_t>& shard_starts);

    [[nodiscard]] const AuctionOutcome& outcome() const { return outcome_; }
    /// The arrived set as a frame (active rows = accepted bids).
    [[nodiscard]] const BidFrame& frame() const { return frame_; }
    [[nodiscard]] const Mechanism& mechanism() const { return *mechanism_; }

private:
    void track_head(const RankScratch::Candidate& cand);

    std::shared_ptr<const Mechanism> mechanism_;
    const ScoringRule& scoring_;
    /// Non-null only for the EXACT built-in engine type — the same
    /// dispatch rule `run_frame` uses, so subclass overrides are never
    /// bypassed.
    const ScoreAuctionMechanism* engine_ = nullptr;
    bool salted_incremental_ = false;

    BidFrame frame_;
    RankScratch scratch_;
    AuctionOutcome outcome_;

    StreamingRoundSpec round_;
    std::size_t expected_ = 0;
    std::size_t arrived_ = 0;
    CloseReason reason_ = CloseReason::exhausted;
    bool finalized_ = true;
    double close_time_s_ = 0.0;
    double last_arrival_s_ = 0.0;
    std::uint64_t tie_salt_ = 0;

    /// Candidate store of the salted incremental lane: unbounded when the
    /// spec needs the full board (full_ranking / psi scans), else a bounded
    /// max-heap of the best `cand_cap_` under the market order — O(log K)
    /// per arrival.
    std::vector<RankScratch::Candidate> cands_;
    std::size_t cand_cap_ = 0;

    /// Live provisional head for churn statistics (display only; the close
    /// recomputes nothing from it).
    std::vector<RankScratch::Candidate> head_;
    std::size_t head_cap_ = 0;
    std::size_t head_churn_ = 0;
};

/// Incremental twin of `merge_heads`: feed shard heads ONE AT A TIME as
/// their streams complete and fold each into a bounded coordinator heap of
/// at most `cutoff` rows — O(log cutoff) per head row, with the head rows'
/// quality vectors parked in a slot-reusing arena. `finish` emits a ranking
/// bit-identical to `merge_heads` over the same heads: both truncate the
/// same strict total order at the same cut. This is how the sharded market
/// gets streaming close for free — each `ShardHead` stream feeds the merge
/// as it lands instead of waiting for the full set.
class StreamingHeadMerge {
public:
    /// Start a merge round: `cutoff` is the global ranking cutoff, `dims`
    /// the quality dimensionality of the incoming heads.
    void open(std::size_t dims, std::size_t cutoff);

    /// Fold one shard's head into the running merge.
    /// @throws std::invalid_argument on a dimensionality mismatch
    void ingest(const ShardHead& head);

    /// Fold ONE head row (with its `dims`-wide quality vector) into the
    /// running merge — the row-granular feed the cross-process streaming
    /// round uses as head chunks land on the wire. The kept set is the
    /// global top-`cutoff` under the strict total order, so any ingestion
    /// order (row-by-row, chunked, whole heads, interleaved across shards)
    /// finishes bit-identically.
    void ingest_row(const HeadRow& row, const double* quality);

    /// Heads ingested so far this round (`ingest` calls; `ingest_row` does
    /// not bump this — callers count their own streams).
    [[nodiscard]] std::size_t ingested() const { return ingested_; }

    /// Sort the surviving rows under the market order and materialize the
    /// merged ranking — bit-identical to `merge_heads(heads, cutoff, ...)`
    /// over the same ingested heads.
    void finish(std::vector<ScoredBid>& ranking);

private:
    struct Slot {
        HeadRow row;
        std::uint32_t arena = 0;  ///< index of this row's quality vector
    };

    std::size_t dims_ = 0;
    std::size_t cutoff_ = 0;
    std::size_t ingested_ = 0;
    std::vector<Slot> heap_;
    std::vector<double> arena_;          ///< cutoff × dims, slot-reused
    std::vector<std::uint32_t> free_;    ///< arena slots open for reuse
};

} // namespace fmore::auction
