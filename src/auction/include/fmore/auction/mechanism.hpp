#pragma once

/// @file mechanism.hpp
/// The open winner-determination seam: an abstract Mechanism (rank /
/// select / price over sealed bids) plus a string-keyed factory registry.
/// The paper's auction and its extensions (second-score payments, psi-FMore
/// probabilistic acceptance, the budget-feasible prefix rule) ship as
/// registered mechanisms; new variants — reserve prices, wireless-cellular
/// pricing (Le et al., arXiv:2009.10269) — plug in from any translation
/// unit via MechanismRegistry without touching this library.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// How exactly-tied scores are broken (the paper's "flip of a coin",
/// Section V.A). Both modes are fair coin flips; they differ in how the
/// flip is materialized and what that costs at scale:
///  - `shuffle` (the historical default): one Fisher-Yates shuffle of the
///    active bids per round; a bid's tie-break key is its shuffled
///    position. Exact, but inherently GLOBAL — every ranking site must see
///    the same O(N) permutation.
///  - `salted`: ONE generator draw per round (the tie salt); a bid's key is
///    the counter-derived hash of (salt, NodeId). Position-independent, so
///    S shards — in other threads, processes or machines — derive
///    identical keys from the 8-byte salt alone. This is what the
///    multi-process shard aggregator ships instead of a permutation.
/// Winners differ between the modes only where scores tie exactly; within
/// a mode every path (vector, fused frame, sharded) is bit-identical.
enum class TieBreak : std::uint8_t {
    shuffle,
    salted,
};

/// Parameter bag every registered mechanism is constructed from (the former
/// `WinnerDeterminationConfig`, which is now an alias of this type).
/// A mechanism reads the knobs it cares about and ignores the rest, so one
/// spec can drive any registry entry.
struct MechanismSpec {
    /// Registry key of the mechanism to build ("first_score",
    /// "second_score", "psi_fmore", "budget_feasible", or any custom
    /// registration). Empty = derive from the legacy knobs below, which is
    /// what keeps pre-registry call sites bit-identical
    /// (see `resolve_mechanism_name`).
    std::string mechanism;
    std::size_t num_winners = 20;  ///< K
    PaymentRule payment_rule = PaymentRule::first_price;
    /// psi-FMore acceptance probability. 1.0 reproduces plain FMore: nodes
    /// in descending score order are accepted deterministically. For
    /// psi < 1 each node is accepted with probability psi; scanning repeats
    /// over the remaining nodes until K are chosen (the construction behind
    /// the paper's Pr(psi) formula), so the winner set always reaches
    /// min(K, #bids) nodes.
    double psi = 1.0;
    /// Optional per-node acceptance probabilities, indexed by NodeId; when
    /// non-empty it overrides `psi` for listed nodes and every bidder's
    /// NodeId must be within range (out-of-range ids throw instead of
    /// silently falling back). The paper's conclusion leaves "whether the
    /// probability psi should be identical or distinct for each node" open —
    /// this knob implements the distinct variant.
    std::vector<double> psi_per_node;
    /// Safety valve for tiny psi: after this many full passes the remaining
    /// slots are filled deterministically in score order.
    std::size_t max_psi_passes = 64;
    /// Aggregator budget B (extension; the paper's conclusion lists the
    /// budget constraint as future work). Winners are admitted in selection
    /// order only while the running payment total stays within B; 0 means
    /// unconstrained. Applies to the payments of the configured rule.
    double budget = 0.0;
    /// When true (the default) `rank` returns every bid in exact descending
    /// order — the Fig. 8 score board. When false the mechanism may stop
    /// ordering after the entries winner selection needs (top K, plus the
    /// best loser under second-score payments), an O(N log K) partial sort
    /// instead of O(N log N); the winner set is bit-identical either way.
    bool full_ranking = true;
    /// Coin-flip materialization for tied scores; `salted` makes the
    /// tie-break position-independent (see TieBreak), which the
    /// multi-process shard aggregator requires. Honoured by the built-in
    /// score-auction engine; custom mechanisms may ignore it.
    TieBreak tie_break = TieBreak::shuffle;
    /// Async-aware pricing (the "latency_discounted" registry entry):
    /// rank by S(q, p) - latency_discount * expected_latency_s[node], so a
    /// bid that will take longer to come back is worth less to the
    /// aggregator — the streaming marketplace's equilibrium-bid discount.
    /// 0 ranks on the undiscounted score; the plain score engine ignores
    /// both knobs.
    double latency_discount = 0.0;
    /// Expected per-node bid latency in seconds, indexed by NodeId (e.g.
    /// `mec::ClusterTimeModel::latency_factor` times the auction overhead).
    /// Nodes past the end of the table read as zero latency, so a partial
    /// table discounts only the nodes it covers.
    std::vector<double> expected_latency_s;
};

/// Abstract auction mechanism: how sealed bids become a ranking, a winner
/// set and payments. `run` is the template driver WinnerDetermination (and
/// anything else) calls; override the three stages independently or replace
/// `run` wholesale for mechanisms that do not decompose this way.
class Mechanism {
public:
    virtual ~Mechanism() = default;

    /// Registry key / display name of this mechanism.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Order bids by descending score (coin-flip ties).
    [[nodiscard]] virtual std::vector<ScoredBid> rank(const ScoringRule& scoring,
                                                      const std::vector<Bid>& bids,
                                                      stats::Rng& rng) const = 0;

    /// Flat fast path of `rank`: score the frame's active rows and write
    /// the descending head into `head` — everything `select`/`price` need
    /// (the complete board when `full_ranking` or a psi scan demands it,
    /// else the top K(+1) segment). The contract is equivalence: winners
    /// and payments downstream are bit-identical to materializing the
    /// active rows with `BidFrame::to_bids` and calling `rank`, which is
    /// exactly what this default adapter does, so custom mechanisms work
    /// on frame-collected rounds unmodified. `ScoreAuctionMechanism`
    /// overrides it with a fused score + top-K pass that never builds the
    /// bid list: per-worker bounded heaps over parallel chunks, merged and
    /// sorted by (score desc, shuffled position asc) — a strict total
    /// order, so the result is identical no matter how chunks land on
    /// workers. `scratch` and `head` are caller-owned and reused; after
    /// the first round the override allocates nothing.
    virtual void rank_frame(const ScoringRule& scoring, const BidFrame& frame,
                            stats::Rng& rng, RankScratch& scratch,
                            std::vector<ScoredBid>& head) const;

    /// Indices (into the ranking) of the selected winners, in selection
    /// order.
    [[nodiscard]] virtual std::vector<std::size_t>
    select(const std::vector<ScoredBid>& ranking, stats::Rng& rng) const = 0;

    /// Turn selected ranking entries into priced winners (may admit fewer
    /// than selected, e.g. under a budget).
    [[nodiscard]] virtual std::vector<Winner>
    price(const ScoringRule& scoring, const std::vector<ScoredBid>& ranking,
          const std::vector<std::size_t>& chosen) const = 0;

    /// Buffer-reusing twins of `select`/`price` for allocation-free round
    /// loops: results land in the caller-owned vectors (capacity reused
    /// across rounds). Defaults delegate to the returning versions, so
    /// custom mechanisms stay correct; the built-in engine overrides them
    /// to write in place.
    virtual void select_into(const std::vector<ScoredBid>& ranking, stats::Rng& rng,
                             std::vector<std::size_t>& chosen) const {
        chosen = select(ranking, rng);
    }
    virtual void price_into(const ScoringRule& scoring,
                            const std::vector<ScoredBid>& ranking,
                            const std::vector<std::size_t>& chosen,
                            std::vector<Winner>& winners) const {
        winners = price(scoring, ranking, chosen);
    }

    /// rank -> select -> price. Virtual so a mechanism with entangled
    /// stages can take over the whole round.
    [[nodiscard]] virtual AuctionOutcome run(const ScoringRule& scoring,
                                             const std::vector<Bid>& bids,
                                             stats::Rng& rng) const;

    /// Frame twin of `run`, writing into a caller-reused outcome. The
    /// default materializes the active rows and calls `run`, so a custom
    /// mechanism keeps its EXACT semantics on frame-collected rounds —
    /// including one that overrides `run` wholesale to entangle its
    /// stages. The built-in engine overrides this with the allocation-free
    /// rank_frame -> select_into -> price_into composition.
    virtual void run_frame(const ScoringRule& scoring, const BidFrame& frame,
                           stats::Rng& rng, RankScratch& scratch,
                           AuctionOutcome& outcome) const {
        frame.to_bids(scratch.bids);
        outcome = run(scoring, scratch.bids, rng);
    }
};

/// The configurable score-auction family behind all four built-in registry
/// entries: descending-score ranking with coin-flip ties (Section V.A),
/// top-K or psi-probabilistic selection (Section III.C), first- or
/// second-score payments and the budget-feasible prefix rule. Custom
/// mechanisms that only tweak one stage can subclass this instead of
/// Mechanism and inherit the rest.
class ScoreAuctionMechanism : public Mechanism {
public:
    /// Validates the spec: K >= 1; psi and every psi_per_node entry finite
    /// and in (0, 1]; budget finite and >= 0.
    /// @throws std::invalid_argument with the offending knob spelled out
    explicit ScoreAuctionMechanism(MechanismSpec spec, std::string name = {});

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::vector<ScoredBid> rank(const ScoringRule& scoring,
                                              const std::vector<Bid>& bids,
                                              stats::Rng& rng) const override;
    void rank_frame(const ScoringRule& scoring, const BidFrame& frame, stats::Rng& rng,
                    RankScratch& scratch, std::vector<ScoredBid>& head) const override;
    [[nodiscard]] std::vector<std::size_t>
    select(const std::vector<ScoredBid>& ranking, stats::Rng& rng) const override;
    [[nodiscard]] std::vector<Winner>
    price(const ScoringRule& scoring, const std::vector<ScoredBid>& ranking,
          const std::vector<std::size_t>& chosen) const override;
    void select_into(const std::vector<ScoredBid>& ranking, stats::Rng& rng,
                     std::vector<std::size_t>& chosen) const override;
    void price_into(const ScoringRule& scoring, const std::vector<ScoredBid>& ranking,
                    const std::vector<std::size_t>& chosen,
                    std::vector<Winner>& winners) const override;
    void run_frame(const ScoringRule& scoring, const BidFrame& frame, stats::Rng& rng,
                   RankScratch& scratch, AuctionOutcome& outcome) const override;

    [[nodiscard]] const MechanismSpec& spec() const { return spec_; }

    /// How much of the descending board this spec's selection actually
    /// needs out of `active` bids: everything when `full_ranking` or a psi
    /// scan walks the whole board, else top K (+1 for the second-score
    /// best-loser). Shared by `rank`, `rank_frame` AND the sharded
    /// coordinator — one rule, so merged shard heads truncate at exactly
    /// the monolithic cut.
    [[nodiscard]] std::size_t ranking_cutoff(std::size_t active) const;

protected:
    /// Payment of one winner under the configured rule (first-score pays
    /// the ask; second-score pays s(q) - best losing score, floored at the
    /// ask for individual rationality).
    [[nodiscard]] double payment_for(const ScoringRule& scoring,
                                     const std::vector<ScoredBid>& ranking,
                                     std::size_t winner_rank,
                                     double best_losing_score) const;

    MechanismSpec spec_;
    std::string name_;
};

/// Builds a Mechanism from a spec.
using MechanismFactory = std::function<std::unique_ptr<Mechanism>(const MechanismSpec&)>;

/// Process-wide string-keyed mechanism factory registry. The four paper
/// mechanisms are registered on first use; libraries, benches and tests add
/// their own with `add` — no core edits required. All methods are
/// thread-safe.
class MechanismRegistry {
public:
    [[nodiscard]] static MechanismRegistry& instance();

    /// Register `factory` under `name`.
    /// @throws std::invalid_argument if the name is empty or already taken
    ///         (use `replace` to overwrite deliberately)
    void add(const std::string& name, MechanismFactory factory);
    /// Register or overwrite without the duplicate check.
    void replace(const std::string& name, MechanismFactory factory);
    /// Remove a registration (no-op when absent); built-ins come back on
    /// the next registry restart only, so tests should re-add what they
    /// remove.
    void remove(const std::string& name);

    [[nodiscard]] bool contains(const std::string& name) const;
    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Instantiate the mechanism registered under `name`.
    /// @throws std::invalid_argument for unknown names, listing what is
    ///         registered so the typo is obvious
    [[nodiscard]] std::unique_ptr<Mechanism> create(const std::string& name,
                                                    const MechanismSpec& spec) const;

private:
    MechanismRegistry();
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// The registry key the legacy knobs imply, in extension-priority order:
/// latency_discount > 0 -> "latency_discounted"; budget > 0 ->
/// "budget_feasible"; psi < 1 or per-node psi -> "psi_fmore"; second-score
/// payments -> "second_score"; else "first_score". Each built-in honours
/// *all* spec knobs (they are views onto the same configurable engine), so
/// combined knobs keep composing exactly as before the registry existed.
[[nodiscard]] std::string resolve_mechanism_name(const MechanismSpec& spec);

/// One-call construction: `spec.mechanism` when set, otherwise
/// `resolve_mechanism_name(spec)`, resolved through the registry.
[[nodiscard]] std::unique_ptr<Mechanism> make_mechanism(const MechanismSpec& spec);

} // namespace fmore::auction
