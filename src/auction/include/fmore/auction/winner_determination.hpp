#pragma once

/// @file winner_determination.hpp
/// The aggregator's side of one auction round (paper Section III.A step 3
/// and Algorithm 1 lines 7-9): rank sealed bids by score with coin-flip
/// ties, select K winners — optionally with psi-FMore probabilistic
/// acceptance or a payment budget — and assign first- or second-score
/// payments.

#include <vector>

#include "fmore/auction/scoring.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// Winner-determination configuration (paper Section III.A step 3 and the
/// psi-FMore extension of Section III.C).
struct WinnerDeterminationConfig {
    std::size_t num_winners = 20;  ///< K
    PaymentRule payment_rule = PaymentRule::first_price;
    /// psi-FMore acceptance probability. 1.0 reproduces plain FMore: nodes
    /// in descending score order are accepted deterministically. For
    /// psi < 1 each node is accepted with probability psi; scanning repeats
    /// over the remaining nodes until K are chosen (the construction behind
    /// the paper's Pr(psi) formula), so the winner set always reaches
    /// min(K, #bids) nodes.
    double psi = 1.0;
    /// Optional per-node acceptance probabilities, indexed by NodeId; when
    /// non-empty it overrides `psi` for listed nodes. The paper's
    /// conclusion leaves "whether the probability psi should be identical
    /// or distinct for each node" open — this knob implements the distinct
    /// variant (measured in bench/ablation_auction).
    std::vector<double> psi_per_node;
    /// Safety valve for tiny psi: after this many full passes the remaining
    /// slots are filled deterministically in score order.
    std::size_t max_psi_passes = 64;
    /// Aggregator budget B (extension; the paper's conclusion lists the
    /// budget constraint as future work). Winners are admitted in selection
    /// order only while the running payment total stays within B; 0 means
    /// unconstrained. Applies to the payments of the configured rule.
    double budget = 0.0;
};

/// Sorts scored bids, breaks ties with a coin flip ("Ties are resolved by
/// the flip of a coin", Section V.A), selects winners and assigns payments.
class WinnerDetermination {
public:
    WinnerDetermination(const ScoringRule& scoring, WinnerDeterminationConfig config);

    /// Run one determination round over the collected sealed bids.
    /// Fewer than K bids simply yields fewer winners (the aggregator's timer
    /// expired with a short bid pool).
    /// @param bids the sealed bids collected this round
    /// @param rng  randomness source for coin-flip ties and psi acceptance
    /// @return winners in selection order plus the full descending-score
    ///         ranking (Fig. 8 input)
    [[nodiscard]] AuctionOutcome run(const std::vector<Bid>& bids, stats::Rng& rng) const;

    [[nodiscard]] const WinnerDeterminationConfig& config() const { return config_; }

private:
    /// Descending-score ranking with randomized tie order.
    [[nodiscard]] std::vector<ScoredBid> rank(const std::vector<Bid>& bids,
                                              stats::Rng& rng) const;
    /// Indices (into the ranking) of the selected winners.
    [[nodiscard]] std::vector<std::size_t> select(const std::vector<ScoredBid>& ranking,
                                                  stats::Rng& rng) const;
    [[nodiscard]] double payment_for(const std::vector<ScoredBid>& ranking,
                                     std::size_t winner_rank,
                                     double best_losing_score) const;

    const ScoringRule& scoring_;
    WinnerDeterminationConfig config_;
};

} // namespace fmore::auction
