#pragma once

/// @file winner_determination.hpp
/// The aggregator's side of one auction round (paper Section III.A step 3
/// and Algorithm 1 lines 7-9), as a thin driver over the pluggable
/// `Mechanism` seam (mechanism.hpp): rank sealed bids by score with
/// coin-flip ties, select K winners and assign payments. The paper's
/// behaviors — first-/second-score payments, psi-FMore probabilistic
/// acceptance, the payment-budget extension — are registered mechanisms
/// resolved from the config's knobs.

#include <memory>
#include <vector>

#include "fmore/auction/mechanism.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// Winner-determination configuration (paper Section III.A step 3 and the
/// psi-FMore extension of Section III.C). Alias of the mechanism parameter
/// bag: set `mechanism` to pick a registry entry by name, or leave it empty
/// to derive the mechanism from the legacy knobs exactly as before the
/// registry existed.
using WinnerDeterminationConfig = MechanismSpec;

/// Drives one `Mechanism` over the collected sealed bids. Construction
/// resolves the mechanism through `MechanismRegistry` (or accepts one
/// directly), so new auction variants plug in without touching this class.
class WinnerDetermination {
public:
    /// Resolve the mechanism from `config` (explicit `config.mechanism`
    /// name, else derived from the knobs — see `resolve_mechanism_name`).
    /// @throws std::invalid_argument on invalid knobs or an unknown name
    WinnerDetermination(const ScoringRule& scoring, WinnerDeterminationConfig config);

    /// Drive a caller-supplied mechanism (e.g. a custom registration or a
    /// hand-built instance); `config()` reports the spec it was given.
    WinnerDetermination(const ScoringRule& scoring, WinnerDeterminationConfig config,
                        std::shared_ptr<const Mechanism> mechanism);

    /// Run one determination round over the collected sealed bids.
    /// Fewer than K bids simply yields fewer winners (the aggregator's timer
    /// expired with a short bid pool).
    /// @param bids the sealed bids collected this round
    /// @param rng  randomness source for coin-flip ties and psi acceptance
    /// @return winners in selection order plus the descending-score ranking
    ///         (complete by default — the Fig. 8 input; truncated to the
    ///         top K(+1) when `config.full_ranking` is false)
    [[nodiscard]] AuctionOutcome run(const std::vector<Bid>& bids, stats::Rng& rng) const;

    /// Frame-based twin of `run` (the allocation-light path), routed
    /// through `Mechanism::run_frame` over caller-owned scratch. Winners,
    /// payments and the recorded ranking are bit-identical to `run` on
    /// `BidFrame::to_bids` of the same frame — for custom mechanisms the
    /// default run_frame adapter literally IS that call.
    [[nodiscard]] AuctionOutcome run_frame(const BidFrame& frame, stats::Rng& rng,
                                           RankScratch& scratch) const;

    [[nodiscard]] const WinnerDeterminationConfig& config() const { return config_; }
    [[nodiscard]] const Mechanism& mechanism() const { return *mechanism_; }

private:
    const ScoringRule& scoring_;
    WinnerDeterminationConfig config_;
    std::shared_ptr<const Mechanism> mechanism_;
};

} // namespace fmore::auction
