#pragma once

#include <vector>

#include "fmore/auction/equilibrium.hpp"
#include "fmore/auction/winner_determination.hpp"

namespace fmore::auction {

/// A complete one-round sealed-bid game over a population of N bidders:
/// types are drawn i.i.d. from the theta distribution, every bidder plays
/// the symmetric Nash-equilibrium strategy, and the aggregator picks K
/// winners. This is the analytic engine behind the paper's Figs. 9(b) and
/// 10(b) (payment / score versus N and K).
struct GameResult {
    AuctionOutcome outcome;
    std::vector<double> thetas;          ///< drawn types, index = NodeId
    double mean_winner_payment = 0.0;
    double mean_winner_score = 0.0;
    double aggregator_profit = 0.0;      ///< V = sum_W (U(q) - p), with U = s
    double social_surplus = 0.0;         ///< sum_W (s(q) - c(q, theta))
};

class AuctionGame {
public:
    /// The scoring rule doubles as the aggregator's utility (U = s), the
    /// Pareto-efficient configuration of the paper's Theorem 4.
    AuctionGame(const ScoringRule& scoring, const CostModel& cost,
                const stats::Distribution& theta_dist, QualityVector q_lo,
                QualityVector q_hi, EquilibriumConfig eq_config,
                WinnerDeterminationConfig wd_config);

    /// Draw a fresh population and run one auction round.
    [[nodiscard]] GameResult play(stats::Rng& rng,
                                  PaymentMethod method = PaymentMethod::integral) const;

    /// Run a round with caller-supplied types (for controlled experiments).
    [[nodiscard]] GameResult play_with_types(const std::vector<double>& thetas,
                                             stats::Rng& rng,
                                             PaymentMethod method
                                             = PaymentMethod::integral) const;

    [[nodiscard]] const EquilibriumStrategy& strategy() const { return strategy_; }

private:
    const ScoringRule& scoring_;
    const CostModel& cost_;
    const stats::Distribution& theta_dist_;
    EquilibriumStrategy strategy_;
    WinnerDetermination determination_;
    std::size_t num_bidders_;
};

} // namespace fmore::auction
