#pragma once

/// @file shard_merge.hpp
/// The shard seam of the auction market: bounded per-shard ranking heads
/// and their deterministic merge. A market of N bidders split into S
/// contiguous shards runs the fused score+top-K pass per shard and ships
/// only each shard's HEAD — at most `cutoff` rows of
/// (node, score, key, payment) plus the head rows' quality vectors — to
/// the coordinator. Because every shard orders candidates under the SAME
/// strict total order the monolithic pass uses (score desc, tie key asc,
/// node asc), the union of per-shard heads provably contains the global
/// top `cutoff`, and `merge_heads` — concatenate, sort under that order,
/// truncate — reproduces the monolithic ranking head bit-identically.
///
/// Tie keys come in the two `TieBreak` flavours: a pointer into the
/// coordinator's global shuffled-position table (`TieBreak::shuffle`, the
/// in-process sharded lane) or an 8-byte round salt hashed with the global
/// NodeId (`TieBreak::salted`, what the multi-process aggregator ships
/// over its pipes instead of an O(N) permutation).

#include <cstdint>
#include <vector>

#include "fmore/auction/bid_frame.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::auction {

/// One ranked row of a shard head. `node` is the GLOBAL id — shards report
/// in market coordinates, so heads from different shards merge directly.
struct HeadRow {
    NodeId node = 0;
    double score = 0.0;
    std::uint64_t key = 0;  ///< tie-break key under the round's TieBreak mode
    double payment = 0.0;   ///< the bid's asked payment
};

/// Strict total order of the market: (score desc, key asc, node asc).
/// Identical to `RankScratch::Candidate` ordering — the bit-identity
/// contract between sharded and monolithic ranking.
[[nodiscard]] inline bool head_row_better(const HeadRow& a, const HeadRow& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.key != b.key) return a.key < b.key;
    return a.node < b.node;
}

/// A shard's contribution to one round: its top rows under the market
/// order plus those rows' declared quality vectors (row-major, `dims`
/// doubles per head row — needed to materialize winners' bids and the
/// contracted data volume). This is the ONLY per-round payload a shard
/// ships; its size is bounded by the ranking cutoff, not the shard size.
struct ShardHead {
    std::size_t dims = 0;
    std::vector<HeadRow> rows;     ///< sorted best-first
    std::vector<double> quality;   ///< rows.size() × dims, row-major

    void clear() {
        dims = 0;
        rows.clear();
        quality.clear();
    }
    [[nodiscard]] const double* quality_row(std::size_t r) const {
        return quality.data() + r * dims;
    }

    /// Append the wire form to `out`: row count, dims, the HeadRow array,
    /// the quality buffer — fixed-width little-endian fields, no padding
    /// assumptions. `deserialize` round-trips exactly.
    void serialize(std::vector<std::uint8_t>& out) const;
    /// @throws std::invalid_argument on truncated or inconsistent bytes
    [[nodiscard]] static ShardHead deserialize(const std::uint8_t* data,
                                               std::size_t size);
};

/// How a shard derives a row's tie-break key from its GLOBAL node id.
/// Shuffle mode points into the coordinator's inverse-permutation table
/// (valid for the current round only); salted mode needs just the 8-byte
/// round salt.
struct TieKeys {
    const std::uint32_t* pos = nullptr;  ///< global node id -> shuffled position
    std::uint64_t salt = 0;
    bool salted = false;

    [[nodiscard]] std::uint64_t key(NodeId global_node) const {
        return salted ? stats::derive_stream_seed(salt, global_node) : pos[global_node];
    }
};

/// Fused score + bounded top-`limit` pass over one shard's collected
/// frame (local rows, `frame.scored()` required): the shard-side half of
/// the market. Writes at most `limit` rows into `out`, sorted best-first
/// under the market order, nodes translated to global ids via
/// `node_offset`. `limit` must be the GLOBAL ranking cutoff (or the shard
/// active count if smaller): any row in the global top-cutoff is in its
/// own shard's top-cutoff, so the union of such heads always contains the
/// global head.
/// @throws std::logic_error when the frame's score column is not filled
void collect_shard_head(const BidFrame& frame, std::size_t node_offset,
                        const TieKeys& keys, std::size_t limit, ShardHead& out);

/// Row-range variant: the shard is rows `[begin_row, end_row)` of a frame
/// that holds the WHOLE market (the in-process sharded-streaming lane,
/// where one arrived frame is carved into virtual shards). Global ids are
/// `node_offset + row` exactly as above, so the two overloads produce the
/// same head for the same rows.
void collect_shard_head(const BidFrame& frame, std::size_t begin_row,
                        std::size_t end_row, std::size_t node_offset,
                        const TieKeys& keys, std::size_t limit, ShardHead& out);

/// Coordinator-side merge: concatenate the heads, sort under the market
/// order, truncate to `cutoff`, and materialize the ranking. Bit-identical
/// to the monolithic fused ranking head when every shard reported (see
/// collect_shard_head's containment argument); with dropped shards it is
/// the exact market over the responsive ones.
void merge_heads(const std::vector<ShardHead>& heads, std::size_t cutoff,
                 std::vector<ScoredBid>& ranking);

} // namespace fmore::auction
