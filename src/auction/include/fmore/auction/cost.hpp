#pragma once

#include <vector>

#include "fmore/auction/types.hpp"

namespace fmore::auction {

/// Private cost function c(q, theta) of an edge node.
///
/// Section III.A(2): the cost is increasing in each quality dimension and
/// satisfies the single-crossing conditions c_qq >= 0, c_q_theta > 0 and
/// c_qq_theta >= 0 ("the marginal cost increases with the parameter theta").
/// Those conditions make the type-to-surplus map monotone, which is what the
/// equilibrium construction relies on.
class CostModel {
public:
    virtual ~CostModel() = default;

    /// c(q, theta).
    [[nodiscard]] virtual double cost(const QualityVector& q, double theta) const = 0;

    /// c(q, theta) over a contiguous span of `n` doubles — the
    /// allocation-free fast path of the flat bid pipeline. The default
    /// copies into a reused thread-local scratch and calls `cost`; the
    /// built-in families override it. Bit-identical to `cost` on an equal
    /// vector by contract.
    [[nodiscard]] virtual double cost_span(const double* q, std::size_t n,
                                           double theta) const;

    /// dc/dtheta at (q, theta); needed by Che's closed-form payments.
    [[nodiscard]] virtual double cost_theta_derivative(const QualityVector& q,
                                                       double theta) const = 0;

    [[nodiscard]] virtual std::size_t dimensions() const = 0;
};

/// Additive cost c(q, theta) = theta * sum_i beta_i q_i — the family used in
/// the paper's Proposition 4 and throughout our simulations.
class AdditiveCost final : public CostModel {
public:
    explicit AdditiveCost(std::vector<double> betas);

    [[nodiscard]] double cost(const QualityVector& q, double theta) const override;
    [[nodiscard]] double cost_span(const double* q, std::size_t n,
                                   double theta) const override;
    [[nodiscard]] double cost_theta_derivative(const QualityVector& q,
                                               double theta) const override;
    [[nodiscard]] std::size_t dimensions() const override { return betas_.size(); }
    [[nodiscard]] const std::vector<double>& betas() const { return betas_; }

private:
    std::vector<double> betas_;
};

/// Convex cost c(q, theta) = theta * sum_i beta_i q_i^2; strictly convex in
/// q, giving interior quality optima under additive scoring (the additive
/// cost gives corner solutions there). Used in tests and ablations.
class QuadraticCost final : public CostModel {
public:
    explicit QuadraticCost(std::vector<double> betas);

    [[nodiscard]] double cost(const QualityVector& q, double theta) const override;
    [[nodiscard]] double cost_theta_derivative(const QualityVector& q,
                                               double theta) const override;
    [[nodiscard]] std::size_t dimensions() const override { return betas_.size(); }

private:
    std::vector<double> betas_;
};

/// Power cost c(q, theta) = theta * sum_i beta_i q_i^{gamma} with gamma >= 1.
class PowerCost final : public CostModel {
public:
    PowerCost(std::vector<double> betas, double gamma);

    [[nodiscard]] double cost(const QualityVector& q, double theta) const override;
    [[nodiscard]] double cost_theta_derivative(const QualityVector& q,
                                               double theta) const override;
    [[nodiscard]] std::size_t dimensions() const override { return betas_.size(); }
    [[nodiscard]] double gamma() const { return gamma_; }

private:
    std::vector<double> betas_;
    double gamma_;
};

/// Report of a numeric single-crossing check on a sample grid.
struct SingleCrossingReport {
    bool cost_increasing_in_quality = true; // c_q >= 0
    bool convex_in_quality = true;          // c_qq >= 0
    bool marginal_increasing_in_theta = true; // c_q_theta > 0
    bool curvature_increasing_in_theta = true; // c_qq_theta >= 0
    [[nodiscard]] bool all_hold() const {
        return cost_increasing_in_quality && convex_in_quality
               && marginal_increasing_in_theta && curvature_increasing_in_theta;
    }
};

/// Finite-difference check of the paper's single-crossing assumptions over a
/// quality box and theta interval. `samples` grid points per axis.
SingleCrossingReport check_single_crossing(const CostModel& cost,
                                           const QualityVector& q_lo,
                                           const QualityVector& q_hi, double theta_lo,
                                           double theta_hi, std::size_t samples = 8);

} // namespace fmore::auction
