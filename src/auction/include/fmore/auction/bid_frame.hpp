#pragma once

/// @file bid_frame.hpp
/// The flat, reusable arena of one round's sealed bids. At million-node
/// scale the classic `std::vector<Bid>` round costs two heap allocations
/// per bidder per round (one QualityVector per bid, again per ScoredBid);
/// a `BidFrame` instead keeps all N×d declared qualities in one contiguous
/// buffer and all N asked payments in another, both reused across rounds —
/// after the first round the bid-collection path performs zero steady-state
/// allocations. Row index == NodeId, so population stores write bids
/// straight into their row; an `active` flag per row replaces skip-by-
/// omission (blacklisted nodes stay addressable but never rank).
///
/// `to_bids` / `from_bids` adapt between the frame and the classic bid
/// list, which keeps every `Mechanism` — including custom registrations
/// that only implement the vector API — usable on frame-collected rounds.

#include <cstdint>
#include <vector>

#include "fmore/auction/types.hpp"

namespace fmore::auction {

class BidFrame {
public:
    BidFrame() = default;
    BidFrame(std::size_t rows, std::size_t dims) { reset(rows, dims); }

    /// Size the arena for `rows` bidders of `dims` quality dimensions and
    /// mark every row active. Buffers grow but never shrink, so a frame
    /// reused across rounds reaches an allocation-free steady state.
    /// Quality/payment cells are left as-is: the collect pass overwrites
    /// every active row and inactive rows are never read.
    void reset(std::size_t rows, std::size_t dims);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t dims() const { return dims_; }

    [[nodiscard]] double* quality_row(NodeId node) {
        return quality_.data() + node * dims_;
    }
    [[nodiscard]] const double* quality_row(NodeId node) const {
        return quality_.data() + node * dims_;
    }
    [[nodiscard]] double& payment(NodeId node) { return payment_[node]; }
    [[nodiscard]] double payment(NodeId node) const { return payment_[node]; }

    void set_active(NodeId node, bool active) { active_[node] = active ? 1 : 0; }
    [[nodiscard]] bool active(NodeId node) const { return active_[node] != 0; }
    /// Number of active rows (O(rows) scan).
    [[nodiscard]] std::size_t active_count() const;

    /// Optional aggregator score column S(q, p), filled by a collector that
    /// already has each row's quality in registers (the fully fused
    /// pipeline). When present (`scored()`), `Mechanism::rank_frame` streams
    /// this column instead of re-reading N×d qualities in ranking order.
    /// Values must equal `ScoringRule::score_span` on the row — same
    /// arithmetic, so downstream results are bit-identical either way.
    [[nodiscard]] double& score(NodeId node) { return score_[node]; }
    [[nodiscard]] double score(NodeId node) const { return score_[node]; }
    void set_scored(bool scored) { scored_ = scored; }
    [[nodiscard]] bool scored() const { return scored_; }

    /// Materialize the active rows, in node order, as classic sealed bids.
    /// `out` is reused: element QualityVectors keep their capacity, so
    /// repeated calls over a same-shape frame do not allocate.
    void to_bids(std::vector<Bid>& out) const;

    /// Load a classic bid list: rows = max NodeId + 1, rows without a bid
    /// inactive. Round-trips with `to_bids` exactly.
    /// @throws std::invalid_argument on inconsistent quality dimensions or
    ///         duplicate NodeIds
    void from_bids(const std::vector<Bid>& bids);

private:
    std::size_t rows_ = 0;
    std::size_t dims_ = 0;
    std::vector<double> quality_;  ///< rows × dims, row-major
    std::vector<double> payment_;  ///< rows
    std::vector<double> score_;    ///< rows; meaningful only when scored_
    std::vector<std::uint8_t> active_;
    bool scored_ = false;
};

/// Reusable working memory of `Mechanism::rank_frame`. Owned by the
/// caller (one per selector), so repeated rounds touch no allocator.
struct RankScratch {
    /// One ranking candidate: the bid's score, its coin-flip tie-break key
    /// (the shuffled scan position, or a salt-derived per-node hash in
    /// `TieBreak::salted` mode) and the row it names. Ordering is the
    /// strict total order (score desc, key asc, node asc) — in shuffle
    /// mode keys are unique so the node clause never fires, in salted mode
    /// it breaks the measure-zero hash collision.
    struct Candidate {
        double score = 0.0;
        std::uint64_t key = 0;
        NodeId node = 0;
    };

    std::vector<std::size_t> active;   ///< active rows in ascending node order
    std::vector<std::size_t> order;    ///< the same rows, coin-flip shuffled
    std::vector<std::uint32_t> pos;    ///< row id -> shuffled position
    std::vector<Candidate> slot_cands; ///< per-worker bounded heaps, flat
    std::vector<std::size_t> slot_size;
    std::vector<Candidate> merged;
    std::vector<std::size_t> chosen;   ///< selected ranking indices
    std::vector<Bid> bids;             ///< vector-API adapter buffer
};

} // namespace fmore::auction
