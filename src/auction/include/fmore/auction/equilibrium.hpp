#pragma once

/// @file equilibrium.hpp
/// The expected-utility Nash equilibrium of the first-score sealed-bid
/// auction (paper Theorem 1, built on Che 1993): EquilibriumSolver
/// tabulates the symmetric strategy t^ne(theta) = (q^s, p^s) that every
/// rational edge node follows; EquilibriumStrategy is the queryable result.

#include <cstdint>
#include <memory>
#include <vector>

#include "fmore/auction/cost.hpp"
#include "fmore/auction/scoring.hpp"
#include "fmore/auction/types.hpp"
#include "fmore/auction/win_probability.hpp"
#include "fmore/numeric/interpolation.hpp"
#include "fmore/stats/distributions.hpp"

namespace fmore::auction {

/// How the equilibrium payment p^s(theta) is computed from the tabulated
/// win-probability curve g(u).
///
/// * `integral`  — the closed form of the paper's Theorem 1:
///       p = c(q^s, theta) + (integral_{u_min}^{u} g(x) dx) / g(u)
///   evaluated with cumulative trapezoid quadrature. Robust everywhere,
///   used as the reference.
/// * `euler_ode` — the paper's prescription (Eqs. 12-14): explicit Euler on
///   the markup ODE m'(u) = 1 - m(u) g'(u)/g(u), m(u_min) = 0. The ODE is
///   stiff in the boundary layer near u_min where g -> 0 (g'/g diverges), so
///   the integrator seeds m from the integral form at the first grid point
///   where the explicit step is stable and integrates upward from there.
/// * `rk4_ode`   — same ODE with classic Runge-Kutta 4, also named by the
///   paper ("the Runge-Kutte method"); ablation material.
enum class PaymentMethod : std::uint8_t {
    integral,
    euler_ode,
    rk4_ode,
};

/// Tuning knobs for the solver.
struct EquilibriumConfig {
    std::size_t num_bidders = 100;  ///< N — total competing edge nodes
    std::size_t num_winners = 20;   ///< K — winner-set size (K < N)
    WinModel win_model = WinModel::paper;
    std::size_t theta_grid_points = 129;  ///< tabulation grid over [theta_lo, theta_hi]
    std::size_t score_grid_points = 512;  ///< u-grid for g(u) quadrature / ODE
    std::size_t quality_grid_points = 48; ///< per-dim grid for argmax s(q)-c(q,theta)
};

/// The solved Nash-equilibrium bidding strategy t^ne(theta) = (q^s, p^s)
/// shared by all (i.i.d.) bidders — the object an edge node queries before
/// submitting its sealed bid.
///
/// All curves are tabulated on the solver's theta grid and linearly
/// interpolated; queries outside [theta_lo, theta_hi] clamp.
class EquilibriumStrategy {
public:
    /// q^s(theta) = argmax_q s(q) - c(q, theta)   (Che Theorem 1 / Eq. 7).
    [[nodiscard]] QualityVector quality(double theta) const;

    /// u0(theta) = s(q^s) - c(q^s, theta): the maximum achievable score
    /// ("surplus") of a type-theta bidder. Decreasing in theta.
    [[nodiscard]] double max_surplus(double theta) const;

    /// Equilibrium payment p^s(theta) (paper Eq. 8) under `method`.
    [[nodiscard]] double payment(double theta,
                                 PaymentMethod method = PaymentMethod::integral) const;

    /// The sealed bid a type-theta node submits.
    [[nodiscard]] Bid bid(NodeId node, double theta,
                          PaymentMethod method = PaymentMethod::integral) const;

    /// Expected profit pi(theta) = (p - c) * g(u0) = integral_{u_min}^{u0} g.
    /// Theorems 2 and 3 describe its monotonicity in N and K.
    [[nodiscard]] double expected_profit(double theta) const;

    /// Win probability g(u0(theta)) of a type-theta bidder.
    [[nodiscard]] double win_probability_at(double theta) const;

    /// CDF H(x) of an opponent's maximum score (H(x) = 1 - F(u0^{-1}(x))).
    [[nodiscard]] double score_cdf(double u) const;

    /// Equilibrium markup (p - c) at an arbitrary achievable score u; lets a
    /// resource-capped node price a constrained bid: the shading rule b(u)
    /// depends only on the achieved score, not on how it was achieved.
    [[nodiscard]] double markup_at_score(double u,
                                         PaymentMethod method = PaymentMethod::integral) const;

    /// Payment for an arbitrary (possibly capped) quality choice:
    /// p = c(q, theta) + markup(s(q) - c(q, theta)).
    [[nodiscard]] double payment_for(const QualityVector& q, double theta,
                                     PaymentMethod method = PaymentMethod::integral) const;

    /// Allocation-free bid computation for the flat `BidFrame` pipeline:
    /// write q^s(theta) into `out` (dimensions() doubles). Bit-identical to
    /// `quality`.
    void quality_into(double theta, double* out) const;

    /// `payment_for` over a span — bit-identical to the vector overload.
    [[nodiscard]] double payment_for_span(const double* q, std::size_t n, double theta,
                                          PaymentMethod method
                                          = PaymentMethod::integral) const;

    /// One sealed quote: the equilibrium payment plus the s(q) evaluated on
    /// the way (each bit-identical to the individual calls). The fused
    /// collector prices the bid AND scores it from one pass over q.
    struct SealedQuote {
        double payment = 0.0;
        double quality_score = 0.0;
    };
    [[nodiscard]] SealedQuote quote_span(const double* q, std::size_t n, double theta,
                                         PaymentMethod method
                                         = PaymentMethod::integral) const;

    /// The scoring rule this strategy was solved against (never null for a
    /// solver-produced strategy). Callers that maintain their own broadcast
    /// rule can check identity before reusing quote_span's s(q) as the
    /// aggregator score.
    [[nodiscard]] const ScoringRule* scoring_rule() const { return scoring_; }

    [[nodiscard]] double theta_lo() const { return theta_lo_; }
    [[nodiscard]] double theta_hi() const { return theta_hi_; }
    [[nodiscard]] double score_lo() const { return u_min_; }
    [[nodiscard]] double score_hi() const { return u_max_; }
    [[nodiscard]] std::size_t num_bidders() const { return num_bidders_; }
    [[nodiscard]] std::size_t num_winners() const { return num_winners_; }
    [[nodiscard]] std::size_t dimensions() const { return quality_curves_.size(); }

private:
    friend class EquilibriumSolver;
    EquilibriumStrategy() = default;

    [[nodiscard]] const numeric::LinearInterpolator&
    markup_curve(PaymentMethod method) const;

    const ScoringRule* scoring_ = nullptr;
    const CostModel* cost_ = nullptr;
    double theta_lo_ = 0.0;
    double theta_hi_ = 0.0;
    double u_min_ = 0.0;
    double u_max_ = 0.0;
    std::size_t num_bidders_ = 0;
    std::size_t num_winners_ = 0;
    bool degenerate_ = false; // all types share one score; zero markup
    // theta-indexed tables
    std::vector<std::unique_ptr<numeric::LinearInterpolator>> quality_curves_;
    std::unique_ptr<numeric::LinearInterpolator> surplus_curve_;   // theta -> u0
    std::unique_ptr<numeric::LinearInterpolator> score_cdf_curve_; // u -> H(u)
    // u-indexed tables
    std::unique_ptr<numeric::LinearInterpolator> win_prob_curve_;       // u -> g
    std::unique_ptr<numeric::LinearInterpolator> profit_curve_;         // u -> I=∫g
    std::unique_ptr<numeric::LinearInterpolator> markup_integral_;      // u -> I/g
    std::unique_ptr<numeric::LinearInterpolator> markup_euler_;
    std::unique_ptr<numeric::LinearInterpolator> markup_rk4_;
};

/// Computes the symmetric Nash equilibrium of the first-score sealed-bid
/// multi-dimensional procurement auction with K winners (paper Theorem 1,
/// built on Che 1993). The references passed in must outlive the solver and
/// any strategy it produces.
class EquilibriumSolver {
public:
    /// @param scoring    the broadcast scoring rule s(q)
    /// @param cost       the bidders' common cost model c(q, theta)
    /// @param theta_dist distribution F of the private type theta
    /// @param q_lo       per-dimension lower bounds of feasible quality
    /// @param q_hi       per-dimension upper bounds (same length as q_lo)
    /// @param config     grid sizes, N, K and the win-probability model
    EquilibriumSolver(const ScoringRule& scoring, const CostModel& cost,
                      const stats::Distribution& theta_dist, QualityVector q_lo,
                      QualityVector q_hi, EquilibriumConfig config);

    /// Tabulate the full strategy. O(theta_grid * quality_grid * dims)
    /// for the quality step plus O(score_grid) for payments — the linear
    /// time the paper claims for a bidder.
    [[nodiscard]] EquilibriumStrategy solve() const;

    /// Che's Theorem 2 closed form for K = 1 (validation):
    /// p = c + int_theta^theta_hi c_theta(q^s(t), t) [(1-F(t))/(1-F(theta))]^{N-1} dt
    [[nodiscard]] double payment_che_closed_form(double theta, std::size_t exponent) const;

    [[nodiscard]] const EquilibriumConfig& config() const { return config_; }

private:
    struct QualityTable {
        std::vector<double> thetas;
        std::vector<QualityVector> qualities;
        std::vector<double> surpluses; // u0, made non-increasing
    };
    [[nodiscard]] QualityTable tabulate_qualities() const;
    [[nodiscard]] QualityVector best_quality(double theta) const;

    const ScoringRule& scoring_;
    const CostModel& cost_;
    const stats::Distribution& theta_dist_;
    QualityVector q_lo_;
    QualityVector q_hi_;
    EquilibriumConfig config_;
};

} // namespace fmore::auction
