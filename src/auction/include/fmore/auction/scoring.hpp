#pragma once

/// @file scoring.hpp
/// The aggregator's scoring rules S(q, p) = s(q) - p (paper Eq. 4) in the
/// four utility families named by the paper: additive (perfect
/// substitutes), Leontief (perfect complements), Cobb-Douglas, and the
/// simulator's scaled product alpha * q1 * q2.

#include <memory>
#include <vector>

#include "fmore/auction/types.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::auction {

/// Quasi-linear scoring rule S(q, p) = s(q) - p (paper Eq. 4).
///
/// The aggregator broadcasts this rule in the bid-ask step; bidders use the
/// quality part s(q) when computing their Nash-equilibrium strategy and the
/// aggregator uses the full score for winner determination.
///
/// Each concrete rule optionally min-max-normalizes every quality dimension
/// before applying the utility form, matching the walk-through example
/// (Section III.B), where data size and bandwidth are normalized to [0, 1].
class ScoringRule {
public:
    virtual ~ScoringRule() = default;

    /// s(q): the quality part of the score.
    /// @param q declared quality vector; must have exactly dimensions()
    ///          entries with every dimension non-negative
    /// @return the aggregator's valuation of q, before subtracting payment
    /// @throws std::invalid_argument on a dimension-count mismatch
    /// @throws std::domain_error on negative qualities
    [[nodiscard]] virtual double quality_score(const QualityVector& q) const = 0;

    /// S(q, p) = s(q) - p.
    /// @param q declared quality vector
    /// @param payment the payment p asked by the bidder
    /// @return the full score used for winner determination
    [[nodiscard]] double score(const QualityVector& q, double payment) const {
        return quality_score(q) - payment;
    }
    /// @overload
    [[nodiscard]] double score(const Bid& bid) const {
        return score(bid.quality, bid.payment);
    }

    /// s(q) over a contiguous span of `n` doubles — the allocation-free
    /// fast path the flat `BidFrame` pipeline scores rows through. The
    /// default copies into a reused thread-local scratch vector and calls
    /// `quality_score`, so custom rules stay correct (and allocation-free
    /// after warm-up) without overriding anything; the built-in families
    /// override it to compute straight off the span. Results are
    /// bit-identical to `quality_score` on an equal vector by contract.
    [[nodiscard]] virtual double quality_score_span(const double* q, std::size_t n) const;

    /// S(q, p) over a span (see quality_score_span).
    [[nodiscard]] double score_span(const double* q, std::size_t n, double payment) const {
        return quality_score_span(q, n) - payment;
    }

    /// Number of quality dimensions this rule expects.
    [[nodiscard]] virtual std::size_t dimensions() const = 0;
};

/// Per-dimension coefficients plus optional normalizers shared by the
/// concrete families below.
class WeightedScoringBase : public ScoringRule {
public:
    /// `coefficients` are the alpha_i of the paper; `normalizers`, if
    /// non-empty, must have the same length and are applied per dimension.
    WeightedScoringBase(std::vector<double> coefficients,
                        std::vector<stats::MinMaxNormalizer> normalizers = {});

    [[nodiscard]] std::size_t dimensions() const override { return coefficients_.size(); }
    [[nodiscard]] const std::vector<double>& coefficients() const { return coefficients_; }

protected:
    /// Quality in dimension d after normalization (identity if none given).
    [[nodiscard]] double normalized(const QualityVector& q, std::size_t d) const;
    void check_dims(const QualityVector& q) const;

    std::vector<double> coefficients_;
    std::vector<stats::MinMaxNormalizer> normalizers_;
};

/// Perfect-substitution utility: s(q) = sum_i alpha_i q_i. "The additive
/// form is preferred to perfect substitution resources such as GPU and CPU"
/// (Section III.A). Also the form used in the paper's real-world experiment
/// (0.4 q1 + 0.3 q2 + 0.3 q3).
class AdditiveScoring final : public WeightedScoringBase {
public:
    using WeightedScoringBase::WeightedScoringBase;
    [[nodiscard]] double quality_score(const QualityVector& q) const override;
    [[nodiscard]] double quality_score_span(const double* q, std::size_t n) const override;
};

/// Perfect-complementary (Leontief) utility: s(q) = min_i alpha_i q_i;
/// "the best choice for scenarios where both bandwidth and computing power
/// are considered simultaneously" (Section III.A). Used by the paper's
/// walk-through example with alpha = (0.5, 0.5).
class LeontiefScoring final : public WeightedScoringBase {
public:
    using WeightedScoringBase::WeightedScoringBase;
    [[nodiscard]] double quality_score(const QualityVector& q) const override;
    [[nodiscard]] double quality_score_span(const double* q, std::size_t n) const override;
};

/// General Cobb-Douglas utility: s(q) = prod_i q_i^{alpha_i}. The paper's
/// Proposition 4 gives the aggregator's resource-proportion guidance under
/// this family.
class CobbDouglasScoring final : public WeightedScoringBase {
public:
    using WeightedScoringBase::WeightedScoringBase;
    [[nodiscard]] double quality_score(const QualityVector& q) const override;
    [[nodiscard]] double quality_score_span(const double* q, std::size_t n) const override;
};

/// Scaled product utility s(q) = alpha * q_1 * q_2 * ... * q_m; the exact
/// form used by the paper's simulator ("S(q1,q2,p) = alpha q1 q2 - p ...
/// alpha is set to 25", Section V.A).
class ScaledProductScoring final : public ScoringRule {
public:
    ScaledProductScoring(double alpha, std::size_t dims,
                         std::vector<stats::MinMaxNormalizer> normalizers = {});

    [[nodiscard]] double quality_score(const QualityVector& q) const override;
    [[nodiscard]] double quality_score_span(const double* q, std::size_t n) const override;
    [[nodiscard]] std::size_t dimensions() const override { return dims_; }
    [[nodiscard]] double alpha() const { return alpha_; }

private:
    double alpha_;
    std::size_t dims_;
    std::vector<stats::MinMaxNormalizer> normalizers_;
};

} // namespace fmore::auction
