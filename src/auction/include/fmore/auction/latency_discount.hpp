#pragma once

/// @file latency_discount.hpp
/// The async-aware pricing rule of the streaming marketplace: equilibrium
/// bids are ranked by their score DISCOUNTED by expected return latency,
/// S'(q, p) = S(q, p) - lambda * E[latency_node]. A node whose update will
/// come back late is worth less to an aggregator closing rounds on a
/// deadline — the utility trade-off the paper's wall-clock experiments
/// (Section V.C) surface and the semi-sync/async rounds of the timing layer
/// act on. Registered as the "latency_discounted" mechanism; selection and
/// payment stages (top-K / psi, first-/second-score, budget prefix) are
/// inherited unchanged, so the discount composes with every other spec
/// knob. Under second-score payments the winner pays against the best
/// losing DISCOUNTED score: the clearing price already nets out the
/// latency penalty.

#include <vector>

#include "fmore/auction/mechanism.hpp"

namespace fmore::auction {

/// Score-auction engine whose ranking stage subtracts
/// `spec.latency_discount * spec.expected_latency_s[node]` from each bid's
/// score before ordering (missing table entries read as zero latency).
/// A distinct type from the base engine, so the fused frame lanes route it
/// through the vector adapter and the override is never bypassed.
class LatencyDiscountedMechanism final : public ScoreAuctionMechanism {
public:
    /// Validates the base spec plus: latency_discount finite and >= 0,
    /// every expected_latency_s entry finite and >= 0.
    /// @throws std::invalid_argument with the offending knob spelled out
    explicit LatencyDiscountedMechanism(MechanismSpec spec);

    [[nodiscard]] std::vector<ScoredBid> rank(const ScoringRule& scoring,
                                              const std::vector<Bid>& bids,
                                              stats::Rng& rng) const override;

    /// The discounted score of one bid under this spec.
    [[nodiscard]] double discounted_score(const ScoringRule& scoring,
                                          const Bid& bid) const;

private:
    [[nodiscard]] double latency_of(NodeId node) const {
        return node < spec_.expected_latency_s.size() ? spec_.expected_latency_s[node]
                                                      : 0.0;
    }
};

} // namespace fmore::auction
