#pragma once

/// @file types.hpp
/// Vocabulary types of the multi-dimensional procurement auction
/// (paper Section III.A): bids, scored bids, winners, payment rules and the
/// outcome of one winner-determination round. Every other auction header
/// builds on these.

#include <cstdint>
#include <string>
#include <vector>

namespace fmore::auction {

/// Identifier of a bidder (edge node) within one auction round.
using NodeId = std::size_t;

/// Multi-dimensional resource quality vector q = (q_1, ..., q_m).
///
/// The paper's resources "include local data, computation capability,
/// bandwidth, CPU cycle, etc." (Section III.A). Dimensions are positional;
/// the scoring rule and cost model agree on the layout.
using QualityVector = std::vector<double>;

/// A sealed bid (q, p): declared qualities plus the expected payment
/// (Section III.A step 2).
struct Bid {
    NodeId node = 0;        ///< bidder submitting this bid
    QualityVector quality;  ///< declared resource vector q
    double payment = 0.0;   ///< asked payment p
};

/// A bid annotated with the aggregator's score S(q, p) = s(q) - p.
struct ScoredBid {
    Bid bid;
    double score = 0.0;
};

/// Payment rule for winners. The paper supports both and uses first-price
/// ("We use the first-price auction for simplicity", Section III.A step 3).
/// Second price follows Che's second-score auction: each winner is paid the
/// amount that would bring its score down to the best losing score.
enum class PaymentRule : std::uint8_t {
    first_price,
    second_price,
};

/// One auction winner with the final payment owed by the aggregator.
struct Winner {
    NodeId node = 0;      ///< winning bidder
    double score = 0.0;   ///< score its bid achieved
    double payment = 0.0; ///< payment under the configured PaymentRule
};

/// Result of a winner-determination round.
struct AuctionOutcome {
    std::vector<Winner> winners;     ///< in selection order (best score first)
    std::vector<ScoredBid> ranking;  ///< all bids, descending score
};

} // namespace fmore::auction
