#pragma once

#include <cstddef>

namespace fmore::auction {

/// Which win-probability formula g(u) the equilibrium solver uses.
///
/// `paper` is Eq. (9) of FMore:
///     g(u) = sum_{i=1..K} [1 - H(u)]^{i-1} [H(u)]^{N-i}
/// which omits the combinatorial coefficients of the exact order-statistic
/// probability. It coincides with Che's K=1 form (H^{N-1}) and collapses to
/// H^{N-2} at K=2, matching the paper's Proposition 1.
///
/// `exact` is the true probability that fewer than K of the N-1 opponents
/// exceed the bidder's score:
///     g(u) = sum_{j=0..K-1} C(N-1, j) [1 - H(u)]^j [H(u)]^{N-1-j}
///
/// Both are monotone increasing in H; the bench `ablation_auction` measures
/// the payment difference the choice induces.
enum class WinModel {
    paper,
    exact,
};

/// Paper Eq. (9). `h` is H(u) in [0,1]; `n` total bidders; `k` winners
/// (1 <= k < n).
double paper_win_probability(double h, std::size_t n, std::size_t k);

/// Exact binomial tail: probability that at most k-1 of n-1 i.i.d. opponent
/// scores exceed the bidder's (opponent above with probability 1-h).
double exact_win_probability(double h, std::size_t n, std::size_t k);

/// Dispatch on `model`.
double win_probability(WinModel model, double h, std::size_t n, std::size_t k);

/// log C(n, k) via lgamma; exact enough for n in the tens of thousands.
double log_binomial_coefficient(std::size_t n, std::size_t k);

/// The paper's Pr(psi) for psi-FMore (Section III.C):
///     Pr(psi) = sum_{i=0..N-K} C(i+K, i) (1-psi)^i psi^K
/// as printed in the paper. Note this is NOT a normalized probability: the
/// standard negative-binomial tail uses C(i+K-1, i) (see below). We expose
/// both so tests/benches can quantify the discrepancy.
double psi_success_probability_paper(double psi, std::size_t n, std::size_t k);

/// Negative-binomial form: probability that scanning nodes in score order,
/// each accepted independently with probability psi, collects K winners
/// within the first N nodes:
///     Pr = sum_{i=0..N-K} C(i+K-1, i) (1-psi)^i psi^K
double psi_success_probability_negbinomial(double psi, std::size_t n, std::size_t k);

} // namespace fmore::auction
