#pragma once

/// @file fault_injector.hpp
/// Deterministic, seed-driven fault-plan engine for the sharded market.
/// A plan maps (shard, round) to at most one fault event; both the
/// in-process virtual-latency clock (`ShardedAuctionSelector`) and the
/// fork-per-shard `ProcessShardAggregator` consult the SAME plan, so any
/// failure scenario — crashes, stalls, corrupt frames, slow replies — is
/// bit-replayable from a spec string.
///
/// Plans come in two forms:
///  - explicit events (tests): `FaultInjector::from_events({...})` fires
///    exactly the listed faults;
///  - seeded rates (benches, presets): `FaultInjector::from_spec(
///    "seed=7,crash=0.02,stall=0.01,stall_s=2")` draws one uniform per
///    (shard, round) from a counter-derived stream — no draw order, no
///    shared state, so a forked worker and the aggregator agree on every
///    event without communicating.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fmore::util {

/// What a shard worker does wrong, at most once per (shard, round).
enum class FaultKind : std::uint8_t {
    none = 0,
    crash_before_reply,  ///< worker exits without answering (EOF upstream)
    stall,               ///< sleeps `seconds` before replying (deadline miss)
    truncated_write,     ///< reply frame carries fewer bytes than it hashes
    bit_flip,            ///< one payload bit flipped; checksum must catch it
    delayed_reply,       ///< sleeps `seconds`, then replies normally
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault: shard `shard` misbehaves in (1-based) `round`.
struct FaultEvent {
    std::size_t shard = 0;
    std::size_t round = 0;
    FaultKind kind = FaultKind::none;
    double seconds = 0.0;  ///< stall / delayed_reply duration
};

class FaultInjector {
public:
    /// The empty plan: no faults, ever.
    FaultInjector() = default;

    /// Fire exactly the listed events (first match wins on duplicates).
    [[nodiscard]] static FaultInjector from_events(std::vector<FaultEvent> events);

    /// Parse a seeded rate plan. Comma-separated key=value pairs:
    ///   seed=<u64>      stream seed (default 0)
    ///   crash=<p>       P(crash_before_reply) per shard-round
    ///   stall=<p>       P(stall)
    ///   truncate=<p>    P(truncated_write)
    ///   corrupt=<p>     P(bit_flip)
    ///   delay=<p>       P(delayed_reply)
    ///   stall_s=<sec>   stall duration (default 10)
    ///   delay_s=<sec>   delayed-reply duration (default 0.05)
    /// Probabilities must lie in [0, 1] and sum to at most 1.
    ///
    /// Coordinator-kill faults (the durable-run harness) take a *round*,
    /// not a probability — the crash schedule must be exactly replayable:
    ///   ckill=<R>       SIGKILL the coordinator right after round R's
    ///                   checkpoint is durably on disk
    ///   ckill_mid=<R>   SIGKILL the coordinator *during* round R's
    ///                   checkpoint write (torn .tmp on disk, previous
    ///                   checkpoint intact)
    /// Both kills are ONE-SHOT: a resumed run (which may re-execute round
    /// R — a mid-write kill tears the checkpoint before it lands) never
    /// re-arms them, so crash recovery converges instead of crash-looping.
    /// @throws std::invalid_argument on unknown keys or out-of-range values
    [[nodiscard]] static FaultInjector from_spec(const std::string& spec);

    [[nodiscard]] bool empty() const;
    /// True when the plan schedules any *shard* fault (crash/stall/
    /// truncate/corrupt/delay, seeded or explicit). A coordinator-kill-only
    /// plan returns false — it needs no sharded market to fire.
    [[nodiscard]] bool has_shard_faults() const;
    /// Normalized spec string (round-trips through `from_spec`); empty for
    /// event plans and the empty plan.
    [[nodiscard]] const std::string& spec() const { return spec_; }

    /// Round after whose checkpoint the coordinator SIGKILLs itself
    /// (0 = never).
    [[nodiscard]] std::size_t coordinator_kill_round() const { return ckill_round_; }
    /// Round whose checkpoint *write* is interrupted by SIGKILL (0 = never).
    [[nodiscard]] std::size_t coordinator_kill_mid_write_round() const {
        return ckill_mid_round_;
    }

    /// The fault shard `shard` commits in round `round` (kind == none for
    /// a clean shard-round). Pure: depends only on the plan and the
    /// arguments, never on call order — the replayability contract.
    [[nodiscard]] FaultEvent event(std::size_t shard, std::size_t round) const;

    /// The plan as a virtual-latency model for the in-process sharded
    /// selector: crash never answers (+inf), stall and delayed_reply take
    /// `base_latency_s + seconds`, wire-only faults (truncate, bit_flip)
    /// have no in-process analogue and answer at `base_latency_s`.
    [[nodiscard]] std::function<double(std::size_t, std::size_t)>
    latency_model(double base_latency_s = 0.0) const;

private:
    std::vector<FaultEvent> events_;
    std::string spec_;
    bool seeded_ = false;
    std::uint64_t seed_ = 0;
    double p_crash_ = 0.0;
    double p_stall_ = 0.0;
    double p_truncate_ = 0.0;
    double p_bit_flip_ = 0.0;
    double p_delay_ = 0.0;
    double stall_s_ = 10.0;
    double delay_s_ = 0.05;
    std::size_t ckill_round_ = 0;
    std::size_t ckill_mid_round_ = 0;
};

} // namespace fmore::util
