#pragma once

/// @file snapshot.hpp
/// Versioned, CRC-checksummed binary container for run checkpoints.
///
/// The durable-run subsystem (docs/ARCHITECTURE.md, "Durability model")
/// persists everything a run needs to continue — population columns, salt
/// history, bans, model weights, the metrics tape — into a single file per
/// checkpoint. The format is deliberately dumb: a fixed header followed by
/// tagged sections, every byte of which is covered by a CRC32 (the same
/// polynomial discipline as the shard wire protocol in
/// `mec/wire_format.hpp`, restated here because util sits below mec in the
/// layer order). A torn write, a truncated prefix, or a single flipped bit
/// anywhere in the file fails a checksum or a bounds check and raises
/// `SnapshotError` with the offending path and section — a checkpoint is
/// either consumed whole or rejected whole, never half-loaded.
///
/// Writes are atomic: the file is assembled in memory, written to
/// `<path>.tmp`, fsync'd, renamed over `<path>`, and the directory is
/// fsync'd. A crash at any point leaves either the previous file or a
/// `.tmp` that readers never look at.
///
/// File layout (all integers little-endian):
///
///   u32 magic 'FMSN' | u32 version | u32 section_count | u32 header_crc
///   per section:
///     u32 tag | u64 payload_size | u32 payload_crc | u32 section_header_crc
///     payload bytes
///
/// `header_crc` covers the 12 bytes before it; `section_header_crc` covers
/// the 16 bytes before it; `payload_crc` covers the payload. Trailing bytes
/// after the last section are an error (they would mean a size/count
/// mismatch slipped through).

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace fmore::util {

/// Every snapshot failure — I/O, truncation, corruption, type mismatch —
/// surfaces as this, with a message naming the file and section involved.
class SnapshotError : public std::runtime_error {
public:
    explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected) over a byte range. Matches the checksum
/// the shard wire protocol uses, so the two subsystems share one notion of
/// "this frame is intact".
[[nodiscard]] std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian encoder for section payloads. Strings and
/// vectors are length-prefixed; floats go through memcpy so the bit
/// pattern — not a decimal rendering — is what round-trips.
class ByteWriter {
public:
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    void put_f32(float v);
    void put_f64(double v);
    void put_str(const std::string& s);
    void put_f32_vec(const std::vector<float>& v);
    void put_f64_vec(const std::vector<double>& v);
    void put_u64_vec(const std::vector<std::uint64_t>& v);

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder for section payloads. Every read that would run
/// past the end throws `SnapshotError` naming `context` — truncation is a
/// diagnosis, not a crash.
class ByteReader {
public:
    ByteReader(const std::uint8_t* data, std::size_t size, std::string context)
        : data_(data), size_(size), context_(std::move(context)) {}

    [[nodiscard]] std::uint32_t get_u32();
    [[nodiscard]] std::uint64_t get_u64();
    [[nodiscard]] float get_f32();
    [[nodiscard]] double get_f64();
    [[nodiscard]] std::string get_str();
    [[nodiscard]] std::vector<float> get_f32_vec();
    [[nodiscard]] std::vector<double> get_f64_vec();
    [[nodiscard]] std::vector<std::uint64_t> get_u64_vec();

    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
    /// Throws unless every payload byte was consumed — a half-read section
    /// means the writer and reader disagree on the schema.
    void expect_end() const;

private:
    void need(std::size_t n, const char* what) const;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string context_;
};

/// Assembles a snapshot file from tagged sections and writes it atomically.
class SnapshotWriter {
public:
    /// Add one section. Tags must be unique within a file.
    void add_section(std::uint32_t tag, std::vector<std::uint8_t> payload);

    /// Serialize the whole file to bytes (header + sections).
    [[nodiscard]] std::vector<std::uint8_t> serialize() const;

    /// Atomic write: `<path>.tmp` + fsync + rename + directory fsync.
    /// `mid_write`, when set, runs after roughly half the bytes hit the
    /// temp file and before the rename — the crash-recovery harness uses it
    /// to SIGKILL the process mid-checkpoint and prove the torn `.tmp`
    /// never shadows the previous good checkpoint.
    void write_file(const std::string& path,
                    const std::function<void()>& mid_write = nullptr) const;

    static constexpr std::uint32_t kMagic = 0x4E534D46u; // 'FMSN' little-endian
    static constexpr std::uint32_t kVersion = 1;

private:
    struct Section {
        std::uint32_t tag;
        std::vector<std::uint8_t> payload;
    };
    std::vector<Section> sections_;
};

/// Parses and fully validates a snapshot file: magic, version, all three
/// CRC tiers, section sizes against the file size, duplicate tags,
/// trailing bytes. Construction succeeds only for an intact file.
class SnapshotReader {
public:
    [[nodiscard]] static SnapshotReader from_file(const std::string& path);
    [[nodiscard]] static SnapshotReader from_bytes(std::vector<std::uint8_t> bytes,
                                                   const std::string& context);

    [[nodiscard]] bool has_section(std::uint32_t tag) const {
        return sections_.count(tag) != 0;
    }
    /// @throws SnapshotError when the tag is absent
    [[nodiscard]] const std::vector<std::uint8_t>& section(std::uint32_t tag) const;
    /// Bounds-checked reader over one section's payload.
    [[nodiscard]] ByteReader open_section(std::uint32_t tag) const;
    [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
    [[nodiscard]] const std::string& context() const { return context_; }

private:
    SnapshotReader() = default;
    void parse(const std::vector<std::uint8_t>& bytes);

    std::map<std::uint32_t, std::vector<std::uint8_t>> sections_;
    std::string context_;
};

} // namespace fmore::util
