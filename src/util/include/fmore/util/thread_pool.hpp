#pragma once

/// @file thread_pool.hpp
/// The process-wide execution substrate behind every level of parallelism
/// in the repo. Two pieces:
///
///  - `ThreadBudget` — one global accounting of how many worker threads the
///    process may run at once (`FMORE_THREADS` override, else the hardware
///    concurrency). The trial runner (`core/trials.*`) and the round-level
///    parallelism in `fl::Coordinator` both lease workers from it, which is
///    what keeps nested parallelism (trials x clients) from oversubscribing
///    the machine: when the trial level has claimed every slot, rounds run
///    serial, and vice versa.
///
///  - `ThreadPool` — a shared task-queue pool whose `parallel_for` always
///    has the *calling* thread participate, so progress is guaranteed even
///    when every pool worker is busy with someone else's batch (several
///    trial workers can drive round-level loops through the one shared pool
///    concurrently without deadlock).
///
/// Thread counts never influence results anywhere in the repo: work is
/// claimed dynamically but written into index-addressed slots and reduced
/// in a fixed order, so outputs are bit-identical from 1 thread to N.

#include <cstddef>
#include <functional>
#include <memory>

namespace fmore::util {

/// Total worker-thread budget of this process: the `FMORE_THREADS`
/// environment variable when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()`; always >= 1. Read once and
/// cached.
[[nodiscard]] std::size_t thread_budget();

/// Process-wide ledger of claimed worker threads. Levels that spawn or
/// occupy workers (the trial runner, the round-level client loop) register
/// their claim here so sibling and nested levels can size themselves from
/// what is actually left.
class ThreadBudget {
public:
    [[nodiscard]] static ThreadBudget& instance();

    /// Total budget (== `thread_budget()`).
    [[nodiscard]] std::size_t total() const;

    /// Workers currently claimed across the process (may transiently exceed
    /// `total()` when a caller insists via an explicit override).
    [[nodiscard]] std::size_t claimed() const;

    /// Budget still unclaimed, floored at 0.
    [[nodiscard]] std::size_t available() const;

    /// Claim up to `want` workers; returns how many were granted
    /// (`min(want, available())`, atomically). Pair with `release`.
    [[nodiscard]] std::size_t try_claim(std::size_t want);

    /// Claim exactly `count` workers even if that overdraws the budget —
    /// used for explicit user overrides (FMORE_TRIAL_THREADS /
    /// FMORE_ROUND_THREADS), which must be honoured but still visible to
    /// the auto-sizing of other levels.
    void claim_exact(std::size_t count);

    void release(std::size_t count);

    /// True when the calling thread is itself one of the budget's counted
    /// workers (it runs inside a `CountedThreadScope`, e.g. a trial-runner
    /// worker). Nested levels use this to decide whether the caller still
    /// needs a slot of its own.
    [[nodiscard]] static bool current_thread_counted();

private:
    ThreadBudget() = default;
    struct Impl;
    [[nodiscard]] Impl& impl() const;
};

/// RAII lease of worker threads from the global budget.
class ThreadLease {
public:
    /// Claim up to `want` workers (`granted() <= want`).
    explicit ThreadLease(std::size_t want);
    /// Exact claim for explicit overrides (see ThreadBudget::claim_exact).
    ThreadLease(std::size_t count, bool exact);
    ~ThreadLease();
    ThreadLease(const ThreadLease&) = delete;
    ThreadLease& operator=(const ThreadLease&) = delete;

    [[nodiscard]] std::size_t granted() const { return granted_; }

private:
    std::size_t granted_ = 0;
};

/// RAII marker: the current thread is one of the workers a ThreadLease
/// counted (see ThreadBudget::current_thread_counted). The trial runner
/// wraps each worker's loop in one so round-level auto-sizing knows the
/// caller is already paid for.
class CountedThreadScope {
public:
    CountedThreadScope();
    ~CountedThreadScope();
    CountedThreadScope(const CountedThreadScope&) = delete;
    CountedThreadScope& operator=(const CountedThreadScope&) = delete;

private:
    bool previous_;
};

/// Fixed-size task-queue thread pool.
///
/// `parallel_for` partitions [0, n) dynamically (atomic work stealing) over
/// at most `max_workers` pool workers *plus the calling thread*; the caller
/// always participates, so the call completes even with zero free workers.
/// `fn(slot, index)` receives a dense worker-slot id (0 = the caller,
/// 1..max_workers = pool workers) so callers can keep per-worker scratch
/// (e.g. a thread-local model clone) without thread-id maps. Slots are
/// stable within one `parallel_for` call only.
///
/// The first exception thrown by any task aborts the remaining indices and
/// is rethrown on the calling thread.
class ThreadPool {
public:
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t worker_count() const;

    void parallel_for(std::size_t n, std::size_t max_workers,
                      const std::function<void(std::size_t slot, std::size_t index)>& fn);

    /// The process-wide shared pool. Sized generously (at least 8 workers)
    /// so explicit FMORE_ROUND_THREADS overrides can exercise real
    /// concurrency even on small machines; auto-sized callers are expected
    /// to cap themselves with the ThreadBudget, not with the pool size.
    [[nodiscard]] static ThreadPool& shared();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The explicit round-thread request: `requested` when > 0, else a
/// positive `FMORE_ROUND_THREADS` environment value, else 0 (auto). Auto
/// callers should size themselves by *claiming* from the ThreadBudget (a
/// ThreadLease), not by reading `available()` — concurrent readers would
/// all see the same remainder and collectively overdraw it.
[[nodiscard]] std::size_t explicit_round_threads(std::size_t requested);

/// Advisory resolution of the worker count for one round-level parallel
/// section over `tasks` units of work: the explicit request when present,
/// else the caller (plus its own budget slot when not already counted)
/// plus whatever the ThreadBudget currently has free. Always in [1, tasks]
/// (0 tasks resolves to 1). Advisory only — it does not claim; use it for
/// sizing decisions that are not worth a lease.
[[nodiscard]] std::size_t resolve_round_threads(std::size_t requested, std::size_t tasks);

} // namespace fmore::util
