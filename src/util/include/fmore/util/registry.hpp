#pragma once

/// @file registry.hpp
/// The one string-keyed registry implementation behind every extension
/// seam (auction::MechanismRegistry, fl::PolicyRegistry,
/// core::ScenarioRegistry): thread-safe add/replace/remove/lookup with the
/// shared error-message discipline — duplicate adds throw and point at
/// replace(), unknown lookups throw and list what is registered.

#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fmore::util {

/// Shared guard for registries whose values wrap a callable: rejects a
/// null factory with the registry's own message shape, so the wording
/// cannot drift between seams.
template <class Factory>
void require_factory(const Factory& factory, const std::string& class_name,
                     const char* op, const std::string& name) {
    if (!factory)
        throw std::invalid_argument(class_name + "::" + op + ": null factory for '"
                                    + name + "'");
}

/// Thread-safe map from names to registrations. `class_name` ("e.g.
/// "MechanismRegistry") and `noun` (e.g. "mechanism") only shape the error
/// messages. Values are returned by copy so no lock outlives a call;
/// registrations are expected to be cheap-to-copy factories.
template <class Value>
class NamedRegistry {
public:
    NamedRegistry(std::string class_name, std::string noun)
        : class_name_(std::move(class_name)), noun_(std::move(noun)) {}

    /// @throws std::invalid_argument on an empty or already-taken name
    void add(const std::string& name, Value value) {
        check_name(name, "add");
        const std::lock_guard<std::mutex> lock(mutex_);
        if (entries_.count(name) != 0)
            throw std::invalid_argument(class_name_ + "::add: '" + name
                                        + "' is already registered (use replace() to "
                                          "overwrite deliberately)");
        entries_.emplace(name, std::move(value));
    }

    /// Register or overwrite without the duplicate check.
    void replace(const std::string& name, Value value) {
        check_name(name, "replace");
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.insert_or_assign(name, std::move(value));
    }

    /// No-op when absent.
    void remove(const std::string& name) {
        const std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(name);
    }

    [[nodiscard]] bool contains(const std::string& name) const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return entries_.count(name) != 0;
    }

    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto& [name, value] : entries_) out.push_back(name);
        return out;
    }

    /// Snapshot of every (name, value), sorted by name.
    [[nodiscard]] std::vector<std::pair<std::string, Value>> entries() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return {entries_.begin(), entries_.end()};
    }

    /// The registration under `name`.
    /// @throws std::invalid_argument for unknown names, listing what is
    ///         registered so the typo is obvious
    [[nodiscard]] Value get(const std::string& name) const {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(name);
            if (it != entries_.end()) return it->second;
        }
        std::ostringstream message;
        message << class_name_ << ": unknown " << noun_ << " '" << name
                << "'; registered: ";
        const std::vector<std::string> known = names();
        for (std::size_t i = 0; i < known.size(); ++i) {
            if (i != 0) message << ", ";
            message << known[i];
        }
        throw std::invalid_argument(message.str());
    }

private:
    void check_name(const std::string& name, const char* op) const {
        if (name.empty())
            throw std::invalid_argument(class_name_ + "::" + op + ": empty " + noun_
                                        + " name");
    }

    std::string class_name_;
    std::string noun_;
    mutable std::mutex mutex_;
    std::map<std::string, Value> entries_;
};

} // namespace fmore::util
