#pragma once

/// @file json_ledger.hpp
/// Section-bounded splicing for the shared benchmark ledgers
/// (BENCH_scale.json and friends). Several benches co-own one JSON object,
/// each responsible for a single top-level member ("scale" rows,
/// "faults", "streaming", ...). Each bench rewrites only its own section
/// and must leave every other section byte-for-byte intact, REGARDLESS of
/// the order the sections appear in — a hand-edited or re-ordered ledger
/// is still a valid ledger.
///
/// The scanner is string-aware: a key name occurring inside a nested
/// string value (say a fault-plan spec or a row's "name" field) never
/// matches, and braces inside strings never unbalance the section walk.
/// Only members of the ROOT object (depth 1, outside arrays) are
/// candidates.
///
/// These helpers deliberately stop short of a JSON parser: the ledgers are
/// machine-written, so locating + replacing a member span is all the
/// benches need, and keeping the untouched bytes verbatim is exactly what
/// a parse/re-serialize round trip would NOT guarantee.

#include <cstddef>
#include <string>

namespace fmore::util {

/// Locate the root-level member `"key": <value>` in the JSON object
/// `text`. On success `begin` is the index of the key's opening quote and
/// `end` is one past the last byte of the value (the matching `}` / `]` /
/// closing quote, or the last byte of a bare literal). Returns false when
/// the key is absent at the root level.
[[nodiscard]] bool find_ledger_section(const std::string& text,
                                       const std::string& key,
                                       std::size_t& begin, std::size_t& end);

/// The `"key": <value>` text of the root-level member, or "" when absent.
[[nodiscard]] std::string extract_ledger_section(const std::string& text,
                                                 const std::string& key);

/// `text` with the root-level member removed, along with whichever comma
/// (preceding, else following) stitched it to its neighbours. No-op when
/// the key is absent.
[[nodiscard]] std::string remove_ledger_section(std::string text,
                                                const std::string& key);

/// Replace the root-level member in place with `section` (a full
/// `"key": <value>` rendering, starting at the key's opening quote, no
/// trailing comma). When the key is absent the section is appended before
/// the root object's closing brace; when `text` holds no object at all a
/// fresh `{ section }` document is emitted. Every other byte of `text` is
/// preserved verbatim, so splice order across benches is irrelevant.
[[nodiscard]] std::string splice_ledger_section(std::string text,
                                                const std::string& key,
                                                const std::string& section);

} // namespace fmore::util
