#include "fmore/util/fault_injector.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fmore::util {

namespace {

/// splitmix64 finalizer — the same counter-derived stream discipline the
/// stats layer uses for per-node drift (util sits below stats in the module
/// order, so the constants are restated here rather than included).
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// One uniform in [0, 1) keyed by (seed, round, shard) — stateless, so any
/// process replays the identical draw.
double unit_draw(std::uint64_t seed, std::size_t shard, std::size_t round) {
    const std::uint64_t x = mix64(mix64(seed ^ mix64(round)) ^ shard);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double parse_probability(const std::string& key, const std::string& value) {
    std::size_t used = 0;
    double p = 0.0;
    try {
        p = std::stod(value, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != value.size() || !(p >= 0.0) || !(p <= 1.0))
        throw std::invalid_argument("FaultInjector: " + key + " = '" + value
                                    + "': must be a probability in [0, 1]");
    return p;
}

double parse_seconds(const std::string& key, const std::string& value) {
    std::size_t used = 0;
    double s = 0.0;
    try {
        s = std::stod(value, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != value.size() || !(s >= 0.0) || std::isinf(s))
        throw std::invalid_argument("FaultInjector: " + key + " = '" + value
                                    + "': must be a finite duration >= 0");
    return s;
}

std::string format_double(double v) {
    std::ostringstream out;
    out << v;
    return out.str();
}

/// Strip surrounding whitespace — "seed=7, crash=0.1" is a legal spec.
std::string trim(const std::string& s) {
    std::size_t lo = 0;
    std::size_t hi = s.size();
    while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo])) != 0) ++lo;
    while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1])) != 0) --hi;
    return s.substr(lo, hi - lo);
}

} // namespace

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::none: return "none";
        case FaultKind::crash_before_reply: return "crash_before_reply";
        case FaultKind::stall: return "stall";
        case FaultKind::truncated_write: return "truncated_write";
        case FaultKind::bit_flip: return "bit_flip";
        case FaultKind::delayed_reply: return "delayed_reply";
    }
    return "unknown";
}

FaultInjector FaultInjector::from_events(std::vector<FaultEvent> events) {
    FaultInjector plan;
    plan.events_ = std::move(events);
    return plan;
}

FaultInjector FaultInjector::from_spec(const std::string& spec) {
    FaultInjector plan;
    plan.seeded_ = true;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos) end = spec.size();
        const std::string pair = trim(spec.substr(pos, end - pos));
        pos = end + 1;
        if (pair.empty()) continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("FaultInjector: '" + pair
                                        + "': expected key=value");
        const std::string key = trim(pair.substr(0, eq));
        const std::string value = trim(pair.substr(eq + 1));
        if (key == "seed") {
            try {
                plan.seed_ = std::stoull(value);
            } catch (const std::exception&) {
                throw std::invalid_argument("FaultInjector: seed = '" + value
                                            + "': must be an unsigned integer");
            }
        } else if (key == "crash") {
            plan.p_crash_ = parse_probability(key, value);
        } else if (key == "stall") {
            plan.p_stall_ = parse_probability(key, value);
        } else if (key == "truncate") {
            plan.p_truncate_ = parse_probability(key, value);
        } else if (key == "corrupt") {
            plan.p_bit_flip_ = parse_probability(key, value);
        } else if (key == "delay") {
            plan.p_delay_ = parse_probability(key, value);
        } else if (key == "stall_s") {
            plan.stall_s_ = parse_seconds(key, value);
        } else if (key == "delay_s") {
            plan.delay_s_ = parse_seconds(key, value);
        } else if (key == "ckill" || key == "ckill_mid") {
            std::size_t round = 0;
            try {
                round = std::stoull(value);
            } catch (const std::exception&) {
                round = 0;
            }
            if (round == 0)
                throw std::invalid_argument("FaultInjector: " + key + " = '" + value
                                            + "': must be a round index >= 1");
            (key == "ckill" ? plan.ckill_round_ : plan.ckill_mid_round_) = round;
        } else {
            throw std::invalid_argument(
                "FaultInjector: unknown key '" + key
                + "' (expected seed, crash, stall, truncate, corrupt, delay, "
                  "stall_s, delay_s, ckill, ckill_mid)");
        }
    }
    const double total = plan.p_crash_ + plan.p_stall_ + plan.p_truncate_
                         + plan.p_bit_flip_ + plan.p_delay_;
    if (total > 1.0 + 1e-12)
        throw std::invalid_argument(
            "FaultInjector: fault probabilities sum to " + format_double(total)
            + " > 1 (at most one fault fires per shard-round)");

    // Normalized round-trip form: seed first, then only the active knobs.
    std::string normalized = "seed=" + std::to_string(plan.seed_);
    if (plan.p_crash_ > 0.0) normalized += ",crash=" + format_double(plan.p_crash_);
    if (plan.p_stall_ > 0.0) normalized += ",stall=" + format_double(plan.p_stall_);
    if (plan.p_truncate_ > 0.0)
        normalized += ",truncate=" + format_double(plan.p_truncate_);
    if (plan.p_bit_flip_ > 0.0)
        normalized += ",corrupt=" + format_double(plan.p_bit_flip_);
    if (plan.p_delay_ > 0.0) normalized += ",delay=" + format_double(plan.p_delay_);
    if (plan.p_stall_ > 0.0) normalized += ",stall_s=" + format_double(plan.stall_s_);
    if (plan.p_delay_ > 0.0) normalized += ",delay_s=" + format_double(plan.delay_s_);
    if (plan.ckill_round_ > 0)
        normalized += ",ckill=" + std::to_string(plan.ckill_round_);
    if (plan.ckill_mid_round_ > 0)
        normalized += ",ckill_mid=" + std::to_string(plan.ckill_mid_round_);
    plan.spec_ = normalized;
    return plan;
}

bool FaultInjector::empty() const {
    if (!events_.empty()) return false;
    if (ckill_round_ > 0 || ckill_mid_round_ > 0) return false;
    if (!seeded_) return true;
    return p_crash_ + p_stall_ + p_truncate_ + p_bit_flip_ + p_delay_ <= 0.0;
}

bool FaultInjector::has_shard_faults() const {
    if (!events_.empty()) return true;
    if (!seeded_) return false;
    return p_crash_ + p_stall_ + p_truncate_ + p_bit_flip_ + p_delay_ > 0.0;
}

FaultEvent FaultInjector::event(std::size_t shard, std::size_t round) const {
    for (const FaultEvent& e : events_)
        if (e.shard == shard && e.round == round) return e;
    FaultEvent none;
    none.shard = shard;
    none.round = round;
    if (!seeded_) return none;
    double u = unit_draw(seed_, shard, round);
    FaultEvent drawn = none;
    if ((u -= p_crash_) < 0.0) {
        drawn.kind = FaultKind::crash_before_reply;
    } else if ((u -= p_stall_) < 0.0) {
        drawn.kind = FaultKind::stall;
        drawn.seconds = stall_s_;
    } else if ((u -= p_truncate_) < 0.0) {
        drawn.kind = FaultKind::truncated_write;
    } else if ((u -= p_bit_flip_) < 0.0) {
        drawn.kind = FaultKind::bit_flip;
    } else if ((u -= p_delay_) < 0.0) {
        drawn.kind = FaultKind::delayed_reply;
        drawn.seconds = delay_s_;
    }
    return drawn;
}

std::function<double(std::size_t, std::size_t)>
FaultInjector::latency_model(double base_latency_s) const {
    return [plan = *this, base_latency_s](std::size_t shard, std::size_t round) {
        const FaultEvent e = plan.event(shard, round);
        switch (e.kind) {
            case FaultKind::crash_before_reply:
                return std::numeric_limits<double>::infinity();
            case FaultKind::stall:
            case FaultKind::delayed_reply:
                return base_latency_s + e.seconds;
            default:
                return base_latency_s;
        }
    };
}

} // namespace fmore::util
