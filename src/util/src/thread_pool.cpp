#include "fmore/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fmore::util {

namespace {

std::size_t env_threads(const char* name) {
    if (const char* env = std::getenv(name)) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return 0;
}

} // namespace

std::size_t thread_budget() {
    static const std::size_t budget = [] {
        if (const std::size_t env = env_threads("FMORE_THREADS")) return env;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<std::size_t>(hw) : std::size_t{1};
    }();
    return budget;
}

// ---------------------------------------------------------------------------
// ThreadBudget
// ---------------------------------------------------------------------------

struct ThreadBudget::Impl {
    std::atomic<std::size_t> claimed{0};
};

ThreadBudget::Impl& ThreadBudget::impl() const {
    static Impl impl;
    return impl;
}

ThreadBudget& ThreadBudget::instance() {
    static ThreadBudget budget;
    return budget;
}

std::size_t ThreadBudget::total() const { return thread_budget(); }

std::size_t ThreadBudget::claimed() const {
    return impl().claimed.load(std::memory_order_relaxed);
}

std::size_t ThreadBudget::available() const {
    const std::size_t used = claimed();
    const std::size_t all = total();
    return used >= all ? 0 : all - used;
}

std::size_t ThreadBudget::try_claim(std::size_t want) {
    if (want == 0) return 0;
    std::atomic<std::size_t>& used = impl().claimed;
    std::size_t current = used.load(std::memory_order_relaxed);
    for (;;) {
        const std::size_t free = current >= total() ? 0 : total() - current;
        const std::size_t grant = std::min(want, free);
        if (grant == 0) return 0;
        if (used.compare_exchange_weak(current, current + grant,
                                       std::memory_order_relaxed)) {
            return grant;
        }
    }
}

void ThreadBudget::claim_exact(std::size_t count) {
    impl().claimed.fetch_add(count, std::memory_order_relaxed);
}

void ThreadBudget::release(std::size_t count) {
    impl().claimed.fetch_sub(count, std::memory_order_relaxed);
}

namespace {
thread_local bool t_thread_counted = false;
} // namespace

bool ThreadBudget::current_thread_counted() { return t_thread_counted; }

CountedThreadScope::CountedThreadScope() : previous_(t_thread_counted) {
    t_thread_counted = true;
}

CountedThreadScope::~CountedThreadScope() { t_thread_counted = previous_; }

ThreadLease::ThreadLease(std::size_t want)
    : granted_(ThreadBudget::instance().try_claim(want)) {}

ThreadLease::ThreadLease(std::size_t count, bool exact) {
    if (exact) {
        ThreadBudget::instance().claim_exact(count);
        granted_ = count;
    } else {
        granted_ = ThreadBudget::instance().try_claim(count);
    }
}

ThreadLease::~ThreadLease() {
    if (granted_ > 0) ThreadBudget::instance().release(granted_);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

namespace {

/// Shared state of one parallel_for call. Kept alive by shared_ptr: late
/// pool workers may touch it after the caller has already returned.
struct ForState {
    std::size_t n = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;

    /// Claim and run indices until the range is exhausted. Every index is
    /// claimed exactly once and counted in `done` whether it ran, failed or
    /// was skipped after a failure, so the caller's wait always terminates;
    /// the first exception parks in `error` and the rest are skipped.
    void drive(std::size_t slot) {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    (*fn)(slot, i);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    if (!error) error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 >= n) {
                const std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        }
    }

    [[nodiscard]] bool complete() const {
        return done.load(std::memory_order_acquire) >= n;
    }
};

} // namespace

struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;

    void worker_loop() {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [this] { return stop || !queue.empty(); });
                if (stop && queue.empty()) return;
                job = std::move(queue.front());
                queue.pop_front();
            }
            job();
        }
    }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(std::make_unique<Impl>()) {
    impl_->workers.reserve(workers);
    try {
        for (std::size_t i = 0; i < workers; ++i) {
            impl_->workers.emplace_back([this] { impl_->worker_loop(); });
        }
    } catch (...) {
        // Thread creation hit a resource limit: run with what started.
        if (impl_->workers.empty()) throw;
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::worker_count() const { return impl_->workers.size(); }

void ThreadPool::parallel_for(
    std::size_t n, std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (!fn) throw std::invalid_argument("ThreadPool::parallel_for: null function");

    // Serial fast path: no helpers wanted, or nothing to split.
    if (max_workers == 0 || n == 1 || impl_->workers.empty()) {
        for (std::size_t i = 0; i < n; ++i) fn(0, i);
        return;
    }

    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;

    const std::size_t helpers =
        std::min({max_workers, impl_->workers.size(), n - 1});
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        for (std::size_t h = 0; h < helpers; ++h) {
            impl_->queue.emplace_back([state, slot = h + 1] { state->drive(slot); });
        }
    }
    impl_->cv.notify_all();

    state->drive(0);

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&state] { return state->complete(); });
    }
    // `fn` outlives the helpers from here on: every claimed index has
    // finished and unclaimed ones can no longer start (next >= n). A late
    // helper only observes next >= n and returns.
    if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
    // At least 8 lanes so explicit FMORE_ROUND_THREADS overrides can be
    // exercised on small machines; capped so a huge budget does not spawn
    // hundreds of mostly-idle workers. Minus one: the caller is a lane.
    static ThreadPool pool(
        std::min<std::size_t>(std::max<std::size_t>(thread_budget(), 8), 32) - 1);
    return pool;
}

std::size_t explicit_round_threads(std::size_t requested) {
    if (requested > 0) return requested;
    return env_threads("FMORE_ROUND_THREADS");
}

std::size_t resolve_round_threads(std::size_t requested, std::size_t tasks) {
    if (tasks <= 1) return 1;
    std::size_t threads = explicit_round_threads(requested);
    if (threads == 0) {
        // The caller always works; it consumes one of the free slots
        // itself unless an outer lease (trial runner) already counted it.
        const std::size_t free = ThreadBudget::instance().available();
        threads = ThreadBudget::current_thread_counted()
                      ? 1 + free
                      : std::max<std::size_t>(1, free);
    }
    return std::max<std::size_t>(1, std::min(threads, tasks));
}

} // namespace fmore::util
