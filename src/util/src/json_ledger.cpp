#include "fmore/util/json_ledger.hpp"

#include <cctype>

namespace fmore::util {
namespace {

bool is_ws(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

/// Index one past the closing quote of the string starting at
/// `text[i] == '"'` (escape-aware); text.size() when unterminated.
std::size_t skip_string(const std::string& text, std::size_t i) {
    for (++i; i < text.size(); ++i) {
        if (text[i] == '\\') {
            ++i;
            continue;
        }
        if (text[i] == '"') return i + 1;
    }
    return text.size();
}

/// One past the end of the value starting at `at` (first non-ws byte of
/// the value). Objects and arrays are matched string-aware; strings are
/// skipped whole; bare literals run to the enclosing ',' / '}' / ']'.
std::size_t skip_value(const std::string& text, std::size_t at) {
    if (at >= text.size()) return text.size();
    const char c = text[at];
    if (c == '"') return skip_string(text, at);
    if (c == '{' || c == '[') {
        int depth = 0;
        for (std::size_t i = at; i < text.size(); ++i) {
            const char b = text[i];
            if (b == '"') {
                i = skip_string(text, i) - 1;
            } else if (b == '{' || b == '[') {
                ++depth;
            } else if ((b == '}' || b == ']') && --depth == 0) {
                return i + 1;
            }
        }
        return text.size();
    }
    std::size_t i = at;
    while (i < text.size() && text[i] != ',' && text[i] != '}' && text[i] != ']')
        ++i;
    while (i > at && is_ws(text[i - 1])) --i;
    return i;
}

} // namespace

bool find_ledger_section(const std::string& text, const std::string& key,
                         std::size_t& begin, std::size_t& end) {
    int depth = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '"') {
            const std::size_t start = i;
            const std::size_t stop = skip_string(text, i);
            i = stop - 1;
            if (depth != 1) continue;
            // A root-level string followed by ':' is a member key; a string
            // VALUE is followed by ',' or '}' instead.
            std::size_t j = stop;
            while (j < text.size() && is_ws(text[j])) ++j;
            if (j >= text.size() || text[j] != ':') continue;
            if (stop - start != key.size() + 2
                || text.compare(start + 1, key.size(), key) != 0)
                continue;
            std::size_t v = j + 1;
            while (v < text.size() && is_ws(text[v])) ++v;
            begin = start;
            end = skip_value(text, v);
            return true;
        }
        if (c == '{' || c == '[') ++depth;
        else if (c == '}' || c == ']') --depth;
    }
    return false;
}

std::string extract_ledger_section(const std::string& text,
                                   const std::string& key) {
    std::size_t begin = 0;
    std::size_t end = 0;
    if (!find_ledger_section(text, key, begin, end)) return {};
    return text.substr(begin, end - begin);
}

std::string remove_ledger_section(std::string text, const std::string& key) {
    std::size_t begin = 0;
    std::size_t end = 0;
    if (!find_ledger_section(text, key, begin, end)) return text;
    // Stitch via the comma that joined this member to a neighbour: prefer
    // the preceding one (interior/last member), else swallow the following
    // one (first member).
    std::size_t cut = begin;
    while (cut > 0 && is_ws(text[cut - 1])) --cut;
    if (cut > 0 && text[cut - 1] == ',') {
        text.erase(cut - 1, end - (cut - 1));
        return text;
    }
    std::size_t after = end;
    while (after < text.size() && is_ws(text[after])) ++after;
    if (after < text.size() && text[after] == ',') {
        ++after;
        while (after < text.size() && is_ws(text[after])) ++after;
        end = after;
    }
    text.erase(begin, end - begin);
    return text;
}

std::string splice_ledger_section(std::string text, const std::string& key,
                                  const std::string& section) {
    std::size_t begin = 0;
    std::size_t end = 0;
    if (find_ledger_section(text, key, begin, end)) {
        text.replace(begin, end - begin, section);
        return text;
    }
    // Append before the root object's closing brace (string-aware: the '}'
    // that returns the depth to zero).
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '"') i = skip_string(text, i) - 1;
        else if (c == '{' || c == '[') ++depth;
        else if (c == '}' || c == ']') {
            if (--depth == 0 && c == '}') {
                close = i;
                break;
            }
        }
    }
    if (close == std::string::npos) return "{\n  " + section + "\n}\n";
    std::string head = text.substr(0, close);
    while (!head.empty() && is_ws(head.back())) head.pop_back();
    const bool empty_object = !head.empty() && head.back() == '{';
    return head + (empty_object ? "\n  " : ",\n  ") + section + "\n}\n";
}

} // namespace fmore::util
