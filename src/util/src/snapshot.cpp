#include "fmore/util/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fmore::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
        table[i] = c;
    }
    return table;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32_at(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64_at(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/// write(2) until done, retrying on EINTR. Throws on any other failure.
void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            int err = errno;
            throw SnapshotError("snapshot: write to '" + path +
                                "' failed: " + std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint32_t snapshot_crc32(const std::uint8_t* data, std::size_t size) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- ByteWriter

void ByteWriter::put_u32(std::uint32_t v) { append_u32(bytes_, v); }
void ByteWriter::put_u64(std::uint64_t v) { append_u64(bytes_, v); }

void ByteWriter::put_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u32(bits);
}

void ByteWriter::put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
}

void ByteWriter::put_str(const std::string& s) {
    put_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::put_f32_vec(const std::vector<float>& v) {
    put_u64(v.size());
    for (float x : v) put_f32(x);
}

void ByteWriter::put_f64_vec(const std::vector<double>& v) {
    put_u64(v.size());
    for (double x : v) put_f64(x);
}

void ByteWriter::put_u64_vec(const std::vector<std::uint64_t>& v) {
    put_u64(v.size());
    for (std::uint64_t x : v) put_u64(x);
}

// ---------------------------------------------------------------- ByteReader

void ByteReader::need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n)
        throw SnapshotError("snapshot: " + context_ + ": truncated while reading " +
                            what + " (need " + std::to_string(n) + " bytes, " +
                            std::to_string(size_ - pos_) + " left)");
}

std::uint32_t ByteReader::get_u32() {
    need(4, "u32");
    std::uint32_t v = read_u32_at(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t ByteReader::get_u64() {
    need(8, "u64");
    std::uint64_t v = read_u64_at(data_ + pos_);
    pos_ += 8;
    return v;
}

float ByteReader::get_f32() {
    std::uint32_t bits = get_u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double ByteReader::get_f64() {
    std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string ByteReader::get_str() {
    std::uint64_t n = get_u64();
    need(n, "string bytes");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
}

std::vector<float> ByteReader::get_f32_vec() {
    std::uint64_t n = get_u64();
    need(n * 4, "f32 vector");
    std::vector<float> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = get_f32();
    return v;
}

std::vector<double> ByteReader::get_f64_vec() {
    std::uint64_t n = get_u64();
    need(n * 8, "f64 vector");
    std::vector<double> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = get_f64();
    return v;
}

std::vector<std::uint64_t> ByteReader::get_u64_vec() {
    std::uint64_t n = get_u64();
    need(n * 8, "u64 vector");
    std::vector<std::uint64_t> v(n);
    for (std::uint64_t i = 0; i < n; ++i) v[i] = get_u64();
    return v;
}

void ByteReader::expect_end() const {
    if (pos_ != size_)
        throw SnapshotError("snapshot: " + context_ + ": " +
                            std::to_string(size_ - pos_) +
                            " unread bytes after the last field (schema mismatch)");
}

// ------------------------------------------------------------ SnapshotWriter

void SnapshotWriter::add_section(std::uint32_t tag, std::vector<std::uint8_t> payload) {
    for (const Section& s : sections_)
        if (s.tag == tag)
            throw SnapshotError("snapshot: duplicate section tag " + std::to_string(tag));
    sections_.push_back(Section{tag, std::move(payload)});
}

std::vector<std::uint8_t> SnapshotWriter::serialize() const {
    std::vector<std::uint8_t> out;
    append_u32(out, kMagic);
    append_u32(out, kVersion);
    append_u32(out, static_cast<std::uint32_t>(sections_.size()));
    append_u32(out, snapshot_crc32(out.data(), out.size()));
    for (const Section& s : sections_) {
        std::vector<std::uint8_t> hdr;
        append_u32(hdr, s.tag);
        append_u64(hdr, s.payload.size());
        append_u32(hdr, snapshot_crc32(s.payload.data(), s.payload.size()));
        append_u32(hdr, snapshot_crc32(hdr.data(), hdr.size()));
        out.insert(out.end(), hdr.begin(), hdr.end());
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    }
    return out;
}

void SnapshotWriter::write_file(const std::string& path,
                                const std::function<void()>& mid_write) const {
    const std::vector<std::uint8_t> bytes = serialize();
    const std::string tmp = path + ".tmp";

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        int err = errno;
        throw SnapshotError("snapshot: cannot create '" + tmp +
                            "': " + std::strerror(err));
    }
    try {
        const std::size_t half = bytes.size() / 2;
        write_all(fd, bytes.data(), half, tmp);
        if (mid_write) mid_write();
        write_all(fd, bytes.data() + half, bytes.size() - half, tmp);
        if (::fsync(fd) != 0) {
            int err = errno;
            throw SnapshotError("snapshot: fsync '" + tmp +
                                "' failed: " + std::strerror(err));
        }
    } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        throw SnapshotError("snapshot: rename '" + tmp + "' -> '" + path +
                            "' failed: " + std::strerror(err));
    }

    // fsync the directory so the rename itself is durable.
    std::string dir = path;
    std::size_t slash = dir.find_last_of('/');
    dir = (slash == std::string::npos) ? std::string(".") : dir.substr(0, slash);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

// ------------------------------------------------------------ SnapshotReader

SnapshotReader SnapshotReader::from_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        int err = errno;
        throw SnapshotError("snapshot: cannot open '" + path +
                            "': " + std::strerror(err));
    }
    std::vector<std::uint8_t> bytes;
    std::array<std::uint8_t, 1 << 16> buf;
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
        bytes.insert(bytes.end(), buf.data(), buf.data() + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw SnapshotError("snapshot: read error on '" + path + "'");
    return from_bytes(std::move(bytes), path);
}

SnapshotReader SnapshotReader::from_bytes(std::vector<std::uint8_t> bytes,
                                          const std::string& context) {
    SnapshotReader r;
    r.context_ = context;
    r.parse(bytes);
    return r;
}

void SnapshotReader::parse(const std::vector<std::uint8_t>& bytes) {
    const auto fail = [this](const std::string& why) -> void {
        throw SnapshotError("snapshot: '" + context_ + "': " + why);
    };

    if (bytes.size() < 16) fail("file too short for header (" +
                                std::to_string(bytes.size()) + " bytes)");
    if (read_u32_at(bytes.data()) != SnapshotWriter::kMagic)
        fail("bad magic (not a snapshot file)");
    const std::uint32_t version = read_u32_at(bytes.data() + 4);
    if (version != SnapshotWriter::kVersion)
        fail("unsupported version " + std::to_string(version) + " (expected " +
             std::to_string(SnapshotWriter::kVersion) + ")");
    const std::uint32_t count = read_u32_at(bytes.data() + 8);
    if (read_u32_at(bytes.data() + 12) != snapshot_crc32(bytes.data(), 12))
        fail("file header checksum mismatch");

    std::size_t pos = 16;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (bytes.size() - pos < 20)
            fail("truncated at section " + std::to_string(i) + " header");
        const std::uint8_t* hdr = bytes.data() + pos;
        if (read_u32_at(hdr + 16) != snapshot_crc32(hdr, 16))
            fail("section " + std::to_string(i) + " header checksum mismatch");
        const std::uint32_t tag = read_u32_at(hdr);
        const std::uint64_t payload_size = read_u64_at(hdr + 4);
        const std::uint32_t payload_crc = read_u32_at(hdr + 12);
        pos += 20;
        if (bytes.size() - pos < payload_size)
            fail("section " + std::to_string(i) + " (tag " + std::to_string(tag) +
                 ") truncated: payload needs " + std::to_string(payload_size) +
                 " bytes, " + std::to_string(bytes.size() - pos) + " left");
        if (snapshot_crc32(bytes.data() + pos, payload_size) != payload_crc)
            fail("section " + std::to_string(i) + " (tag " + std::to_string(tag) +
                 ") payload checksum mismatch");
        if (sections_.count(tag))
            fail("duplicate section tag " + std::to_string(tag));
        sections_[tag].assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                              bytes.begin() + static_cast<std::ptrdiff_t>(pos + payload_size));
        pos += payload_size;
    }
    if (pos != bytes.size())
        fail(std::to_string(bytes.size() - pos) + " trailing bytes after section " +
             std::to_string(count ? count - 1 : 0));
}

const std::vector<std::uint8_t>& SnapshotReader::section(std::uint32_t tag) const {
    auto it = sections_.find(tag);
    if (it == sections_.end())
        throw SnapshotError("snapshot: '" + context_ + "': missing section tag " +
                            std::to_string(tag));
    return it->second;
}

ByteReader SnapshotReader::open_section(std::uint32_t tag) const {
    const std::vector<std::uint8_t>& p = section(tag);
    return ByteReader(p.data(), p.size(),
                      context_ + " section " + std::to_string(tag));
}

} // namespace fmore::util
