#pragma once

#include <vector>

namespace fmore::stats {

/// Min-max normalization to [0, 1].
///
/// The paper's walk-through example (Section III.B) normalizes qualities and
/// payments "by the technique of min-max normalization to compute the
/// scores". The aggregator fits a normalizer per resource dimension over the
/// advertised range (or the observed bids) and applies it inside the scoring
/// rule.
class MinMaxNormalizer {
public:
    /// Identity normalizer (range [0,1] passes through).
    MinMaxNormalizer() : lo_(0.0), hi_(1.0) {}

    /// Normalizer for a known range [lo, hi]; throws if lo >= hi.
    MinMaxNormalizer(double lo, double hi);

    /// Fit from observed values; throws on fewer than 2 distinct values.
    static MinMaxNormalizer fit(const std::vector<double>& values);

    /// Map x into [0,1], clamping outside the fitted range.
    [[nodiscard]] double transform(double x) const;

    /// Map a normalized value back into the original range.
    [[nodiscard]] double inverse(double y) const;

    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }

private:
    double lo_;
    double hi_;
};

} // namespace fmore::stats
