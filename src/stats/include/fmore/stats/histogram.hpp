#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace fmore::stats {

/// Fixed-width histogram over [lo, hi].
///
/// Fig. 8 of the paper plots "the distribution of score" — the proportion of
/// winners falling in each score bucket against the whole population. The
/// bench harness builds those series from this type.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bin_count);

    void add(double x);
    void add_all(const std::vector<double>& xs);

    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] std::size_t count(std::size_t bin) const;
    [[nodiscard]] std::size_t total() const { return total_; }
    /// Fraction of all observations in `bin` (0 if histogram is empty).
    [[nodiscard]] double proportion(std::size_t bin) const;
    /// Inclusive-exclusive bounds of `bin`.
    [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;
    /// Midpoint of `bin` (x-axis value for plotting).
    [[nodiscard]] double bin_center(std::size_t bin) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace fmore::stats
