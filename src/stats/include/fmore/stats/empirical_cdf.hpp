#pragma once

#include <vector>

#include "fmore/stats/distributions.hpp"

namespace fmore::stats {

/// Empirical CDF with linear interpolation between order statistics.
///
/// The paper (Section III.A(2)) has each edge node "learn its private cost
/// parameter theta and get the CDF F(theta) from the historical data". This
/// class is that learned F: it is built from past theta observations and
/// plugs into the equilibrium solver exactly like an analytic Distribution.
///
/// The interpolated form (rather than the step function) keeps F continuous
/// and strictly increasing between the sample extremes, which the
/// equilibrium machinery needs (the paper assumes a positive density f).
class EmpiricalCdf final : public Distribution {
public:
    /// Build from raw samples; throws if fewer than two distinct values.
    explicit EmpiricalCdf(std::vector<double> samples);

    [[nodiscard]] double cdf(double x) const override;
    /// Piecewise-constant density implied by the interpolated CDF.
    [[nodiscard]] double pdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double support_lo() const override { return sorted_.front(); }
    [[nodiscard]] double support_hi() const override { return sorted_.back(); }

    [[nodiscard]] std::size_t sample_count() const { return sorted_.size(); }

    /// Kolmogorov-Smirnov distance to a reference distribution, evaluated at
    /// the sample points. Used by tests to show the learned F converges to
    /// the true theta distribution as history grows.
    [[nodiscard]] double ks_distance(const Distribution& reference) const;

private:
    std::vector<double> sorted_;
};

} // namespace fmore::stats
