#pragma once

#include <cstddef>
#include <vector>

namespace fmore::stats {

/// Streaming summary statistics (Welford's algorithm) used by the experiment
/// runner to average metrics over repeated trials, mirroring the paper's
/// "average of five experiments".
class RunningSummary {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const; // sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch helpers on a vector of observations.
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Linearly interpolated percentile, p in [0,100].
double percentile(std::vector<double> xs, double p);

} // namespace fmore::stats
