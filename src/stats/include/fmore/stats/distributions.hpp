#pragma once

#include <functional>
#include <memory>

#include "fmore/stats/rng.hpp"

namespace fmore::stats {

/// Abstract continuous distribution on a bounded support.
///
/// The paper's private-cost parameter theta is "independently and identically
/// distributed over [theta_lo, theta_hi] with positive, continuously
/// differentiable density f" (Section III.A(2)). Concrete families below
/// satisfy that; `EmpiricalCdf` (separate header) covers the "learned from
/// historical data" case.
class Distribution {
public:
    virtual ~Distribution() = default;

    /// Cumulative distribution function F(x); clamps outside the support.
    [[nodiscard]] virtual double cdf(double x) const = 0;

    /// Density f(x); zero outside the support.
    [[nodiscard]] virtual double pdf(double x) const = 0;

    /// Inverse CDF (quantile) for p in [0,1].
    [[nodiscard]] virtual double quantile(double p) const = 0;

    /// Support bounds [lo, hi].
    [[nodiscard]] virtual double support_lo() const = 0;
    [[nodiscard]] virtual double support_hi() const = 0;

    /// Draw a sample.
    [[nodiscard]] virtual double sample(Rng& rng) const;
};

/// Uniform distribution on [lo, hi]; the default theta model in our
/// simulations (matching the paper's lack of a stated family).
class UniformDistribution final : public Distribution {
public:
    UniformDistribution(double lo, double hi);

    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double pdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double support_lo() const override { return lo_; }
    [[nodiscard]] double support_hi() const override { return hi_; }

private:
    double lo_;
    double hi_;
};

/// Normal distribution truncated to [lo, hi]; models clustered cost
/// parameters (most nodes near the mean, a few cheap/expensive outliers).
class TruncatedNormalDistribution final : public Distribution {
public:
    TruncatedNormalDistribution(double mean, double stddev, double lo, double hi);

    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double pdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double support_lo() const override { return lo_; }
    [[nodiscard]] double support_hi() const override { return hi_; }

private:
    [[nodiscard]] double phi(double z) const;      // standard normal pdf
    [[nodiscard]] double big_phi(double z) const;  // standard normal cdf

    double mean_;
    double stddev_;
    double lo_;
    double hi_;
    double z_lo_;
    double z_hi_;
    double mass_; // big_phi(z_hi_) - big_phi(z_lo_)
};

/// Power-law-shaped Beta(a,b) rescaled to [lo, hi]. With a<b mass sits near
/// lo (many low-cost nodes); with a>b near hi. Used in ablations on how the
/// theta distribution shifts equilibrium payments.
class ScaledBetaDistribution final : public Distribution {
public:
    ScaledBetaDistribution(double alpha, double beta, double lo, double hi);

    [[nodiscard]] double cdf(double x) const override;
    [[nodiscard]] double pdf(double x) const override;
    [[nodiscard]] double quantile(double p) const override;
    [[nodiscard]] double support_lo() const override { return lo_; }
    [[nodiscard]] double support_hi() const override { return hi_; }

private:
    [[nodiscard]] double regularized_incomplete_beta(double x) const;

    double alpha_;
    double beta_;
    double lo_;
    double hi_;
    double log_beta_fn_; // log B(alpha, beta)
};

} // namespace fmore::stats
