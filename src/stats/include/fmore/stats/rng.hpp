#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace fmore::stats {

/// Deterministic, seedable random source used across the whole project.
///
/// All stochastic components (cost-parameter draws, resource dynamics,
/// dataset synthesis, tie-breaking coin flips, psi-FMore acceptance) take a
/// `Rng&` so experiments are reproducible from a single seed, mirroring the
/// paper's "average of five experiments" protocol where each trial gets its
/// own derived seed.
class Rng {
public:
    using engine_type = std::mt19937_64;

    explicit Rng(std::uint64_t seed = 0x5eedf00dULL) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal draw scaled to (mean, stddev).
    double normal(double mean, double stddev);

    /// Bernoulli trial; the paper's coin flip for score ties and the
    /// psi-FMore per-node acceptance test.
    bool bernoulli(double p_true);

    /// Fisher-Yates shuffle of an index vector.
    void shuffle(std::vector<std::size_t>& items);

    /// Sample `k` distinct indices from [0, n) without replacement.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Derive an independent child generator (for per-trial / per-node
    /// streams); uses splitmix-style mixing of the next engine output.
    Rng split();

    engine_type& engine() { return engine_; }

private:
    engine_type engine_;
};

/// Counter-derived random stream (splitmix64): a few arithmetic ops per
/// draw and O(1) construction, unlike the 312-word mt19937_64 state. This
/// is what makes per-node RNG streams affordable at million-node scale —
/// `mec::PopulationStore::evolve` seeds one stream per node from
/// (round salt, node id), so any partition of the nodes over threads
/// replays exactly the same draws.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /// splitmix64 finalizer over an incrementing counter — the same mixing
    /// `Rng::split` uses for child streams.
    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform real in [lo, hi) from the top 53 bits of one draw.
    double uniform(double lo, double hi) {
        const double unit = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
        return lo + (hi - lo) * unit;
    }

private:
    std::uint64_t state_;
};

/// Well-separated stream seed for (salt, index) pairs: one splitmix64
/// finalize of the xor — cheap, and distinct indices under the same salt
/// land in statistically independent streams.
inline std::uint64_t derive_stream_seed(std::uint64_t salt, std::uint64_t index) {
    std::uint64_t z = (salt ^ (index * 0x9e3779b97f4a7c15ull)) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace fmore::stats
