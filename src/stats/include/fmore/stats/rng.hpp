#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace fmore::stats {

/// Deterministic, seedable random source used across the whole project.
///
/// All stochastic components (cost-parameter draws, resource dynamics,
/// dataset synthesis, tie-breaking coin flips, psi-FMore acceptance) take a
/// `Rng&` so experiments are reproducible from a single seed, mirroring the
/// paper's "average of five experiments" protocol where each trial gets its
/// own derived seed.
class Rng {
public:
    using engine_type = std::mt19937_64;

    explicit Rng(std::uint64_t seed = 0x5eedf00dULL) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal draw scaled to (mean, stddev).
    double normal(double mean, double stddev);

    /// Bernoulli trial; the paper's coin flip for score ties and the
    /// psi-FMore per-node acceptance test.
    bool bernoulli(double p_true);

    /// Fisher-Yates shuffle of an index vector.
    void shuffle(std::vector<std::size_t>& items);

    /// Sample `k` distinct indices from [0, n) without replacement.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    /// Derive an independent child generator (for per-trial / per-node
    /// streams); uses splitmix-style mixing of the next engine output.
    Rng split();

    engine_type& engine() { return engine_; }

private:
    engine_type engine_;
};

} // namespace fmore::stats
