#include "fmore/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::stats {

double Distribution::sample(Rng& rng) const {
    return quantile(rng.uniform(0.0, 1.0));
}

// ---------------------------------------------------------------- Uniform

UniformDistribution::UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("UniformDistribution: lo must be < hi");
}

double UniformDistribution::cdf(double x) const {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::pdf(double x) const {
    if (x < lo_ || x > hi_) return 0.0;
    return 1.0 / (hi_ - lo_);
}

double UniformDistribution::quantile(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    return lo_ + p * (hi_ - lo_);
}

// ------------------------------------------------------- Truncated normal

TruncatedNormalDistribution::TruncatedNormalDistribution(double mean, double stddev,
                                                         double lo, double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("TruncatedNormal: lo must be < hi");
    if (!(stddev > 0.0)) throw std::invalid_argument("TruncatedNormal: stddev must be > 0");
    z_lo_ = (lo_ - mean_) / stddev_;
    z_hi_ = (hi_ - mean_) / stddev_;
    mass_ = big_phi(z_hi_) - big_phi(z_lo_);
    if (mass_ <= 0.0) throw std::invalid_argument("TruncatedNormal: empty truncation mass");
}

double TruncatedNormalDistribution::phi(double z) const {
    static const double inv_sqrt_2pi = 0.3989422804014327;
    return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double TruncatedNormalDistribution::big_phi(double z) const {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double TruncatedNormalDistribution::cdf(double x) const {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    const double z = (x - mean_) / stddev_;
    return (big_phi(z) - big_phi(z_lo_)) / mass_;
}

double TruncatedNormalDistribution::pdf(double x) const {
    if (x < lo_ || x > hi_) return 0.0;
    const double z = (x - mean_) / stddev_;
    return phi(z) / (stddev_ * mass_);
}

double TruncatedNormalDistribution::quantile(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    // Bisection on the CDF: 60 iterations shrink the bracket below 1e-15 of
    // the support width, plenty for the auction machinery.
    double a = lo_;
    double b = hi_;
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (a + b);
        if (cdf(mid) < p) a = mid; else b = mid;
    }
    return 0.5 * (a + b);
}

// ------------------------------------------------------------ Scaled beta

namespace {

/// Continued-fraction evaluation of the regularized incomplete beta
/// function I_x(a, b) (Lentz's algorithm, as in Numerical Recipes).
double betacf(double a, double b, double x) {
    constexpr int max_iter = 200;
    constexpr double eps = 3.0e-12;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin) d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin) d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin) c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin) d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin) c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps) break;
    }
    return h;
}

} // namespace

ScaledBetaDistribution::ScaledBetaDistribution(double alpha, double beta, double lo, double hi)
    : alpha_(alpha), beta_(beta), lo_(lo), hi_(hi) {
    if (!(alpha > 0.0) || !(beta > 0.0))
        throw std::invalid_argument("ScaledBeta: shape parameters must be > 0");
    if (!(lo < hi)) throw std::invalid_argument("ScaledBeta: lo must be < hi");
    log_beta_fn_ = std::lgamma(alpha_) + std::lgamma(beta_) - std::lgamma(alpha_ + beta_);
}

double ScaledBetaDistribution::regularized_incomplete_beta(double x) const {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const double log_front =
        alpha_ * std::log(x) + beta_ * std::log1p(-x) - log_beta_fn_;
    const double front = std::exp(log_front);
    // Symmetry relation keeps the continued fraction in its fast-converging
    // region.
    if (x < (alpha_ + 1.0) / (alpha_ + beta_ + 2.0)) {
        return front * betacf(alpha_, beta_, x) / alpha_;
    }
    return 1.0 - front * betacf(beta_, alpha_, 1.0 - x) / beta_;
}

double ScaledBetaDistribution::cdf(double x) const {
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    return regularized_incomplete_beta((x - lo_) / (hi_ - lo_));
}

double ScaledBetaDistribution::pdf(double x) const {
    if (x < lo_ || x > hi_) return 0.0;
    const double t = (x - lo_) / (hi_ - lo_);
    if (t <= 0.0 || t >= 1.0) return 0.0;
    const double log_pdf = (alpha_ - 1.0) * std::log(t) + (beta_ - 1.0) * std::log1p(-t)
                           - log_beta_fn_ - std::log(hi_ - lo_);
    return std::exp(log_pdf);
}

double ScaledBetaDistribution::quantile(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    double a = lo_;
    double b = hi_;
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (a + b);
        if (cdf(mid) < p) a = mid; else b = mid;
    }
    return 0.5 * (a + b);
}

} // namespace fmore::stats
