#include "fmore/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::stats {

void RunningSummary::add(double x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double RunningSummary::mean() const {
    if (count_ == 0) throw std::logic_error("RunningSummary: empty");
    return mean_;
}

double RunningSummary::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double RunningSummary::min() const {
    if (count_ == 0) throw std::logic_error("RunningSummary: empty");
    return min_;
}

double RunningSummary::max() const {
    if (count_ == 0) throw std::logic_error("RunningSummary: empty");
    return max_;
}

double mean(const std::vector<double>& xs) {
    if (xs.empty()) throw std::invalid_argument("mean: empty vector");
    double total = 0.0;
    for (const double x : xs) total += x;
    return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
    if (xs.size() < 2) return 0.0;
    const double mu = mean(xs);
    double ss = 0.0;
    for (const double x : xs) ss += (x - mu) * (x - mu);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) throw std::invalid_argument("percentile: empty vector");
    p = std::clamp(p, 0.0, 100.0);
    std::sort(xs.begin(), xs.end());
    const double pos = (p / 100.0) * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    if (lo >= xs.size() - 1) return xs.back();
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

} // namespace fmore::stats
