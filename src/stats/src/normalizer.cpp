#include "fmore/stats/normalizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::stats {

MinMaxNormalizer::MinMaxNormalizer(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("MinMaxNormalizer: lo must be < hi");
}

MinMaxNormalizer MinMaxNormalizer::fit(const std::vector<double>& values) {
    if (values.size() < 2)
        throw std::invalid_argument("MinMaxNormalizer::fit: need at least 2 values");
    const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
    if (*mn == *mx)
        throw std::invalid_argument("MinMaxNormalizer::fit: all values identical");
    return MinMaxNormalizer(*mn, *mx);
}

double MinMaxNormalizer::transform(double x) const {
    const double y = (x - lo_) / (hi_ - lo_);
    return std::clamp(y, 0.0, 1.0);
}

double MinMaxNormalizer::inverse(double y) const {
    return lo_ + std::clamp(y, 0.0, 1.0) * (hi_ - lo_);
}

} // namespace fmore::stats
