#include "fmore/stats/empirical_cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    if (sorted_.size() < 2)
        throw std::invalid_argument("EmpiricalCdf: need at least 2 samples");
    std::sort(sorted_.begin(), sorted_.end());
    if (sorted_.front() == sorted_.back())
        throw std::invalid_argument("EmpiricalCdf: all samples identical");
}

double EmpiricalCdf::cdf(double x) const {
    if (x <= sorted_.front()) return 0.0;
    if (x >= sorted_.back()) return 1.0;
    // Position of x among order statistics; interpolate the plotting
    // positions i/(n-1) so that F(min)=0 and F(max)=1.
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    const auto hi_idx = static_cast<std::size_t>(it - sorted_.begin());
    const std::size_t lo_idx = hi_idx - 1;
    const double x_lo = sorted_[lo_idx];
    const double x_hi = sorted_[hi_idx];
    const double n1 = static_cast<double>(sorted_.size() - 1);
    const double f_lo = static_cast<double>(lo_idx) / n1;
    const double f_hi = static_cast<double>(hi_idx) / n1;
    if (x_hi == x_lo) return f_hi;
    return f_lo + (f_hi - f_lo) * (x - x_lo) / (x_hi - x_lo);
}

double EmpiricalCdf::pdf(double x) const {
    if (x < sorted_.front() || x > sorted_.back()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    auto hi_idx = static_cast<std::size_t>(it - sorted_.begin());
    if (hi_idx == 0) hi_idx = 1;
    if (hi_idx >= sorted_.size()) hi_idx = sorted_.size() - 1;
    const std::size_t lo_idx = hi_idx - 1;
    const double dx = sorted_[hi_idx] - sorted_[lo_idx];
    const double n1 = static_cast<double>(sorted_.size() - 1);
    if (dx <= 0.0) return 0.0;
    return (1.0 / n1) / dx;
}

double EmpiricalCdf::quantile(double p) const {
    p = std::clamp(p, 0.0, 1.0);
    const double n1 = static_cast<double>(sorted_.size() - 1);
    const double pos = p * n1;
    const auto lo_idx = static_cast<std::size_t>(std::floor(pos));
    if (lo_idx >= sorted_.size() - 1) return sorted_.back();
    const double frac = pos - static_cast<double>(lo_idx);
    return sorted_[lo_idx] + frac * (sorted_[lo_idx + 1] - sorted_[lo_idx]);
}

double EmpiricalCdf::ks_distance(const Distribution& reference) const {
    double worst = 0.0;
    for (const double x : sorted_) {
        worst = std::max(worst, std::fabs(cdf(x) - reference.cdf(x)));
    }
    return worst;
}

} // namespace fmore::stats
