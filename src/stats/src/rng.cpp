#include "fmore/stats/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::stats {

double Rng::uniform(double lo, double hi) {
    if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

bool Rng::bernoulli(double p_true) {
    p_true = std::clamp(p_true, 0.0, 1.0);
    std::bernoulli_distribution dist(p_true);
    return dist(engine_);
}

void Rng::shuffle(std::vector<std::size_t>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: only the first k positions need to be shuffled.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(uniform_int(static_cast<std::int64_t>(i),
                                                            static_cast<std::int64_t>(n - 1)));
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

Rng Rng::split() {
    // splitmix64 finalizer over the next raw output gives a well-separated
    // child stream.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return Rng(z);
}

} // namespace fmore::stats
