#include "fmore/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::stats {

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), counts_(bin_count, 0) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bin_count == 0) throw std::invalid_argument("Histogram: need at least 1 bin");
}

void Histogram::add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::ptrdiff_t>(std::floor(t * static_cast<double>(counts_.size())));
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
    for (const double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::count: bad bin");
    return counts_[bin];
}

double Histogram::proportion(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_range: bad bin");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return {lo_ + static_cast<double>(bin) * width, lo_ + static_cast<double>(bin + 1) * width};
}

double Histogram::bin_center(std::size_t bin) const {
    const auto [a, b] = bin_range(bin);
    return 0.5 * (a + b);
}

} // namespace fmore::stats
