#pragma once

#include <vector>

#include "fmore/ml/tensor.hpp"

namespace fmore::ml {

/// Fused softmax + cross-entropy over logits [B, C] with integer labels.
/// forward() returns mean loss; backward() returns d(loss)/d(logits)
/// (already divided by the batch size).
class SoftmaxCrossEntropy {
public:
    double forward(const Tensor& logits, const std::vector<int>& labels);
    [[nodiscard]] Tensor backward() const;

    /// Row-wise argmax of the last forward's probabilities.
    [[nodiscard]] std::vector<int> predictions() const;

private:
    Tensor probs_;
    std::vector<int> labels_;
};

/// Fraction of correct predictions.
double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels);

} // namespace fmore::ml
