#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// Single-layer LSTM classifier backbone: input [B, T, E], output the final
/// hidden state [B, H]. Full backpropagation through time.
///
/// Gate layout in the fused weight matrices (rows 0..4H): input gate i,
/// forget gate f, candidate g, output gate o:
///     z_t = W x_t + U h_{t-1} + b
///     i = sigmoid(z[0:H]), f = sigmoid(z[H:2H]),
///     g = tanh(z[2H:3H]),  o = sigmoid(z[3H:4H])
///     c_t = f * c_{t-1} + i * g,   h_t = o * tanh(c_t)
class Lstm final : public Layer {
public:
    Lstm(std::size_t input_dim, std::size_t hidden_dim);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    std::vector<ParamBlock> parameters() override;
    void initialize(stats::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Lstm>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Lstm"; }

    [[nodiscard]] std::size_t hidden_dim() const { return hidden_; }

private:
    std::size_t input_;
    std::size_t hidden_;
    std::vector<float> w_;  // [4H, E] input weights
    std::vector<float> u_;  // [4H, H] recurrent weights
    std::vector<float> b_;  // [4H]
    std::vector<float> w_grad_;
    std::vector<float> u_grad_;
    std::vector<float> b_grad_;

    // Caches for BPTT, laid out [T+1 or T][B, ...].
    Tensor cached_input_;           // [B, T, E]
    std::vector<float> gates_;      // T * B * 4H post-activation gate values
    std::vector<float> cells_;      // (T+1) * B * H cell states (c_0 = 0)
    std::vector<float> hiddens_;    // (T+1) * B * H hidden states (h_0 = 0)
    std::size_t cached_batch_ = 0;
    std::size_t cached_seq_ = 0;

    // Scratch of the GEMM path (gemm.hpp): transposed weights for the gate
    // matmuls and the per-timestep pre-activation gradient block.
    std::vector<float> wt_;  // [E, 4H]
    std::vector<float> ut_;  // [H, 4H]
    std::vector<float> dz_all_; // [B, 4H]
};

} // namespace fmore::ml
