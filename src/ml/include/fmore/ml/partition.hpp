#pragma once

#include <vector>

#include "fmore/ml/dataset.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::ml {

/// One client's shard of the global dataset.
struct ClientShard {
    std::vector<std::size_t> indices;     ///< sample indices into the dataset
    std::vector<std::size_t> label_count; ///< histogram over classes
    /// Number of classes with at least one sample — the paper's "data
    /// category" quality q2 is distinct_labels / num_classes.
    [[nodiscard]] std::size_t distinct_labels() const;
    [[nodiscard]] double category_proportion(std::size_t num_classes) const;
};

/// Label-sharded non-IID partition in the style of McMahan et al. (the
/// paper: "non-IID data distribution of sample data is studied across
/// different edge nodes"). The dataset is sorted by label, cut into
/// `clients * shards_per_client` contiguous shards, and each client gets
/// `shards_per_client` random shards — so most clients see only a few
/// classes.
std::vector<ClientShard> partition_non_iid(const Dataset& data, std::size_t clients,
                                           std::size_t shards_per_client, stats::Rng& rng);

/// Variable-shards variant: client c draws its shard count uniformly from
/// [shards_lo, shards_hi], so clients differ in label diversity as well as
/// data volume — the heterogeneity FMore's q2 (category proportion) prices.
std::vector<ClientShard> partition_non_iid_variable(const Dataset& data,
                                                    std::size_t clients,
                                                    std::size_t shards_lo,
                                                    std::size_t shards_hi, stats::Rng& rng);

/// IID control partition: a random equal split.
std::vector<ClientShard> partition_iid(const Dataset& data, std::size_t clients,
                                       stats::Rng& rng);

/// Rescale client shard sizes to a target distribution: each client keeps a
/// random subset of its shard so that sizes land in [min_size, max_size]
/// (uniformly drawn), emulating the paper's heterogeneous data sizes
/// ("data size ... over the range of [1000, 5000]"). Shards smaller than
/// the drawn target keep everything. Label histograms are rebuilt from
/// `data`.
void resize_shards(std::vector<ClientShard>& shards, const Dataset& data,
                   std::size_t min_size, std::size_t max_size, stats::Rng& rng);

} // namespace fmore::ml
