#pragma once

#include <memory>
#include <vector>

#include "fmore/ml/dataset.hpp"
#include "fmore/ml/layer.hpp"
#include "fmore/ml/loss.hpp"

namespace fmore::ml {

/// Metrics from one local training epoch.
struct TrainStats {
    double mean_loss = 0.0;
    std::size_t samples = 0;
};

/// Metrics from one evaluation pass.
struct EvalStats {
    double mean_loss = 0.0;
    double accuracy = 0.0;
    std::size_t samples = 0;
};

/// Evaluation minibatch size. One definition shared by `Model::evaluate`
/// and the coordinator's parallel evaluator: batch boundaries are part of
/// the serial-vs-parallel bit-identity contract, so the partitioning must
/// never fork.
inline constexpr std::size_t kEvalBatch = 128;

/// Raw sums of one evaluation minibatch — the parallel evaluator's unit of
/// work. Batch records are reduced in fixed batch order so totals are
/// bit-identical no matter how batches were distributed over workers.
struct EvalBatch {
    double mean_loss = 0.0;
    std::size_t hits = 0;
    std::size_t samples = 0;
};

/// Sequential container of layers with the flat-parameter interface FedAvg
/// needs (Eq. 3 of the paper averages whole parameter vectors).
class Model {
public:
    explicit Model(std::uint64_t seed = 42);
    Model(Model&& other) noexcept;
    Model& operator=(Model&& other) noexcept;

    /// Append a layer; it is initialized immediately from the model RNG.
    void add(std::unique_ptr<Layer> layer);

    /// Deep copy: layers (parameters, gradients, caches) and the RNG state,
    /// with the copies re-attached to the new model's own RNG. The backbone
    /// of round-level parallelism: each worker trains its own clone.
    [[nodiscard]] Model clone() const;

    /// Reset the model RNG to a fresh seed. Per-client training streams in
    /// the parallel coordinator are derived this way, so a client's local
    /// SGD (minibatch shuffles, dropout masks) is a pure function of
    /// (global parameters, client seed) — independent of which thread runs
    /// it or what trained before.
    void reseed(std::uint64_t seed);

    /// Run the layer stack. The returned reference points into the model's
    /// persistent activation chain (one reused slot per layer — the
    /// scratch arena of the in-place elementwise layers) and is valid
    /// until the next forward call; copy it to keep it.
    [[nodiscard]] const Tensor& forward(const Tensor& input, bool training);
    void backward(const Tensor& grad_loss);
    void zero_grad();
    /// Vanilla SGD update: w -= lr * grad (paper Eq. 2, eta = step size).
    void sgd_step(double learning_rate);

    [[nodiscard]] std::size_t parameter_count();
    [[nodiscard]] std::vector<float> get_parameters();
    void set_parameters(const std::vector<float>& flat);

    /// One local epoch of minibatch SGD over the given sample indices
    /// (shuffled internally).
    TrainStats train_epoch(const Dataset& data, const std::vector<std::size_t>& indices,
                           std::size_t batch_size, double learning_rate);

    /// Loss/accuracy over the given indices (all samples when empty).
    EvalStats evaluate(const Dataset& data, const std::vector<std::size_t>& indices = {});

    /// Evaluate minibatches [batch_lo, batch_hi) of `indices` (split into
    /// `batch_size`-sample batches, last one ragged) into
    /// `out[batch_lo..batch_hi)`. `evaluate` == evaluate_batches over the
    /// whole range + `reduce_eval_batches`; coordinators call this from
    /// several workers (each with its own model clone) over disjoint
    /// chunks.
    void evaluate_batches(const Dataset& data, const std::vector<std::size_t>& indices,
                          std::size_t batch_size, std::size_t batch_lo,
                          std::size_t batch_hi, EvalBatch* out);

    [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

private:
    std::vector<ParamBlock> all_parameters();
    void reattach_layers();

    std::vector<std::unique_ptr<Layer>> layers_;
    stats::Rng rng_;
    SoftmaxCrossEntropy loss_;
    /// Persistent activation/gradient slots (one per layer), reused across
    /// forward/backward calls so in-place layers never allocate. Pure
    /// scratch: moves carry them along, clones start fresh.
    std::vector<Tensor> acts_;
    std::vector<Tensor> grads_;
};

/// Fold per-batch eval records (in batch order) into totals — the exact
/// accumulation the serial `Model::evaluate` performs, so parallel and
/// serial evaluation agree bit-for-bit.
[[nodiscard]] EvalStats reduce_eval_batches(const std::vector<EvalBatch>& batches);

} // namespace fmore::ml
