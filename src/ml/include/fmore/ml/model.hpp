#pragma once

#include <memory>
#include <vector>

#include "fmore/ml/dataset.hpp"
#include "fmore/ml/layer.hpp"
#include "fmore/ml/loss.hpp"

namespace fmore::ml {

/// Metrics from one local training epoch.
struct TrainStats {
    double mean_loss = 0.0;
    std::size_t samples = 0;
};

/// Metrics from one evaluation pass.
struct EvalStats {
    double mean_loss = 0.0;
    double accuracy = 0.0;
    std::size_t samples = 0;
};

/// Sequential container of layers with the flat-parameter interface FedAvg
/// needs (Eq. 3 of the paper averages whole parameter vectors).
class Model {
public:
    explicit Model(std::uint64_t seed = 42);
    Model(Model&&) = default;
    Model& operator=(Model&&) = default;

    /// Append a layer; it is initialized immediately from the model RNG.
    void add(std::unique_ptr<Layer> layer);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training);
    void backward(const Tensor& grad_loss);
    void zero_grad();
    /// Vanilla SGD update: w -= lr * grad (paper Eq. 2, eta = step size).
    void sgd_step(double learning_rate);

    [[nodiscard]] std::size_t parameter_count();
    [[nodiscard]] std::vector<float> get_parameters();
    void set_parameters(const std::vector<float>& flat);

    /// One local epoch of minibatch SGD over the given sample indices
    /// (shuffled internally).
    TrainStats train_epoch(const Dataset& data, const std::vector<std::size_t>& indices,
                           std::size_t batch_size, double learning_rate);

    /// Loss/accuracy over the given indices (all samples when empty).
    EvalStats evaluate(const Dataset& data, const std::vector<std::size_t>& indices = {});

    [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

private:
    std::vector<ParamBlock> all_parameters();

    std::vector<std::unique_ptr<Layer>> layers_;
    stats::Rng rng_;
    SoftmaxCrossEntropy loss_;
};

} // namespace fmore::ml
