#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// 2-D convolution, stride 1, valid padding. Input [B, C, H, W], kernel
/// [OC, C, KH, KW], output [B, OC, H-KH+1, W-KW+1]. The default path
/// lowers each image through im2col onto the `ml::gemm` micro-kernel
/// (gemm.hpp); `FMORE_NAIVE_KERNELS=1` selects the original direct loops,
/// which the fast path matches bit-for-bit.
class Conv2d final : public Layer {
public:
    Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    std::vector<ParamBlock> parameters() override;
    void initialize(stats::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Conv2d>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Conv2d"; }

private:
    std::size_t in_c_;
    std::size_t out_c_;
    std::size_t k_;
    std::vector<float> weight_;      // [out_c, in_c, k, k]
    std::vector<float> bias_;        // [out_c]
    std::vector<float> weight_grad_;
    std::vector<float> bias_grad_;
    Tensor cached_input_;
    std::vector<float> col_;         // im2col scratch, reused across batches
};

} // namespace fmore::ml
