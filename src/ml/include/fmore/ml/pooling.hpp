#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// 2x2 max pooling with stride 2 over [B, C, H, W]; odd trailing rows or
/// columns are dropped (floor semantics, as in the paper's Keras-style
/// models).
class MaxPool2d final : public Layer {
public:
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    void forward_into(const Tensor& input, Tensor& out, bool training) override;
    void backward_into(const Tensor& grad_output, Tensor& grad_input) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<MaxPool2d>(*this);
    }
    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

private:
    std::vector<std::size_t> cached_shape_;
    std::vector<std::size_t> argmax_; // flat index into the input per output cell
};

} // namespace fmore::ml
