#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// Token embedding: input [B, T] of token ids (stored as floats), output
/// [B, T, E]. First layer of the text (LSTM) models; backward scatters
/// gradients into the used rows and returns an empty tensor (no upstream
/// layer).
class Embedding final : public Layer {
public:
    Embedding(std::size_t vocab_size, std::size_t embed_dim);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    std::vector<ParamBlock> parameters() override;
    void initialize(stats::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Embedding>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Embedding"; }

private:
    std::size_t vocab_;
    std::size_t dim_;
    std::vector<float> table_;      // [vocab, dim]
    std::vector<float> table_grad_;
    std::vector<std::size_t> cached_ids_;
    std::vector<std::size_t> cached_shape_;
};

} // namespace fmore::ml
