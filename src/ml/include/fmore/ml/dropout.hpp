#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// Inverted dropout: at train time each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); at eval time
/// it is the identity. The paper's CNN/LSTM stacks use dropout between
/// blocks.
class Dropout final : public Layer {
public:
    explicit Dropout(double rate);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    void forward_into(const Tensor& input, Tensor& out, bool training) override;
    void backward_into(const Tensor& grad_output, Tensor& grad_input) override;
    void attach_rng(stats::Rng* rng) override { rng_ = rng; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Dropout>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Dropout"; }

private:
    double rate_;
    stats::Rng* rng_ = nullptr;
    std::vector<float> mask_;
};

} // namespace fmore::ml
