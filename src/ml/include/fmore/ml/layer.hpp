#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fmore/ml/tensor.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::ml {

/// A trainable parameter block: values plus the gradient accumulated by the
/// most recent backward pass. Layers expose their blocks so the model can
/// flatten/restore parameters (FedAvg needs that) and run SGD generically.
struct ParamBlock {
    std::vector<float>* values = nullptr;
    std::vector<float>* grads = nullptr;
};

/// Base class for all layers. The training loop is single-threaded per
/// model: forward caches whatever backward needs, and backward must be
/// called with the gradient of the loss w.r.t. this layer's output,
/// returning the gradient w.r.t. its input. Concurrency happens one level
/// up — `Model::clone()` gives each worker its own layer stack.
class Layer {
public:
    virtual ~Layer() = default;

    [[nodiscard]] virtual Tensor forward(const Tensor& input, bool training) = 0;
    [[nodiscard]] virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Buffer-reusing twins of forward/backward: results land in the
    /// caller-owned tensor, whose storage is reused across calls. The
    /// model's activation chain keeps one persistent slot per layer, so a
    /// layer that overrides these (the elementwise family: ReLU, Tanh,
    /// Flatten, MaxPool2d, Dropout) stops paying one tensor allocation per
    /// call — the ROADMAP's "scratch arena" for the cheap layers. The
    /// defaults delegate to the allocating versions (then move into `out`),
    /// so existing custom layers are unaffected. Arithmetic is identical
    /// by contract: outputs are bit-identical to forward/backward.
    virtual void forward_into(const Tensor& input, Tensor& out, bool training) {
        out = forward(input, training);
    }
    virtual void backward_into(const Tensor& grad_output, Tensor& grad_input) {
        grad_input = backward(grad_output);
    }

    /// Deep copy (parameters, gradients and caches). The copy still points
    /// at the source's RNG until the owning model re-attaches its own —
    /// `Model::clone()` does; manual callers must `attach_rng` themselves.
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

    /// Parameter blocks (empty for stateless layers).
    virtual std::vector<ParamBlock> parameters() { return {}; }

    /// Initialize parameters (weight init draws from `rng`); stateless
    /// layers ignore it. Called once when the layer joins a model.
    virtual void initialize(stats::Rng& /*rng*/) {}

    /// Stochastic layers (dropout) draw from the model's generator.
    virtual void attach_rng(stats::Rng* /*rng*/) {}

    [[nodiscard]] virtual std::string name() const = 0;
};

} // namespace fmore::ml
