#pragma once

/// @file gemm.hpp
/// The micro-kernel substrate of the ml layer: a register-blocked,
/// cache-friendly float GEMM plus the im2col/col2im lowering that turns
/// convolutions into matrix multiplies. `Conv2d`, `Dense` and `Lstm`'s gate
/// matmuls are all built on these kernels; `FMORE_NAIVE_KERNELS=1` (or
/// `set_naive_kernels`) switches every layer back to the original textbook
/// loops, which stay compiled as the reference implementation.
///
/// ## Bit-exactness contract
///
/// The fast path is not merely "close" to the naive loops — it is
/// bit-identical. Every kernel accumulates each output element's terms in
/// the exact summation order of the reference loops (ascending k, single
/// running accumulator seeded from C), and vectorization is only applied
/// across *independent* accumulators (the unit-stride j dimension), which
/// never reassociates any single element's sum. Fused-multiply-add
/// contraction, when the compiler applies it, applies to the identical
/// `acc += a * b` operation in both paths. This is what lets the naive
/// escape hatch double as an exact equivalence oracle in tests, and keeps
/// every experiment's metrics unchanged by the kernel rewrite.

#include <cstddef>

namespace fmore::ml {

/// True when the original textbook loops should be used instead of the
/// GEMM-backed kernels. Defaults to the `FMORE_NAIVE_KERNELS` environment
/// variable ("1"/"true" enables); `set_naive_kernels` overrides at runtime.
[[nodiscard]] bool use_naive_kernels();

/// Runtime override for tests/benches: 0 = force fast kernels, 1 = force
/// naive loops, -1 = back to the environment default.
void set_naive_kernels(int mode);

/// C[i*c_row + j] += sum_{k} A[i*a_row + k*a_col] * B[k*b_row + j]
/// for i in [0,m), j in [0,n), k in [0,kk).
///
/// B and C are indexed with unit stride in j (the vectorized dimension);
/// A may be any strided layout (a_col = leading-dimension stride expresses
/// a transposed A without materializing it). Accumulation per element is a
/// single running sum over ascending k seeded from the existing C value —
/// the bit-exact order of a textbook `acc += a*b` loop.
void gemm_acc(std::size_t m, std::size_t n, std::size_t kk,
              const float* a, std::ptrdiff_t a_row, std::ptrdiff_t a_col,
              const float* b, std::ptrdiff_t b_row,
              float* c, std::ptrdiff_t c_row);

/// `gemm_acc` with the k dimension processed in consecutive groups of
/// `group` terms: each group is summed in a fresh accumulator that is then
/// added to the running C value. Matches reference loops that keep a local
/// per-block accumulator (Conv2d's per-input-channel partial sums).
/// `group` == 0 or >= kk degenerates to `gemm_acc`.
void gemm_acc_grouped(std::size_t m, std::size_t n, std::size_t kk,
                      const float* a, std::ptrdiff_t a_row, std::ptrdiff_t a_col,
                      const float* b, std::ptrdiff_t b_row,
                      float* c, std::ptrdiff_t c_row, std::size_t group);

/// Geometry of one 2-D convolution (single image). `Conv2d` itself is
/// stride-1/valid; the stride/pad generality is exercised by the generic
/// helpers and their tests so future layers can reuse the lowering.
struct ConvShape {
    std::size_t in_c = 1;
    std::size_t h = 0, w = 0;      ///< input spatial dims
    std::size_t kh = 0, kw = 0;    ///< kernel dims
    std::size_t stride_h = 1, stride_w = 1;
    std::size_t pad_h = 0, pad_w = 0;

    [[nodiscard]] std::size_t out_h() const {
        return (h + 2 * pad_h - kh) / stride_h + 1;
    }
    [[nodiscard]] std::size_t out_w() const {
        return (w + 2 * pad_w - kw) / stride_w + 1;
    }
    /// Rows of the column matrix: in_c * kh * kw.
    [[nodiscard]] std::size_t col_rows() const { return in_c * kh * kw; }
    /// Columns of the column matrix: out_h * out_w.
    [[nodiscard]] std::size_t col_cols() const { return out_h() * out_w(); }
};

/// Lower one image x[in_c][h][w] to col[col_rows][col_cols] (row index
/// (ic*kh + ky)*kw + kx, column index oy*out_w + ox). Out-of-bounds taps
/// (padding) contribute 0.
void im2col(const float* x, const ConvShape& s, float* col);

/// Transposed layout: colt[col_cols][col_rows] — the B operand for the
/// weight-gradient GEMM, where the patch dimension must be unit stride.
void im2col_t(const float* x, const ConvShape& s, float* colt);

/// Adjoint of im2col: scatter-add col[col_rows][col_cols] back into
/// gx[in_c][h][w] (gx is accumulated into, not overwritten).
void col2im_add(const float* col, const ConvShape& s, float* gx);

/// Convolution forward for one image via im2col + grouped GEMM:
/// y[oc][p] = bias[oc] + sum over the patch of weight[oc][ic][ky][kx] *
/// x-tap, with a per-input-channel partial accumulator (`group = kh*kw`) so
/// the result is bit-identical to the direct per-channel loops. `col` is
/// caller scratch of size col_rows()*col_cols(); y is overwritten.
void conv2d_forward_gemm(const float* x, const float* weight, const float* bias,
                         std::size_t out_c, const ConvShape& s, float* col, float* y);

/// Convolution input-gradient for one image, bit-identical to the direct
/// scatter loops: per (oc, ic) the kernel taps are walked in descending
/// (ky, kx) order — which is exactly the ascending output-pixel order of
/// the reference — with a vectorized saxpy over each output row.
/// Stride-1 only (what Conv2d uses); gx is accumulated into.
void conv2d_input_grad(const float* gy, const float* weight, std::size_t out_c,
                       const ConvShape& s, float* gx);

} // namespace fmore::ml
