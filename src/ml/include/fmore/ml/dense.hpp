#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// Fully connected layer: y = x W^T + b with x of shape [B, in], W of shape
/// [out, in], b of shape [out]. The default path runs on the `ml::gemm`
/// micro-kernel (bit-identical to the textbook loops, which
/// `FMORE_NAIVE_KERNELS=1` keeps selectable as the reference).
class Dense final : public Layer {
public:
    Dense(std::size_t in_features, std::size_t out_features);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    std::vector<ParamBlock> parameters() override;
    void initialize(stats::Rng& rng) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Dense>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Dense"; }

    [[nodiscard]] std::size_t in_features() const { return in_; }
    [[nodiscard]] std::size_t out_features() const { return out_; }

private:
    std::size_t in_;
    std::size_t out_;
    std::vector<float> weight_;      // [out, in]
    std::vector<float> bias_;        // [out]
    std::vector<float> weight_grad_;
    std::vector<float> bias_grad_;
    Tensor cached_input_;
    std::vector<float> wt_;          // W^T scratch for the forward GEMM
};

} // namespace fmore::ml
