#pragma once

#include "fmore/ml/dataset.hpp"
#include "fmore/stats/rng.hpp"

namespace fmore::ml {

/// Prototype-plus-noise image generator — the offline stand-in for
/// MNIST-O / MNIST-F / CIFAR-10 (see DESIGN.md, substitutions table).
///
/// Each class gets a smooth random prototype image; a sample is its class
/// prototype blended with `prototype_overlap` of a shared confuser pattern
/// plus Gaussian pixel noise. Raising `noise` / `prototype_overlap` lowers
/// the achievable accuracy ceiling, which is how the three image datasets
/// of the paper are ranked (MNIST-O easiest, CIFAR-10 hardest).
struct ImageDatasetSpec {
    std::size_t classes = 10;
    std::size_t channels = 1;
    std::size_t height = 12;
    std::size_t width = 12;
    std::size_t samples = 2000;
    double noise = 0.35;             ///< stddev of additive pixel noise
    double prototype_overlap = 0.0;  ///< blend weight of the shared confuser
};

Dataset make_synthetic_images(const ImageDatasetSpec& spec, stats::Rng& rng);

/// Canned specs mirroring the paper's four datasets (difficulty ordering
/// MNIST-O < MNIST-F < CIFAR-10; HPNews is text, below).
ImageDatasetSpec mnist_o_spec(std::size_t samples);
ImageDatasetSpec mnist_f_spec(std::size_t samples);
ImageDatasetSpec cifar10_spec(std::size_t samples);

/// Class-conditional Markov-chain text generator — the stand-in for the
/// HPNews headline dataset. Each class owns a random transition matrix over
/// the vocabulary (sharpness controls how distinguishable classes are); a
/// sample is a length-`seq_len` token walk.
struct TextDatasetSpec {
    std::size_t classes = 10;
    std::size_t vocab = 96;
    std::size_t seq_len = 12;
    std::size_t samples = 2000;
    double sharpness = 0.25; ///< 0 = uniform chains (impossible task), 1 = nearly deterministic
};

Dataset make_synthetic_text(const TextDatasetSpec& spec, stats::Rng& rng);

TextDatasetSpec hpnews_spec(std::size_t samples);

} // namespace fmore::ml
