#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace fmore::ml {

/// Dense row-major float tensor — the minimal substrate the FL engine
/// needs. Shapes are runtime vectors; layers do their own index math for
/// speed. No views/broadcasting: batches are materialized explicitly.
class Tensor {
public:
    Tensor() = default;
    explicit Tensor(std::vector<std::size_t> shape);
    Tensor(std::vector<std::size_t> shape, std::vector<float> data);

    static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }

    [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
    [[nodiscard]] std::size_t rank() const { return shape_.size(); }
    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] std::size_t dim(std::size_t axis) const;

    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }
    [[nodiscard]] std::vector<float>& storage() { return data_; }
    [[nodiscard]] const std::vector<float>& storage() const { return data_; }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// Reinterpret with a new shape of identical element count.
    [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

    /// Reshape THIS tensor in place, resizing storage to the new volume.
    /// Storage capacity is kept, which is what lets the in-place layer
    /// protocol reuse one output buffer across calls without allocating.
    /// New elements (if the volume grew) are value-initialized; existing
    /// ones keep their bytes — callers overwrite them.
    void reshape_to(const std::vector<std::size_t>& new_shape);

    void fill(float value);

    /// Elementwise checks used in tests.
    [[nodiscard]] bool all_finite() const;

private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/// Product of a shape vector.
std::size_t shape_volume(const std::vector<std::size_t>& shape);

} // namespace fmore::ml
