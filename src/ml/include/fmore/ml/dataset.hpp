#pragma once

#include <cstddef>
#include <vector>

#include "fmore/ml/tensor.hpp"

namespace fmore::ml {

/// In-memory labelled dataset. Features are stored flat; `sample_shape` is
/// the per-sample tensor shape (e.g. {1, 12, 12} for mono images or {16}
/// for token sequences).
struct Dataset {
    std::vector<std::size_t> sample_shape;
    std::vector<float> features;
    std::vector<int> labels;
    std::size_t num_classes = 0;

    [[nodiscard]] std::size_t size() const { return labels.size(); }
    [[nodiscard]] std::size_t sample_volume() const { return shape_volume(sample_shape); }

    /// Materialize a batch tensor [B, ...sample_shape] for the given sample
    /// indices.
    [[nodiscard]] Tensor gather(const std::vector<std::size_t>& indices) const;
    [[nodiscard]] std::vector<int> gather_labels(const std::vector<std::size_t>& indices) const;

    /// Append one sample (used by generators).
    void push_sample(const std::vector<float>& feat, int label);
};

} // namespace fmore::ml
