#pragma once

#include "fmore/ml/model.hpp"

namespace fmore::ml {

/// Shape descriptor for image models.
struct ImageSpec {
    std::size_t channels = 1;
    std::size_t height = 12;
    std::size_t width = 12;
    std::size_t classes = 10;
};

/// Shape descriptor for sequence models.
struct TextSpec {
    std::size_t vocab = 96;
    std::size_t seq_len = 12;
    std::size_t classes = 10;
};

/// Compact analogue of the paper's MNIST CNN (conv -> pool -> dropout ->
/// dense -> dense): Conv(8, 3x3) -> ReLU -> MaxPool -> Dropout(0.25) ->
/// Flatten -> Dense(64) -> ReLU -> Dropout(0.25) -> Dense(classes).
Model make_cnn(const ImageSpec& spec, std::uint64_t seed);

/// Deeper variant mirroring the paper's CIFAR-10 CNN (two conv blocks).
Model make_cnn_deep(const ImageSpec& spec, std::uint64_t seed);

/// Plain MLP baseline: Flatten -> Dense(64) -> ReLU -> Dense(classes).
Model make_mlp(const ImageSpec& spec, std::uint64_t seed);

/// LSTM text classifier mirroring the paper's HPNews model:
/// Embedding(vocab, 16) -> LSTM(32) -> Dense(classes).
Model make_lstm_classifier(const TextSpec& spec, std::uint64_t seed);

} // namespace fmore::ml
