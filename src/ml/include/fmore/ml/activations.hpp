#pragma once

#include "fmore/ml/layer.hpp"

namespace fmore::ml {

/// Elementwise rectified linear unit.
class ReLU final : public Layer {
public:
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    void forward_into(const Tensor& input, Tensor& out, bool training) override;
    void backward_into(const Tensor& grad_output, Tensor& grad_input) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<ReLU>(*this);
    }
    [[nodiscard]] std::string name() const override { return "ReLU"; }

private:
    Tensor cached_input_;
};

/// Elementwise tanh (used standalone in small MLP heads; the LSTM has its
/// own fused gates).
class Tanh final : public Layer {
public:
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    void forward_into(const Tensor& input, Tensor& out, bool training) override;
    void backward_into(const Tensor& grad_output, Tensor& grad_input) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Tanh>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Tanh"; }

private:
    Tensor cached_output_;
};

/// Flatten [B, ...] to [B, volume].
class Flatten final : public Layer {
public:
    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    void forward_into(const Tensor& input, Tensor& out, bool training) override;
    void backward_into(const Tensor& grad_output, Tensor& grad_input) override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Flatten>(*this);
    }
    [[nodiscard]] std::string name() const override { return "Flatten"; }

private:
    std::vector<std::size_t> cached_shape_;
};

} // namespace fmore::ml
