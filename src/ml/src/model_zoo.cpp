#include "fmore/ml/model_zoo.hpp"

#include "fmore/ml/activations.hpp"
#include "fmore/ml/conv2d.hpp"
#include "fmore/ml/dense.hpp"
#include "fmore/ml/dropout.hpp"
#include "fmore/ml/embedding.hpp"
#include "fmore/ml/lstm.hpp"
#include "fmore/ml/pooling.hpp"

namespace fmore::ml {

Model make_cnn(const ImageSpec& spec, std::uint64_t seed) {
    Model model(seed);
    model.add(std::make_unique<Conv2d>(spec.channels, 8, 3));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<MaxPool2d>());
    model.add(std::make_unique<Dropout>(0.25));
    model.add(std::make_unique<Flatten>());
    const std::size_t oh = (spec.height - 2) / 2;
    const std::size_t ow = (spec.width - 2) / 2;
    model.add(std::make_unique<Dense>(8 * oh * ow, 64));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dropout>(0.25));
    model.add(std::make_unique<Dense>(64, spec.classes));
    return model;
}

Model make_cnn_deep(const ImageSpec& spec, std::uint64_t seed) {
    Model model(seed);
    model.add(std::make_unique<Conv2d>(spec.channels, 8, 3));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<MaxPool2d>());
    model.add(std::make_unique<Conv2d>(8, 16, 3));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dropout>(0.25));
    model.add(std::make_unique<Flatten>());
    const std::size_t h1 = (spec.height - 2) / 2;
    const std::size_t w1 = (spec.width - 2) / 2;
    const std::size_t h2 = h1 - 2;
    const std::size_t w2 = w1 - 2;
    model.add(std::make_unique<Dense>(16 * h2 * w2, 96));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dropout>(0.25));
    model.add(std::make_unique<Dense>(96, spec.classes));
    return model;
}

Model make_mlp(const ImageSpec& spec, std::uint64_t seed) {
    Model model(seed);
    model.add(std::make_unique<Flatten>());
    model.add(std::make_unique<Dense>(spec.channels * spec.height * spec.width, 64));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dense>(64, spec.classes));
    return model;
}

Model make_lstm_classifier(const TextSpec& spec, std::uint64_t seed) {
    Model model(seed);
    model.add(std::make_unique<Embedding>(spec.vocab, 16));
    model.add(std::make_unique<Lstm>(16, 32));
    model.add(std::make_unique<Dense>(32, spec.classes));
    return model;
}

} // namespace fmore::ml
