#include "fmore/ml/embedding.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::ml {

Embedding::Embedding(std::size_t vocab_size, std::size_t embed_dim)
    : vocab_(vocab_size),
      dim_(embed_dim),
      table_(vocab_size * embed_dim, 0.0F),
      table_grad_(vocab_size * embed_dim, 0.0F) {
    if (vocab_ == 0 || dim_ == 0) throw std::invalid_argument("Embedding: zero-sized");
}

void Embedding::initialize(stats::Rng& rng) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
    for (float& w : table_) w = static_cast<float>(rng.normal(0.0, scale));
}

Tensor Embedding::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 2)
        throw std::invalid_argument("Embedding::forward: expected [B, T] token ids");
    const std::size_t batch = input.dim(0);
    const std::size_t seq = input.dim(1);
    cached_shape_ = {batch, seq};
    cached_ids_.resize(batch * seq);
    Tensor out({batch, seq, dim_});
    float* y = out.data();
    for (std::size_t i = 0; i < batch * seq; ++i) {
        const auto id = static_cast<std::size_t>(input[i]);
        if (id >= vocab_) throw std::out_of_range("Embedding::forward: token id out of range");
        cached_ids_[i] = id;
        const float* row = table_.data() + id * dim_;
        float* dst = y + i * dim_;
        for (std::size_t e = 0; e < dim_; ++e) dst[e] = row[e];
    }
    return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
    if (grad_output.size() != cached_ids_.size() * dim_)
        throw std::invalid_argument("Embedding::backward: grad shape mismatch");
    const float* gy = grad_output.data();
    for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
        float* grow = table_grad_.data() + cached_ids_[i] * dim_;
        const float* src = gy + i * dim_;
        for (std::size_t e = 0; e < dim_; ++e) grow[e] += src[e];
    }
    // Token ids carry no gradient; return an empty sentinel.
    return Tensor({cached_shape_[0], cached_shape_[1]});
}

std::vector<ParamBlock> Embedding::parameters() {
    return {{&table_, &table_grad_}};
}

} // namespace fmore::ml
