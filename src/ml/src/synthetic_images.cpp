#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fmore/ml/synthetic.hpp"

namespace fmore::ml {

namespace {

/// Smooth random pattern: sum of a few random 2-D cosine waves, one map per
/// channel, scaled to roughly [-1, 1].
std::vector<float> make_prototype(const ImageDatasetSpec& spec, stats::Rng& rng) {
    const std::size_t plane = spec.height * spec.width;
    std::vector<float> proto(spec.channels * plane, 0.0F);
    constexpr int waves = 4;
    for (std::size_t c = 0; c < spec.channels; ++c) {
        for (int k = 0; k < waves; ++k) {
            const double fx = rng.uniform(0.5, 3.0);
            const double fy = rng.uniform(0.5, 3.0);
            const double phase = rng.uniform(0.0, 6.283185307179586);
            const double amp = rng.uniform(0.4, 1.0) / waves;
            for (std::size_t y = 0; y < spec.height; ++y) {
                for (std::size_t x = 0; x < spec.width; ++x) {
                    const double ny = static_cast<double>(y) / static_cast<double>(spec.height);
                    const double nx = static_cast<double>(x) / static_cast<double>(spec.width);
                    proto[c * plane + y * spec.width + x] += static_cast<float>(
                        amp * std::cos(6.283185307179586 * (fx * nx + fy * ny) + phase));
                }
            }
        }
    }
    return proto;
}

} // namespace

Dataset make_synthetic_images(const ImageDatasetSpec& spec, stats::Rng& rng) {
    if (spec.classes < 2) throw std::invalid_argument("make_synthetic_images: classes < 2");
    if (spec.samples == 0) throw std::invalid_argument("make_synthetic_images: no samples");

    Dataset data;
    data.sample_shape = {spec.channels, spec.height, spec.width};
    data.num_classes = spec.classes;
    data.features.reserve(spec.samples * data.sample_volume());
    data.labels.reserve(spec.samples);

    std::vector<std::vector<float>> prototypes;
    prototypes.reserve(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        prototypes.push_back(make_prototype(spec, rng));
    }
    const std::vector<float> confuser = make_prototype(spec, rng);

    const std::size_t vol = data.sample_volume();
    std::vector<float> sample(vol);
    for (std::size_t i = 0; i < spec.samples; ++i) {
        const auto label = static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.classes) - 1));
        const std::vector<float>& proto = prototypes[static_cast<std::size_t>(label)];
        const double blend = spec.prototype_overlap;
        for (std::size_t j = 0; j < vol; ++j) {
            const double base = (1.0 - blend) * proto[j] + blend * confuser[j];
            sample[j] = static_cast<float>(base + rng.normal(0.0, spec.noise));
        }
        data.push_sample(sample, label);
    }
    return data;
}

ImageDatasetSpec mnist_o_spec(std::size_t samples) {
    ImageDatasetSpec spec;
    spec.samples = samples;
    spec.noise = 0.35;
    spec.prototype_overlap = 0.0;
    return spec;
}

ImageDatasetSpec mnist_f_spec(std::size_t samples) {
    ImageDatasetSpec spec;
    spec.samples = samples;
    spec.noise = 0.52;
    spec.prototype_overlap = 0.15;
    return spec;
}

ImageDatasetSpec cifar10_spec(std::size_t samples) {
    ImageDatasetSpec spec;
    spec.samples = samples;
    spec.channels = 3;
    spec.height = 14;
    spec.width = 14;
    spec.noise = 0.80;
    spec.prototype_overlap = 0.35;
    return spec;
}

} // namespace fmore::ml
