#include "fmore/ml/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::ml {

std::size_t shape_volume(const std::vector<std::size_t>& shape) {
    std::size_t volume = 1;
    for (const std::size_t d : shape) volume *= d;
    return volume;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_volume(shape_), 0.0F) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
    if (data_.size() != shape_volume(shape_))
        throw std::invalid_argument("Tensor: data size does not match shape");
}

std::size_t Tensor::dim(std::size_t axis) const {
    if (axis >= shape_.size()) throw std::out_of_range("Tensor::dim: bad axis");
    return shape_[axis];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
    if (shape_volume(new_shape) != data_.size())
        throw std::invalid_argument("Tensor::reshaped: element count mismatch");
    return Tensor(std::move(new_shape), data_);
}

void Tensor::reshape_to(const std::vector<std::size_t>& new_shape) {
    shape_ = new_shape;
    data_.resize(shape_volume(shape_));
}

void Tensor::fill(float value) {
    for (float& x : data_) x = value;
}

bool Tensor::all_finite() const {
    for (const float x : data_) {
        if (!std::isfinite(x)) return false;
    }
    return true;
}

} // namespace fmore::ml
