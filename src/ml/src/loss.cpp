#include "fmore/ml/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::ml {

double SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels) {
    if (logits.rank() != 2)
        throw std::invalid_argument("SoftmaxCrossEntropy: expected [B, C] logits");
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    if (labels.size() != batch)
        throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");

    probs_ = logits;
    labels_ = labels;
    double total_loss = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
        float* row = probs_.data() + b * classes;
        const int label = labels[b];
        if (label < 0 || static_cast<std::size_t>(label) >= classes)
            throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
        float mx = row[0];
        for (std::size_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
            row[c] = std::exp(row[c] - mx);
            denom += row[c];
        }
        const auto inv = static_cast<float>(1.0 / denom);
        for (std::size_t c = 0; c < classes; ++c) row[c] *= inv;
        total_loss += -std::log(std::max(1e-12, static_cast<double>(row[label])));
    }
    return total_loss / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
    if (probs_.size() == 0) throw std::logic_error("SoftmaxCrossEntropy: forward first");
    const std::size_t batch = probs_.dim(0);
    const std::size_t classes = probs_.dim(1);
    Tensor grad = probs_;
    const auto scale = static_cast<float>(1.0 / static_cast<double>(batch));
    for (std::size_t b = 0; b < batch; ++b) {
        float* row = grad.data() + b * classes;
        row[labels_[b]] -= 1.0F;
        for (std::size_t c = 0; c < classes; ++c) row[c] *= scale;
    }
    return grad;
}

std::vector<int> SoftmaxCrossEntropy::predictions() const {
    if (probs_.size() == 0) throw std::logic_error("SoftmaxCrossEntropy: forward first");
    const std::size_t batch = probs_.dim(0);
    const std::size_t classes = probs_.dim(1);
    std::vector<int> preds(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) {
        const float* row = probs_.data() + b * classes;
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes; ++c) {
            if (row[c] > row[best]) best = c;
        }
        preds[b] = static_cast<int>(best);
    }
    return preds;
}

double accuracy(const std::vector<int>& predictions, const std::vector<int>& labels) {
    if (predictions.size() != labels.size() || predictions.empty())
        throw std::invalid_argument("accuracy: size mismatch or empty");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i] == labels[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

} // namespace fmore::ml
