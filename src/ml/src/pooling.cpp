#include "fmore/ml/pooling.hpp"

#include <stdexcept>

namespace fmore::ml {

void MaxPool2d::forward_into(const Tensor& input, Tensor& out, bool /*training*/) {
    if (input.rank() != 4)
        throw std::invalid_argument("MaxPool2d::forward: expected [B, C, H, W]");
    const std::size_t batch = input.dim(0);
    const std::size_t c = input.dim(1);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    const std::size_t oh = h / 2;
    const std::size_t ow = w / 2;
    if (oh == 0 || ow == 0)
        throw std::invalid_argument("MaxPool2d::forward: input too small to pool");
    cached_shape_ = input.shape();

    out.reshape_to({batch, c, oh, ow});
    argmax_.assign(out.size(), 0);
    const float* x = input.data();
    float* y = out.data();
    std::size_t oi = 0;
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const std::size_t plane = (b * c + ch) * h * w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
                    const std::size_t base = plane + (2 * oy) * w + 2 * ox;
                    std::size_t best = base;
                    float best_v = x[base];
                    const std::size_t candidates[3] = {base + 1, base + w, base + w + 1};
                    for (const std::size_t idx : candidates) {
                        if (x[idx] > best_v) {
                            best_v = x[idx];
                            best = idx;
                        }
                    }
                    y[oi] = best_v;
                    argmax_[oi] = best;
                }
            }
        }
    }
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
    Tensor out;
    forward_into(input, out, training);
    return out;
}

void MaxPool2d::backward_into(const Tensor& grad_output, Tensor& grad_input) {
    if (grad_output.size() != argmax_.size())
        throw std::invalid_argument("MaxPool2d::backward: grad shape mismatch");
    grad_input.reshape_to(cached_shape_);
    grad_input.fill(0.0F);  // reused buffer: the scatter below assumes zeros
    float* gx = grad_input.data();
    const float* gy = grad_output.data();
    for (std::size_t i = 0; i < argmax_.size(); ++i) {
        gx[argmax_[i]] += gy[i];
    }
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    Tensor grad_input;
    backward_into(grad_output, grad_input);
    return grad_input;
}

} // namespace fmore::ml
