#include "fmore/ml/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "fmore/ml/gemm.hpp"

namespace fmore::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_(in_features * out_features, 0.0F),
      bias_(out_features, 0.0F),
      weight_grad_(in_features * out_features, 0.0F),
      bias_grad_(out_features, 0.0F) {
    if (in_ == 0 || out_ == 0) throw std::invalid_argument("Dense: zero-sized layer");
}

void Dense::initialize(stats::Rng& rng) {
    // He/Kaiming-uniform: suits the ReLU nets we build.
    const double bound = std::sqrt(6.0 / static_cast<double>(in_));
    for (float& w : weight_) w = static_cast<float>(rng.uniform(-bound, bound));
    for (float& b : bias_) b = 0.0F;
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() < 2 || input.size() % in_ != 0)
        throw std::invalid_argument("Dense::forward: input incompatible with in_features");
    const std::size_t batch = input.size() / in_;
    cached_input_ = input;
    Tensor out({batch, out_});
    const float* x = input.data();
    float* y = out.data();

    if (!use_naive_kernels()) {
        // y = bias; y += x * W^T. A one-off transpose of W keeps the GEMM's
        // vectorized dimension (out) unit-stride in its B operand; it costs
        // O(in*out) against the O(batch*in*out) multiply.
        wt_.resize(in_ * out_);
        for (std::size_t o = 0; o < out_; ++o) {
            const float* wrow = weight_.data() + o * in_;
            for (std::size_t i = 0; i < in_; ++i) wt_[i * out_ + o] = wrow[i];
        }
        for (std::size_t b = 0; b < batch; ++b) {
            float* yb = y + b * out_;
            for (std::size_t o = 0; o < out_; ++o) yb[o] = bias_[o];
        }
        gemm_acc(batch, out_, in_,
                 x, static_cast<std::ptrdiff_t>(in_), 1,
                 wt_.data(), static_cast<std::ptrdiff_t>(out_),
                 y, static_cast<std::ptrdiff_t>(out_));
        return out;
    }

    for (std::size_t b = 0; b < batch; ++b) {
        const float* xb = x + b * in_;
        float* yb = y + b * out_;
        for (std::size_t o = 0; o < out_; ++o) {
            const float* wrow = weight_.data() + o * in_;
            float acc = bias_[o];
            for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * xb[i];
            yb[o] = acc;
        }
    }
    return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
    const std::size_t batch = cached_input_.size() / in_;
    if (grad_output.size() != batch * out_)
        throw std::invalid_argument("Dense::backward: grad shape mismatch");
    Tensor grad_input(cached_input_.shape());
    const float* x = cached_input_.data();
    const float* gy = grad_output.data();
    float* gx = grad_input.data();

    if (!use_naive_kernels()) {
        for (std::size_t b = 0; b < batch; ++b) {
            const float* gyb = gy + b * out_;
            for (std::size_t o = 0; o < out_; ++o) bias_grad_[o] += gyb[o];
        }
        // dW[o][i] += sum_b gy[b][o] * x[b][i]: A indexed transposed via
        // strides, no materialized copy.
        gemm_acc(out_, in_, batch,
                 gy, 1, static_cast<std::ptrdiff_t>(out_),
                 x, static_cast<std::ptrdiff_t>(in_),
                 weight_grad_.data(), static_cast<std::ptrdiff_t>(in_));
        // dx = gy * W (W's [out, in] layout is already what the kernel
        // wants: the summed dimension indexes rows).
        gemm_acc(batch, in_, out_,
                 gy, static_cast<std::ptrdiff_t>(out_), 1,
                 weight_.data(), static_cast<std::ptrdiff_t>(in_),
                 gx, static_cast<std::ptrdiff_t>(in_));
        return grad_input;
    }

    for (std::size_t b = 0; b < batch; ++b) {
        const float* xb = x + b * in_;
        const float* gyb = gy + b * out_;
        float* gxb = gx + b * in_;
        for (std::size_t o = 0; o < out_; ++o) {
            const float g = gyb[o];
            bias_grad_[o] += g;
            float* wgrow = weight_grad_.data() + o * in_;
            const float* wrow = weight_.data() + o * in_;
            for (std::size_t i = 0; i < in_; ++i) {
                wgrow[i] += g * xb[i];
                gxb[i] += g * wrow[i];
            }
        }
    }
    return grad_input;
}

std::vector<ParamBlock> Dense::parameters() {
    return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

} // namespace fmore::ml
