#include "fmore/ml/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fmore::ml {

std::size_t ClientShard::distinct_labels() const {
    std::size_t count = 0;
    for (const std::size_t c : label_count) {
        if (c > 0) ++count;
    }
    return count;
}

double ClientShard::category_proportion(std::size_t num_classes) const {
    if (num_classes == 0) return 0.0;
    return static_cast<double>(distinct_labels()) / static_cast<double>(num_classes);
}

namespace {

void rebuild_label_histogram(ClientShard& shard, const Dataset& data) {
    shard.label_count.assign(data.num_classes, 0);
    for (const std::size_t idx : shard.indices) {
        ++shard.label_count[static_cast<std::size_t>(data.labels[idx])];
    }
}

} // namespace

std::vector<ClientShard> partition_non_iid(const Dataset& data, std::size_t clients,
                                           std::size_t shards_per_client, stats::Rng& rng) {
    if (clients == 0 || shards_per_client == 0)
        throw std::invalid_argument("partition_non_iid: zero clients or shards");
    const std::size_t total_shards = clients * shards_per_client;
    if (data.size() < total_shards)
        throw std::invalid_argument("partition_non_iid: dataset smaller than shard count");

    // Sort sample indices by label (ties in original order).
    std::vector<std::size_t> by_label(data.size());
    std::iota(by_label.begin(), by_label.end(), std::size_t{0});
    std::stable_sort(by_label.begin(), by_label.end(), [&](std::size_t a, std::size_t b) {
        return data.labels[a] < data.labels[b];
    });

    // Cut into contiguous shards and deal them out randomly.
    std::vector<std::size_t> shard_order(total_shards);
    std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
    rng.shuffle(shard_order);

    const std::size_t shard_len = data.size() / total_shards;
    std::vector<ClientShard> result(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        for (std::size_t s = 0; s < shards_per_client; ++s) {
            const std::size_t shard_id = shard_order[c * shards_per_client + s];
            const std::size_t begin = shard_id * shard_len;
            const std::size_t end =
                (shard_id == total_shards - 1) ? data.size() : begin + shard_len;
            for (std::size_t i = begin; i < end; ++i) {
                result[c].indices.push_back(by_label[i]);
            }
        }
        rebuild_label_histogram(result[c], data);
    }
    return result;
}

std::vector<ClientShard> partition_non_iid_variable(const Dataset& data,
                                                    std::size_t clients,
                                                    std::size_t shards_lo,
                                                    std::size_t shards_hi,
                                                    stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("partition_non_iid_variable: zero clients");
    if (shards_lo == 0 || shards_lo > shards_hi)
        throw std::invalid_argument("partition_non_iid_variable: bad shard range");

    std::vector<std::size_t> per_client(clients);
    std::size_t total_shards = 0;
    for (std::size_t c = 0; c < clients; ++c) {
        per_client[c] = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(shards_lo),
                            static_cast<std::int64_t>(shards_hi)));
        total_shards += per_client[c];
    }
    if (data.size() < total_shards)
        throw std::invalid_argument("partition_non_iid_variable: dataset too small");

    std::vector<std::size_t> by_label(data.size());
    std::iota(by_label.begin(), by_label.end(), std::size_t{0});
    std::stable_sort(by_label.begin(), by_label.end(), [&](std::size_t a, std::size_t b) {
        return data.labels[a] < data.labels[b];
    });

    std::vector<std::size_t> shard_order(total_shards);
    std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
    rng.shuffle(shard_order);

    const std::size_t shard_len = data.size() / total_shards;
    std::vector<ClientShard> result(clients);
    std::size_t next = 0;
    for (std::size_t c = 0; c < clients; ++c) {
        for (std::size_t s = 0; s < per_client[c]; ++s) {
            const std::size_t shard_id = shard_order[next++];
            const std::size_t begin = shard_id * shard_len;
            const std::size_t end =
                (shard_id == total_shards - 1) ? data.size() : begin + shard_len;
            for (std::size_t i = begin; i < end; ++i) {
                result[c].indices.push_back(by_label[i]);
            }
        }
        rebuild_label_histogram(result[c], data);
    }
    return result;
}

std::vector<ClientShard> partition_iid(const Dataset& data, std::size_t clients,
                                       stats::Rng& rng) {
    if (clients == 0) throw std::invalid_argument("partition_iid: zero clients");
    if (data.size() < clients)
        throw std::invalid_argument("partition_iid: dataset smaller than client count");
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    std::vector<ClientShard> result(clients);
    const std::size_t per_client = data.size() / clients;
    for (std::size_t c = 0; c < clients; ++c) {
        const std::size_t begin = c * per_client;
        const std::size_t end = (c == clients - 1) ? data.size() : begin + per_client;
        result[c].indices.assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                                 order.begin() + static_cast<std::ptrdiff_t>(end));
        rebuild_label_histogram(result[c], data);
    }
    return result;
}

void resize_shards(std::vector<ClientShard>& shards, const Dataset& data,
                   std::size_t min_size, std::size_t max_size, stats::Rng& rng) {
    if (min_size > max_size)
        throw std::invalid_argument("resize_shards: min_size > max_size");
    for (ClientShard& shard : shards) {
        const auto target = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(min_size),
                            static_cast<std::int64_t>(max_size)));
        if (shard.indices.size() > target) {
            rng.shuffle(shard.indices);
            shard.indices.resize(target);
        }
        rebuild_label_histogram(shard, data);
    }
}

} // namespace fmore::ml
