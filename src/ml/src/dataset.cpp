#include "fmore/ml/dataset.hpp"

#include <stdexcept>

namespace fmore::ml {

Tensor Dataset::gather(const std::vector<std::size_t>& indices) const {
    const std::size_t vol = sample_volume();
    std::vector<std::size_t> shape;
    shape.push_back(indices.size());
    for (const std::size_t d : sample_shape) shape.push_back(d);
    Tensor batch(std::move(shape));
    float* dst = batch.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= size()) throw std::out_of_range("Dataset::gather: bad index");
        const float* src = features.data() + indices[i] * vol;
        for (std::size_t j = 0; j < vol; ++j) dst[i * vol + j] = src[j];
    }
    return batch;
}

std::vector<int> Dataset::gather_labels(const std::vector<std::size_t>& indices) const {
    std::vector<int> out(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= size())
            throw std::out_of_range("Dataset::gather_labels: bad index");
        out[i] = labels[indices[i]];
    }
    return out;
}

void Dataset::push_sample(const std::vector<float>& feat, int label) {
    if (feat.size() != sample_volume())
        throw std::invalid_argument("Dataset::push_sample: feature size mismatch");
    features.insert(features.end(), feat.begin(), feat.end());
    labels.push_back(label);
}

} // namespace fmore::ml
