#include "fmore/ml/model.hpp"

#include <stdexcept>

namespace fmore::ml {

Model::Model(std::uint64_t seed) : rng_(seed) {}

// Moves must re-attach: stochastic layers hold a pointer to the owning
// model's RNG member, whose address changes with the object.
Model::Model(Model&& other) noexcept
    : layers_(std::move(other.layers_)),
      rng_(other.rng_),
      loss_(std::move(other.loss_)),
      acts_(std::move(other.acts_)),
      grads_(std::move(other.grads_)) {
    reattach_layers();
}

Model& Model::operator=(Model&& other) noexcept {
    if (this != &other) {
        layers_ = std::move(other.layers_);
        rng_ = other.rng_;
        loss_ = std::move(other.loss_);
        acts_ = std::move(other.acts_);
        grads_ = std::move(other.grads_);
        reattach_layers();
    }
    return *this;
}

void Model::reattach_layers() {
    for (auto& layer : layers_) layer->attach_rng(&rng_);
}

void Model::add(std::unique_ptr<Layer> layer) {
    layer->initialize(rng_);
    layer->attach_rng(&rng_);
    layers_.push_back(std::move(layer));
}

Model Model::clone() const {
    Model copy(0);
    copy.rng_ = rng_;
    copy.loss_ = loss_;
    copy.layers_.reserve(layers_.size());
    for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
    copy.reattach_layers();
    return copy;
}

void Model::reseed(std::uint64_t seed) { rng_ = stats::Rng(seed); }

const Tensor& Model::forward(const Tensor& input, bool training) {
    // Slot-chained: layer i reads slot i-1 and writes slot i. Slots keep
    // their storage across calls, so in-place layers (and same-shape
    // batches generally) touch no allocator.
    acts_.resize(layers_.size());
    const Tensor* current = &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->forward_into(*current, acts_[i], training);
        current = &acts_[i];
    }
    return *current;
}

void Model::backward(const Tensor& grad_loss) {
    grads_.resize(layers_.size());
    const Tensor* current = &grad_loss;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        layers_[i]->backward_into(*current, grads_[i]);
        current = &grads_[i];
    }
}

std::vector<ParamBlock> Model::all_parameters() {
    std::vector<ParamBlock> blocks;
    for (auto& layer : layers_) {
        for (const ParamBlock& block : layer->parameters()) blocks.push_back(block);
    }
    return blocks;
}

void Model::zero_grad() {
    for (const ParamBlock& block : all_parameters()) {
        for (float& g : *block.grads) g = 0.0F;
    }
}

void Model::sgd_step(double learning_rate) {
    const auto lr = static_cast<float>(learning_rate);
    for (const ParamBlock& block : all_parameters()) {
        for (std::size_t i = 0; i < block.values->size(); ++i) {
            (*block.values)[i] -= lr * (*block.grads)[i];
        }
    }
}

std::size_t Model::parameter_count() {
    std::size_t total = 0;
    for (const ParamBlock& block : all_parameters()) total += block.values->size();
    return total;
}

std::vector<float> Model::get_parameters() {
    std::vector<float> flat;
    flat.reserve(parameter_count());
    for (const ParamBlock& block : all_parameters()) {
        flat.insert(flat.end(), block.values->begin(), block.values->end());
    }
    return flat;
}

void Model::set_parameters(const std::vector<float>& flat) {
    std::size_t offset = 0;
    for (auto& layer : layers_) {
        for (const ParamBlock& block : layer->parameters()) {
            if (offset + block.values->size() > flat.size())
                throw std::invalid_argument("Model::set_parameters: vector too short");
            for (std::size_t i = 0; i < block.values->size(); ++i) {
                (*block.values)[i] = flat[offset + i];
            }
            offset += block.values->size();
        }
    }
    if (offset != flat.size())
        throw std::invalid_argument("Model::set_parameters: vector size mismatch");
}

TrainStats Model::train_epoch(const Dataset& data, const std::vector<std::size_t>& indices,
                              std::size_t batch_size, double learning_rate) {
    if (indices.empty()) return {};
    if (batch_size == 0) throw std::invalid_argument("train_epoch: batch_size must be > 0");
    std::vector<std::size_t> order = indices;
    rng_.shuffle(order);

    TrainStats out;
    double loss_sum = 0.0;
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
        const std::size_t end = std::min(order.size(), start + batch_size);
        const std::vector<std::size_t> batch_idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                                 order.begin() + static_cast<std::ptrdiff_t>(end));
        const Tensor batch = data.gather(batch_idx);
        const std::vector<int> labels = data.gather_labels(batch_idx);

        zero_grad();
        const Tensor& logits = forward(batch, /*training=*/true);
        const double loss = loss_.forward(logits, labels);
        backward(loss_.backward());
        sgd_step(learning_rate);

        loss_sum += loss * static_cast<double>(batch_idx.size());
        out.samples += batch_idx.size();
    }
    out.mean_loss = loss_sum / static_cast<double>(out.samples);
    return out;
}

void Model::evaluate_batches(const Dataset& data, const std::vector<std::size_t>& indices,
                             std::size_t batch_size, std::size_t batch_lo,
                             std::size_t batch_hi, EvalBatch* out) {
    if (batch_size == 0)
        throw std::invalid_argument("evaluate_batches: batch_size must be > 0");
    for (std::size_t bi = batch_lo; bi < batch_hi; ++bi) {
        const std::size_t start = bi * batch_size;
        const std::size_t end = std::min(indices.size(), start + batch_size);
        if (start >= end) break;
        const std::vector<std::size_t> batch_idx(
            indices.begin() + static_cast<std::ptrdiff_t>(start),
            indices.begin() + static_cast<std::ptrdiff_t>(end));
        const Tensor batch = data.gather(batch_idx);
        const std::vector<int> labels = data.gather_labels(batch_idx);
        const Tensor& logits = forward(batch, /*training=*/false);
        EvalBatch record;
        record.mean_loss = loss_.forward(logits, labels);
        const std::vector<int> preds = loss_.predictions();
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (preds[i] == labels[i]) ++record.hits;
        }
        record.samples = batch_idx.size();
        out[bi] = record;
    }
}

EvalStats reduce_eval_batches(const std::vector<EvalBatch>& batches) {
    EvalStats out;
    double loss_sum = 0.0;
    std::size_t hits = 0;
    for (const EvalBatch& b : batches) {
        loss_sum += b.mean_loss * static_cast<double>(b.samples);
        hits += b.hits;
        out.samples += b.samples;
    }
    out.mean_loss = loss_sum / static_cast<double>(out.samples);
    out.accuracy = static_cast<double>(hits) / static_cast<double>(out.samples);
    return out;
}

EvalStats Model::evaluate(const Dataset& data, const std::vector<std::size_t>& indices) {
    std::vector<std::size_t> idx = indices;
    if (idx.empty()) {
        idx.resize(data.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    }
    const std::size_t batches = (idx.size() + kEvalBatch - 1) / kEvalBatch;
    std::vector<EvalBatch> records(batches);
    evaluate_batches(data, idx, kEvalBatch, 0, batches, records.data());
    return reduce_eval_batches(records);
}

} // namespace fmore::ml
