#include "fmore/ml/dropout.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace fmore::ml {

Dropout::Dropout(double rate) : rate_(rate) {
    if (!(rate >= 0.0 && rate < 1.0))
        throw std::invalid_argument("Dropout: rate must be in [0, 1)");
}

void Dropout::forward_into(const Tensor& input, Tensor& out, bool training) {
    if (!training || rate_ == 0.0) {
        mask_.assign(input.size(), 1.0F);
        out = input;
        return;
    }
    if (rng_ == nullptr)
        throw std::logic_error("Dropout: no RNG attached (layer must live in a Model)");
    const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    mask_.resize(input.size());
    out = input;

    // One engine draw yields four 16-bit lanes, each an independent
    // Bernoulli trial against a fixed-point threshold — a quarter of the
    // generator work of per-element draws, which profile as a major cost of
    // a training batch. Rates that are multiples of 1/65536 (e.g. the 0.25
    // the paper's models use) are represented exactly.
    const auto threshold = static_cast<std::uint64_t>(
        std::llround(rate_ * 65536.0));
    auto& engine = rng_->engine();
    std::uint64_t bits = 0;
    std::size_t lanes = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (lanes == 0) {
            bits = engine();
            lanes = 4;
        }
        const std::uint64_t lane = bits & 0xFFFFULL;
        bits >>= 16;
        --lanes;
        if (lane < threshold) {
            mask_[i] = 0.0F;
            out[i] = 0.0F;
        } else {
            mask_[i] = keep_scale;
            out[i] *= keep_scale;
        }
    }
}

Tensor Dropout::forward(const Tensor& input, bool training) {
    Tensor out;
    forward_into(input, out, training);
    return out;
}

void Dropout::backward_into(const Tensor& grad_output, Tensor& grad_input) {
    if (grad_output.size() != mask_.size())
        throw std::invalid_argument("Dropout::backward: shape mismatch");
    grad_input = grad_output;
    for (std::size_t i = 0; i < grad_input.size(); ++i) grad_input[i] *= mask_[i];
}

Tensor Dropout::backward(const Tensor& grad_output) {
    Tensor grad;
    backward_into(grad_output, grad);
    return grad;
}

} // namespace fmore::ml
