#include "fmore/ml/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "fmore/ml/gemm.hpp"

namespace fmore::ml {

namespace {

inline float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

} // namespace

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim)
    : input_(input_dim),
      hidden_(hidden_dim),
      w_(4 * hidden_dim * input_dim, 0.0F),
      u_(4 * hidden_dim * hidden_dim, 0.0F),
      b_(4 * hidden_dim, 0.0F),
      w_grad_(w_.size(), 0.0F),
      u_grad_(u_.size(), 0.0F),
      b_grad_(b_.size(), 0.0F) {
    if (input_ == 0 || hidden_ == 0) throw std::invalid_argument("Lstm: zero-sized");
}

void Lstm::initialize(stats::Rng& rng) {
    const double wb = std::sqrt(6.0 / static_cast<double>(input_ + hidden_));
    const double ub = std::sqrt(6.0 / static_cast<double>(2 * hidden_));
    for (float& x : w_) x = static_cast<float>(rng.uniform(-wb, wb));
    for (float& x : u_) x = static_cast<float>(rng.uniform(-ub, ub));
    // Forget-gate bias at 1: the standard trick so early training does not
    // wash out the cell state.
    for (std::size_t i = 0; i < b_.size(); ++i) {
        b_[i] = (i >= hidden_ && i < 2 * hidden_) ? 1.0F : 0.0F;
    }
}

Tensor Lstm::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 3 || input.dim(2) != input_)
        throw std::invalid_argument("Lstm::forward: expected [B, T, E] input");
    const std::size_t batch = input.dim(0);
    const std::size_t seq = input.dim(1);
    cached_input_ = input;
    cached_batch_ = batch;
    cached_seq_ = seq;

    const std::size_t h4 = 4 * hidden_;
    gates_.assign(seq * batch * h4, 0.0F);
    cells_.assign((seq + 1) * batch * hidden_, 0.0F);
    hiddens_.assign((seq + 1) * batch * hidden_, 0.0F);

    const bool naive = use_naive_kernels();
    if (!naive) {
        // Gate matmuls run once per timestep over the whole batch; the
        // transposes put the 4H gate dimension unit-stride for the kernel.
        wt_.resize(input_ * h4);
        for (std::size_t r = 0; r < h4; ++r) {
            const float* wrow = w_.data() + r * input_;
            for (std::size_t e = 0; e < input_; ++e) wt_[e * h4 + r] = wrow[e];
        }
        ut_.resize(hidden_ * h4);
        for (std::size_t r = 0; r < h4; ++r) {
            const float* urow = u_.data() + r * hidden_;
            for (std::size_t hh = 0; hh < hidden_; ++hh) ut_[hh * h4 + r] = urow[hh];
        }
    }

    const float* x = input.data();
    for (std::size_t t = 0; t < seq; ++t) {
        const float* h_prev = hiddens_.data() + t * batch * hidden_;
        const float* c_prev = cells_.data() + t * batch * hidden_;
        float* h_next = hiddens_.data() + (t + 1) * batch * hidden_;
        float* c_next = cells_.data() + (t + 1) * batch * hidden_;
        float* gate_t = gates_.data() + t * batch * h4;

        if (!naive) {
            // z = b + x_t W^T + h_{t-1} U^T, accumulated in exactly the
            // reference order (bias seed, then W terms, then U terms).
            for (std::size_t bi = 0; bi < batch; ++bi) {
                float* z = gate_t + bi * h4;
                for (std::size_t r = 0; r < h4; ++r) z[r] = b_[r];
            }
            gemm_acc(batch, h4, input_,
                     x + t * input_, static_cast<std::ptrdiff_t>(seq * input_), 1,
                     wt_.data(), static_cast<std::ptrdiff_t>(h4),
                     gate_t, static_cast<std::ptrdiff_t>(h4));
            gemm_acc(batch, h4, hidden_,
                     h_prev, static_cast<std::ptrdiff_t>(hidden_), 1,
                     ut_.data(), static_cast<std::ptrdiff_t>(h4),
                     gate_t, static_cast<std::ptrdiff_t>(h4));
        }

        for (std::size_t bi = 0; bi < batch; ++bi) {
            const float* xt = x + (bi * seq + t) * input_;
            const float* hp = h_prev + bi * hidden_;
            const float* cp = c_prev + bi * hidden_;
            float* z = gate_t + bi * h4;
            if (naive) {
                for (std::size_t r = 0; r < h4; ++r) {
                    float acc = b_[r];
                    const float* wrow = w_.data() + r * input_;
                    for (std::size_t e = 0; e < input_; ++e) acc += wrow[e] * xt[e];
                    const float* urow = u_.data() + r * hidden_;
                    for (std::size_t hh = 0; hh < hidden_; ++hh) acc += urow[hh] * hp[hh];
                    z[r] = acc;
                }
            }
            float* hn = h_next + bi * hidden_;
            float* cn = c_next + bi * hidden_;
            for (std::size_t hh = 0; hh < hidden_; ++hh) {
                const float ig = sigmoid(z[hh]);
                const float fg = sigmoid(z[hidden_ + hh]);
                const float gg = std::tanh(z[2 * hidden_ + hh]);
                const float og = sigmoid(z[3 * hidden_ + hh]);
                // Store post-activation values for backward.
                z[hh] = ig;
                z[hidden_ + hh] = fg;
                z[2 * hidden_ + hh] = gg;
                z[3 * hidden_ + hh] = og;
                cn[hh] = fg * cp[hh] + ig * gg;
                hn[hh] = og * std::tanh(cn[hh]);
            }
        }
    }

    Tensor out({batch, hidden_});
    const float* h_last = hiddens_.data() + seq * batch * hidden_;
    for (std::size_t i = 0; i < batch * hidden_; ++i) out[i] = h_last[i];
    return out;
}

Tensor Lstm::backward(const Tensor& grad_output) {
    const std::size_t batch = cached_batch_;
    const std::size_t seq = cached_seq_;
    const std::size_t h4 = 4 * hidden_;
    if (grad_output.size() != batch * hidden_)
        throw std::invalid_argument("Lstm::backward: grad shape mismatch");

    Tensor grad_input({batch, seq, input_});
    std::vector<float> dh(batch * hidden_, 0.0F);
    std::vector<float> dc(batch * hidden_, 0.0F);
    for (std::size_t i = 0; i < batch * hidden_; ++i) dh[i] = grad_output[i];

    const float* x = cached_input_.data();
    float* gx = grad_input.data();
    const bool naive = use_naive_kernels();
    std::vector<float> dz(h4, 0.0F);
    if (!naive) dz_all_.assign(batch * h4, 0.0F);

    for (std::size_t t = seq; t-- > 0;) {
        const float* gate_t = gates_.data() + t * batch * h4;
        const float* c_prev = cells_.data() + t * batch * hidden_;
        const float* c_next = cells_.data() + (t + 1) * batch * hidden_;
        const float* h_prev = hiddens_.data() + t * batch * hidden_;

        if (!naive) {
            // Stage 1 — elementwise: pre-activation gradients dz for every
            // batch row (and the cell gradient handed to t-1).
            for (std::size_t bi = 0; bi < batch; ++bi) {
                const float* z = gate_t + bi * h4;
                const float* cp = c_prev + bi * hidden_;
                const float* cn = c_next + bi * hidden_;
                float* dhb = dh.data() + bi * hidden_;
                float* dcb = dc.data() + bi * hidden_;
                float* dzb = dz_all_.data() + bi * h4;
                for (std::size_t hh = 0; hh < hidden_; ++hh) {
                    const float ig = z[hh];
                    const float fg = z[hidden_ + hh];
                    const float gg = z[2 * hidden_ + hh];
                    const float og = z[3 * hidden_ + hh];
                    const float tanh_c = std::tanh(cn[hh]);
                    const float dh_t = dhb[hh];
                    const float dc_t = dcb[hh] + dh_t * og * (1.0F - tanh_c * tanh_c);
                    dzb[hh] = dc_t * gg * ig * (1.0F - ig);
                    dzb[hidden_ + hh] = dc_t * cp[hh] * fg * (1.0F - fg);
                    dzb[2 * hidden_ + hh] = dc_t * ig * (1.0F - gg * gg);
                    dzb[3 * hidden_ + hh] = dh_t * tanh_c * og * (1.0F - og);
                    dcb[hh] = dc_t * fg;
                }
            }
            // Stage 2 — parameter gradients and propagated gradients, all
            // GEMMs over the batch (see gemm.hpp for the order contract).
            for (std::size_t bi = 0; bi < batch; ++bi) {
                const float* dzb = dz_all_.data() + bi * h4;
                for (std::size_t r = 0; r < h4; ++r) b_grad_[r] += dzb[r];
            }
            // dW[r][e] += sum_bi dz[bi][r] * x_t[bi][e]
            gemm_acc(h4, input_, batch,
                     dz_all_.data(), 1, static_cast<std::ptrdiff_t>(h4),
                     x + t * input_, static_cast<std::ptrdiff_t>(seq * input_),
                     w_grad_.data(), static_cast<std::ptrdiff_t>(input_));
            // dU[r][h] += sum_bi dz[bi][r] * h_prev[bi][h]
            gemm_acc(h4, hidden_, batch,
                     dz_all_.data(), 1, static_cast<std::ptrdiff_t>(h4),
                     h_prev, static_cast<std::ptrdiff_t>(hidden_),
                     u_grad_.data(), static_cast<std::ptrdiff_t>(hidden_));
            // dx_t = dz W (zero-seeded: grad_input starts zeroed)
            gemm_acc(batch, input_, h4,
                     dz_all_.data(), static_cast<std::ptrdiff_t>(h4), 1,
                     w_.data(), static_cast<std::ptrdiff_t>(input_),
                     gx + t * input_, static_cast<std::ptrdiff_t>(seq * input_));
            // dh_{t-1} = dz U, accumulated fresh
            for (std::size_t i = 0; i < batch * hidden_; ++i) dh[i] = 0.0F;
            gemm_acc(batch, hidden_, h4,
                     dz_all_.data(), static_cast<std::ptrdiff_t>(h4), 1,
                     u_.data(), static_cast<std::ptrdiff_t>(hidden_),
                     dh.data(), static_cast<std::ptrdiff_t>(hidden_));
            continue;
        }

        for (std::size_t bi = 0; bi < batch; ++bi) {
            const float* z = gate_t + bi * h4;
            const float* cp = c_prev + bi * hidden_;
            const float* cn = c_next + bi * hidden_;
            const float* hp = h_prev + bi * hidden_;
            const float* xt = x + (bi * seq + t) * input_;
            float* dhb = dh.data() + bi * hidden_;
            float* dcb = dc.data() + bi * hidden_;

            for (std::size_t hh = 0; hh < hidden_; ++hh) {
                const float ig = z[hh];
                const float fg = z[hidden_ + hh];
                const float gg = z[2 * hidden_ + hh];
                const float og = z[3 * hidden_ + hh];
                const float tanh_c = std::tanh(cn[hh]);
                const float dh_t = dhb[hh];
                const float dc_t = dcb[hh] + dh_t * og * (1.0F - tanh_c * tanh_c);
                // Pre-activation gradients.
                dz[hh] = dc_t * gg * ig * (1.0F - ig);
                dz[hidden_ + hh] = dc_t * cp[hh] * fg * (1.0F - fg);
                dz[2 * hidden_ + hh] = dc_t * ig * (1.0F - gg * gg);
                dz[3 * hidden_ + hh] = dh_t * tanh_c * og * (1.0F - og);
                // Pass cell gradient to t-1.
                dcb[hh] = dc_t * fg;
            }

            float* gxt = gx + (bi * seq + t) * input_;
            // dh for t-1 is accumulated fresh from U^T dz.
            for (std::size_t hh = 0; hh < hidden_; ++hh) dhb[hh] = 0.0F;
            for (std::size_t r = 0; r < h4; ++r) {
                const float g = dz[r];
                if (g == 0.0F) continue;
                b_grad_[r] += g;
                float* wgrow = w_grad_.data() + r * input_;
                const float* wrow = w_.data() + r * input_;
                for (std::size_t e = 0; e < input_; ++e) {
                    wgrow[e] += g * xt[e];
                    gxt[e] += g * wrow[e];
                }
                float* ugrow = u_grad_.data() + r * hidden_;
                const float* urow = u_.data() + r * hidden_;
                for (std::size_t hh = 0; hh < hidden_; ++hh) {
                    ugrow[hh] += g * hp[hh];
                    dhb[hh] += g * urow[hh];
                }
            }
        }
    }
    return grad_input;
}

std::vector<ParamBlock> Lstm::parameters() {
    return {{&w_, &w_grad_}, {&u_, &u_grad_}, {&b_, &b_grad_}};
}

} // namespace fmore::ml
