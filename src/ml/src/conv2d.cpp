#include "fmore/ml/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "fmore/ml/gemm.hpp"

namespace fmore::ml {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      weight_(out_channels * in_channels * kernel * kernel, 0.0F),
      bias_(out_channels, 0.0F),
      weight_grad_(weight_.size(), 0.0F),
      bias_grad_(out_channels, 0.0F) {
    if (in_c_ == 0 || out_c_ == 0 || k_ == 0)
        throw std::invalid_argument("Conv2d: zero-sized configuration");
}

void Conv2d::initialize(stats::Rng& rng) {
    const double fan_in = static_cast<double>(in_c_ * k_ * k_);
    const double bound = std::sqrt(6.0 / fan_in);
    for (float& w : weight_) w = static_cast<float>(rng.uniform(-bound, bound));
    for (float& b : bias_) b = 0.0F;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 4 || input.dim(1) != in_c_)
        throw std::invalid_argument("Conv2d::forward: expected [B, C, H, W] input");
    const std::size_t batch = input.dim(0);
    const std::size_t h = input.dim(2);
    const std::size_t w = input.dim(3);
    if (h < k_ || w < k_)
        throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
    const std::size_t oh = h - k_ + 1;
    const std::size_t ow = w - k_ + 1;
    cached_input_ = input;

    Tensor out({batch, out_c_, oh, ow});
    const float* x = input.data();
    float* y = out.data();

    if (!use_naive_kernels()) {
        ConvShape shape;
        shape.in_c = in_c_;
        shape.h = h;
        shape.w = w;
        shape.kh = k_;
        shape.kw = k_;
        const std::size_t p = oh * ow;
        col_.resize(shape.col_rows() * p);
        for (std::size_t b = 0; b < batch; ++b) {
            conv2d_forward_gemm(x + b * in_c_ * h * w, weight_.data(), bias_.data(),
                                out_c_, shape, col_.data(), y + b * out_c_ * p);
        }
        return out;
    }

    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t oc = 0; oc < out_c_; ++oc) {
            float* ymap = y + ((b * out_c_ + oc) * oh) * ow;
            const float bias = bias_[oc];
            for (std::size_t i = 0; i < oh * ow; ++i) ymap[i] = bias;
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
                const float* xmap = x + ((b * in_c_ + ic) * h) * w;
                const float* ker = weight_.data() + ((oc * in_c_ + ic) * k_) * k_;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        float acc = 0.0F;
                        for (std::size_t ky = 0; ky < k_; ++ky) {
                            const float* xrow = xmap + (oy + ky) * w + ox;
                            const float* krow = ker + ky * k_;
                            for (std::size_t kx = 0; kx < k_; ++kx) acc += xrow[kx] * krow[kx];
                        }
                        ymap[oy * ow + ox] += acc;
                    }
                }
            }
        }
    }
    return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    const std::size_t batch = cached_input_.dim(0);
    const std::size_t h = cached_input_.dim(2);
    const std::size_t w = cached_input_.dim(3);
    const std::size_t oh = h - k_ + 1;
    const std::size_t ow = w - k_ + 1;
    if (grad_output.size() != batch * out_c_ * oh * ow)
        throw std::invalid_argument("Conv2d::backward: grad shape mismatch");

    Tensor grad_input(cached_input_.shape());
    const float* x = cached_input_.data();
    const float* gy = grad_output.data();
    float* gx = grad_input.data();

    if (!use_naive_kernels()) {
        ConvShape shape;
        shape.in_c = in_c_;
        shape.h = h;
        shape.w = w;
        shape.kh = k_;
        shape.kw = k_;
        const std::size_t p = oh * ow;
        const std::size_t rows = shape.col_rows();
        col_.resize(p * rows); // transposed layout for the weight-grad GEMM
        for (std::size_t b = 0; b < batch; ++b) {
            const float* gymap = gy + b * out_c_ * p;
            for (std::size_t oc = 0; oc < out_c_; ++oc) {
                const float* row = gymap + oc * p;
                for (std::size_t i = 0; i < p; ++i) bias_grad_[oc] += row[i];
            }
            // dW[oc][kk] += sum_p gy[oc][p] * patch[p][kk]; patch-major colT
            // keeps kk unit-stride for the kernel.
            im2col_t(x + b * in_c_ * h * w, shape, col_.data());
            gemm_acc(out_c_, rows, p,
                     gymap, static_cast<std::ptrdiff_t>(p), 1,
                     col_.data(), static_cast<std::ptrdiff_t>(rows),
                     weight_grad_.data(), static_cast<std::ptrdiff_t>(rows));
            conv2d_input_grad(gymap, weight_.data(), out_c_, shape,
                              gx + b * in_c_ * h * w);
        }
        return grad_input;
    }

    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t oc = 0; oc < out_c_; ++oc) {
            const float* gymap = gy + ((b * out_c_ + oc) * oh) * ow;
            for (std::size_t i = 0; i < oh * ow; ++i) bias_grad_[oc] += gymap[i];
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
                const float* xmap = x + ((b * in_c_ + ic) * h) * w;
                float* gxmap = gx + ((b * in_c_ + ic) * h) * w;
                const float* ker = weight_.data() + ((oc * in_c_ + ic) * k_) * k_;
                float* gker = weight_grad_.data() + ((oc * in_c_ + ic) * k_) * k_;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const float g = gymap[oy * ow + ox];
                        if (g == 0.0F) continue;
                        for (std::size_t ky = 0; ky < k_; ++ky) {
                            const float* xrow = xmap + (oy + ky) * w + ox;
                            float* gxrow = gxmap + (oy + ky) * w + ox;
                            const float* krow = ker + ky * k_;
                            float* gkrow = gker + ky * k_;
                            for (std::size_t kx = 0; kx < k_; ++kx) {
                                gkrow[kx] += g * xrow[kx];
                                gxrow[kx] += g * krow[kx];
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

std::vector<ParamBlock> Conv2d::parameters() {
    return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

} // namespace fmore::ml
