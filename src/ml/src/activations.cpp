#include "fmore/ml/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::ml {

// The elementwise layers implement the in-place protocol (forward_into /
// backward_into write into persistent caller slots, zero allocations at
// steady state); the allocating forward/backward API delegates, so both
// paths share one arithmetic and stay bit-identical.

void ReLU::forward_into(const Tensor& input, Tensor& out, bool /*training*/) {
    cached_input_ = input;  // member buffer, capacity reused across calls
    out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] < 0.0F) out[i] = 0.0F;
    }
}

Tensor ReLU::forward(const Tensor& input, bool training) {
    Tensor out;
    forward_into(input, out, training);
    return out;
}

void ReLU::backward_into(const Tensor& grad_output, Tensor& grad_input) {
    if (grad_output.size() != cached_input_.size())
        throw std::invalid_argument("ReLU::backward: shape mismatch");
    grad_input = grad_output;
    for (std::size_t i = 0; i < grad_input.size(); ++i) {
        if (cached_input_[i] <= 0.0F) grad_input[i] = 0.0F;
    }
}

Tensor ReLU::backward(const Tensor& grad_output) {
    Tensor grad;
    backward_into(grad_output, grad);
    return grad;
}

void Tanh::forward_into(const Tensor& input, Tensor& out, bool /*training*/) {
    out = input;
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
    cached_output_ = out;
}

Tensor Tanh::forward(const Tensor& input, bool training) {
    Tensor out;
    forward_into(input, out, training);
    return out;
}

void Tanh::backward_into(const Tensor& grad_output, Tensor& grad_input) {
    if (grad_output.size() != cached_output_.size())
        throw std::invalid_argument("Tanh::backward: shape mismatch");
    grad_input = grad_output;
    for (std::size_t i = 0; i < grad_input.size(); ++i) {
        const float y = cached_output_[i];
        grad_input[i] *= 1.0F - y * y;
    }
}

Tensor Tanh::backward(const Tensor& grad_output) {
    Tensor grad;
    backward_into(grad_output, grad);
    return grad;
}

void Flatten::forward_into(const Tensor& input, Tensor& out, bool /*training*/) {
    if (input.rank() < 1) throw std::invalid_argument("Flatten: rank-0 input");
    cached_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    out = input;
    out.reshape_to({batch, input.size() / batch});
}

Tensor Flatten::forward(const Tensor& input, bool training) {
    Tensor out;
    forward_into(input, out, training);
    return out;
}

void Flatten::backward_into(const Tensor& grad_output, Tensor& grad_input) {
    grad_input = grad_output;
    grad_input.reshape_to(cached_shape_);
}

Tensor Flatten::backward(const Tensor& grad_output) {
    Tensor grad;
    backward_into(grad_output, grad);
    return grad;
}

} // namespace fmore::ml
