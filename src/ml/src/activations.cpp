#include "fmore/ml/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::ml {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] < 0.0F) out[i] = 0.0F;
    }
    return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
    if (grad_output.size() != cached_input_.size())
        throw std::invalid_argument("ReLU::backward: shape mismatch");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (cached_input_[i] <= 0.0F) grad[i] = 0.0F;
    }
    return grad;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
    cached_output_ = out;
    return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
    if (grad_output.size() != cached_output_.size())
        throw std::invalid_argument("Tanh::backward: shape mismatch");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        const float y = cached_output_[i];
        grad[i] *= 1.0F - y * y;
    }
    return grad;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() < 1) throw std::invalid_argument("Flatten: rank-0 input");
    cached_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    return grad_output.reshaped(cached_shape_);
}

} // namespace fmore::ml
