#include <cmath>
#include <stdexcept>
#include <vector>

#include "fmore/ml/synthetic.hpp"

namespace fmore::ml {

namespace {

/// Row-stochastic transition matrix for one class: a softmax-sharpened
/// random preference over next tokens. `sharpness` in [0, 1] interpolates
/// between the uniform chain and a strongly peaked one.
std::vector<double> make_transition_matrix(std::size_t vocab, double sharpness,
                                           stats::Rng& rng) {
    std::vector<double> matrix(vocab * vocab, 0.0);
    const double temperature = 0.05 + (1.0 - sharpness) * 2.0;
    for (std::size_t from = 0; from < vocab; ++from) {
        double denom = 0.0;
        for (std::size_t to = 0; to < vocab; ++to) {
            const double e = std::exp(rng.normal(0.0, 1.0) / temperature);
            matrix[from * vocab + to] = e;
            denom += e;
        }
        for (std::size_t to = 0; to < vocab; ++to) matrix[from * vocab + to] /= denom;
    }
    return matrix;
}

std::size_t sample_row(const std::vector<double>& matrix, std::size_t vocab,
                       std::size_t from, stats::Rng& rng) {
    const double r = rng.uniform(0.0, 1.0);
    double acc = 0.0;
    for (std::size_t to = 0; to < vocab; ++to) {
        acc += matrix[from * vocab + to];
        if (r <= acc) return to;
    }
    return vocab - 1;
}

} // namespace

Dataset make_synthetic_text(const TextDatasetSpec& spec, stats::Rng& rng) {
    if (spec.classes < 2) throw std::invalid_argument("make_synthetic_text: classes < 2");
    if (spec.vocab < 2) throw std::invalid_argument("make_synthetic_text: vocab < 2");
    if (spec.seq_len < 2) throw std::invalid_argument("make_synthetic_text: seq_len < 2");

    Dataset data;
    data.sample_shape = {spec.seq_len};
    data.num_classes = spec.classes;
    data.features.reserve(spec.samples * spec.seq_len);
    data.labels.reserve(spec.samples);

    std::vector<std::vector<double>> chains;
    chains.reserve(spec.classes);
    for (std::size_t c = 0; c < spec.classes; ++c) {
        chains.push_back(make_transition_matrix(spec.vocab, spec.sharpness, rng));
    }

    std::vector<float> sample(spec.seq_len);
    for (std::size_t i = 0; i < spec.samples; ++i) {
        const auto label = static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.classes) - 1));
        const std::vector<double>& chain = chains[static_cast<std::size_t>(label)];
        auto token = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.vocab) - 1));
        sample[0] = static_cast<float>(token);
        for (std::size_t t = 1; t < spec.seq_len; ++t) {
            token = sample_row(chain, spec.vocab, token, rng);
            sample[t] = static_cast<float>(token);
        }
        data.push_sample(sample, label);
    }
    return data;
}

TextDatasetSpec hpnews_spec(std::size_t samples) {
    TextDatasetSpec spec;
    spec.samples = samples;
    // Tuned so an LSTM reaches the paper's Fig. 7 accuracy band (~0.6 for
    // the best selector after 20 federated rounds): a small vocabulary keeps
    // every token well-observed and sharpness 0.8 makes the class chains
    // separable from a 12-token window.
    spec.vocab = 32;
    spec.sharpness = 0.85;
    return spec;
}

} // namespace fmore::ml
