#include "fmore/ml/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

// Vectorization hint for the unit-stride j loops. Independent accumulators
// only — never a reduction — so the hint cannot reassociate any single
// element's sum and bit-exactness is preserved. Compiled away to nothing
// when the build has no OpenMP-simd support.
#if defined(FMORE_OPENMP_SIMD)
#define FMORE_SIMD _Pragma("omp simd")
#else
#define FMORE_SIMD
#endif

namespace fmore::ml {

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

namespace {

std::atomic<int> g_naive_mode{-1};

bool env_naive() {
    const char* env = std::getenv("FMORE_NAIVE_KERNELS");
    if (env == nullptr) return false;
    const std::string value(env);
    return value == "1" || value == "true" || value == "yes" || value == "on";
}

} // namespace

bool use_naive_kernels() {
    const int mode = g_naive_mode.load(std::memory_order_relaxed);
    if (mode >= 0) return mode != 0;
    static const bool from_env = env_naive();
    return from_env;
}

void set_naive_kernels(int mode) {
    g_naive_mode.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                       std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// GEMM micro-kernels
// ---------------------------------------------------------------------------

namespace {

/// Register-block width along j. 16 floats = 2-4 SIMD registers on
/// SSE/AVX/NEON; with the 4-row i-block below the hot loop keeps 8-16
/// vector accumulators live, enough to hide FMA latency.
constexpr std::size_t kNR = 16;
/// Register-block height along i.
constexpr std::size_t kMR = 4;

using diff = std::ptrdiff_t;

/// Scalar reference element: seed + sum_k a[k]*b[k], ascending k.
inline float dot_from(float seed, const float* a, diff a_col, const float* b,
                      diff b_row, std::size_t kk) {
    float acc = seed;
    for (std::size_t k = 0; k < kk; ++k) {
        acc += a[static_cast<diff>(k) * a_col] * b[static_cast<diff>(k) * b_row];
    }
    return acc;
}

/// Scalar grouped element: seed + sum over groups of (fresh per-group sum).
inline float dot_from_grouped(float seed, const float* a, diff a_col, const float* b,
                              diff b_row, std::size_t kk, std::size_t group) {
    float acc = seed;
    for (std::size_t k0 = 0; k0 < kk; k0 += group) {
        const std::size_t kend = std::min(kk, k0 + group);
        float part = 0.0F;
        for (std::size_t k = k0; k < kend; ++k) {
            part += a[static_cast<diff>(k) * a_col] * b[static_cast<diff>(k) * b_row];
        }
        acc += part;
    }
    return acc;
}

/// One kMR x NR register tile of gemm_acc (NR = 16, 8 or 4). Four rows in
/// flight keep enough independent FMA chains to hide latency even when the
/// j extent is narrow (e.g. conv weight-gradients, where n = kh*kw).
template <std::size_t NR>
inline void tile_mr_w(std::size_t kk, const float* a, diff a_row, diff a_col,
                      const float* b, diff b_row, float* c, diff c_row) {
    float acc[kMR][NR];
    for (std::size_t r = 0; r < kMR; ++r) {
        const float* crow = c + static_cast<diff>(r) * c_row;
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) acc[r][jj] = crow[jj];
    }
    for (std::size_t k = 0; k < kk; ++k) {
        const float* brow = b + static_cast<diff>(k) * b_row;
        const float a0 = a[static_cast<diff>(k) * a_col];
        const float a1 = a[a_row + static_cast<diff>(k) * a_col];
        const float a2 = a[2 * a_row + static_cast<diff>(k) * a_col];
        const float a3 = a[3 * a_row + static_cast<diff>(k) * a_col];
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) {
            const float bv = brow[jj];
            acc[0][jj] += a0 * bv;
            acc[1][jj] += a1 * bv;
            acc[2][jj] += a2 * bv;
            acc[3][jj] += a3 * bv;
        }
    }
    for (std::size_t r = 0; r < kMR; ++r) {
        float* crow = c + static_cast<diff>(r) * c_row;
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) crow[jj] = acc[r][jj];
    }
}

/// One 1 x NR tile of gemm_acc (i-edge rows and j-tails; NR = 16, 8 or 4).
template <std::size_t NR>
inline void tile_1_w(std::size_t kk, const float* a, diff a_col, const float* b,
                     diff b_row, float* c) {
    float acc[NR];
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) acc[jj] = c[jj];
    for (std::size_t k = 0; k < kk; ++k) {
        const float* brow = b + static_cast<diff>(k) * b_row;
        const float av = a[static_cast<diff>(k) * a_col];
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) acc[jj] += av * brow[jj];
    }
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) c[jj] = acc[jj];
}

/// One 1 x NR tile of gemm_acc_grouped (NR = 16, 8 or 4).
template <std::size_t NR>
inline void tile_1_w_grouped(std::size_t kk, const float* a, diff a_col,
                             const float* b, diff b_row, float* c,
                             std::size_t group) {
    float acc[NR];
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) acc[jj] = c[jj];
    for (std::size_t k0 = 0; k0 < kk; k0 += group) {
        const std::size_t kend = std::min(kk, k0 + group);
        float part[NR];
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) part[jj] = 0.0F;
        for (std::size_t k = k0; k < kend; ++k) {
            const float* brow = b + static_cast<diff>(k) * b_row;
            const float av = a[static_cast<diff>(k) * a_col];
            FMORE_SIMD
            for (std::size_t jj = 0; jj < NR; ++jj) part[jj] += av * brow[jj];
        }
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) acc[jj] += part[jj];
    }
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) c[jj] = acc[jj];
}

// --- "part" tiles: the per-group unit of the bias-seeded grouped GEMM. ---
// Each tile sums its K-slice in fresh registers, then stores either
// `bias + part` (First slice — matches `y = bias; y += group_sum`) or
// `c + part` (later slices). The full kMR x kNR register blocking applies,
// which the running-accumulator grouped tile cannot afford (it would need
// twice the accumulator registers).

template <std::size_t NR, bool First>
inline void tile_mr_w_part(std::size_t kk, const float* a, diff a_row, diff a_col,
                           const float* b, diff b_row, float* c, diff c_row,
                           const float* bias) {
    float part[kMR][NR];
    for (auto& row : part) {
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) row[jj] = 0.0F;
    }
    for (std::size_t k = 0; k < kk; ++k) {
        const float* brow = b + static_cast<diff>(k) * b_row;
        const float a0 = a[static_cast<diff>(k) * a_col];
        const float a1 = a[a_row + static_cast<diff>(k) * a_col];
        const float a2 = a[2 * a_row + static_cast<diff>(k) * a_col];
        const float a3 = a[3 * a_row + static_cast<diff>(k) * a_col];
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) {
            const float bv = brow[jj];
            part[0][jj] += a0 * bv;
            part[1][jj] += a1 * bv;
            part[2][jj] += a2 * bv;
            part[3][jj] += a3 * bv;
        }
    }
    for (std::size_t r = 0; r < kMR; ++r) {
        float* crow = c + static_cast<diff>(r) * c_row;
        const float seed = First ? bias[r] : 0.0F;
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) {
            crow[jj] = (First ? seed : crow[jj]) + part[r][jj];
        }
    }
}

template <std::size_t NR, bool First>
inline void tile_1_w_part(std::size_t kk, const float* a, diff a_col, const float* b,
                          diff b_row, float* c, float bias) {
    float part[NR];
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) part[jj] = 0.0F;
    for (std::size_t k = 0; k < kk; ++k) {
        const float* brow = b + static_cast<diff>(k) * b_row;
        const float av = a[static_cast<diff>(k) * a_col];
        FMORE_SIMD
        for (std::size_t jj = 0; jj < NR; ++jj) part[jj] += av * brow[jj];
    }
    FMORE_SIMD
    for (std::size_t jj = 0; jj < NR; ++jj) {
        c[jj] = (First ? bias : c[jj]) + part[jj];
    }
}

/// One m x n pass over a K-slice of the bias-seeded grouped GEMM.
template <bool First>
void gemm_part_pass(std::size_t m, std::size_t n, std::size_t kk,
                    const float* a, diff a_row, diff a_col,
                    const float* b, diff b_row,
                    float* c, diff c_row, const float* bias) {
    std::size_t i = 0;
    for (; i + kMR <= m; i += kMR) {
        const float* arow = a + static_cast<diff>(i) * a_row;
        float* crow = c + static_cast<diff>(i) * c_row;
        std::size_t j = 0;
        for (; j + kNR <= n; j += kNR) {
            tile_mr_w_part<kNR, First>(kk, arow, a_row, a_col, b + j, b_row, crow + j,
                                       c_row, bias + i);
        }
        if (j + 8 <= n) {
            tile_mr_w_part<8, First>(kk, arow, a_row, a_col, b + j, b_row, crow + j,
                                     c_row, bias + i);
            j += 8;
        }
        if (j + 4 <= n) {
            tile_mr_w_part<4, First>(kk, arow, a_row, a_col, b + j, b_row, crow + j,
                                     c_row, bias + i);
            j += 4;
        }
        for (; j < n; ++j) {
            for (std::size_t r = 0; r < kMR; ++r) {
                float* cel = crow + static_cast<diff>(r) * c_row + j;
                *cel = (First ? bias[i + r] : *cel)
                       + dot_from(0.0F, arow + static_cast<diff>(r) * a_row, a_col,
                                  b + j, b_row, kk);
            }
        }
    }
    for (; i < m; ++i) {
        const float* arow = a + static_cast<diff>(i) * a_row;
        float* crow = c + static_cast<diff>(i) * c_row;
        std::size_t j = 0;
        for (; j + kNR <= n; j += kNR) {
            tile_1_w_part<kNR, First>(kk, arow, a_col, b + j, b_row, crow + j, bias[i]);
        }
        if (j + 8 <= n) {
            tile_1_w_part<8, First>(kk, arow, a_col, b + j, b_row, crow + j, bias[i]);
            j += 8;
        }
        if (j + 4 <= n) {
            tile_1_w_part<4, First>(kk, arow, a_col, b + j, b_row, crow + j, bias[i]);
            j += 4;
        }
        for (; j < n; ++j) {
            crow[j] = (First ? bias[i] : crow[j])
                      + dot_from(0.0F, arow, a_col, b + j, b_row, kk);
        }
    }
}

} // namespace

void gemm_acc(std::size_t m, std::size_t n, std::size_t kk,
              const float* a, diff a_row, diff a_col,
              const float* b, diff b_row,
              float* c, diff c_row) {
    std::size_t i = 0;
    for (; i + kMR <= m; i += kMR) {
        const float* arow = a + static_cast<diff>(i) * a_row;
        float* crow = c + static_cast<diff>(i) * c_row;
        std::size_t j = 0;
        for (; j + kNR <= n; j += kNR) {
            tile_mr_w<kNR>(kk, arow, a_row, a_col, b + j, b_row, crow + j, c_row);
        }
        if (j + 8 <= n) {
            tile_mr_w<8>(kk, arow, a_row, a_col, b + j, b_row, crow + j, c_row);
            j += 8;
        }
        if (j + 4 <= n) {
            tile_mr_w<4>(kk, arow, a_row, a_col, b + j, b_row, crow + j, c_row);
            j += 4;
        }
        for (; j < n; ++j) {
            for (std::size_t r = 0; r < kMR; ++r) {
                float* cel = crow + static_cast<diff>(r) * c_row + j;
                *cel = dot_from(*cel, arow + static_cast<diff>(r) * a_row, a_col,
                                b + j, b_row, kk);
            }
        }
    }
    for (; i < m; ++i) {
        const float* arow = a + static_cast<diff>(i) * a_row;
        float* crow = c + static_cast<diff>(i) * c_row;
        std::size_t j = 0;
        for (; j + kNR <= n; j += kNR) {
            tile_1_w<kNR>(kk, arow, a_col, b + j, b_row, crow + j);
        }
        if (j + 8 <= n) {
            tile_1_w<8>(kk, arow, a_col, b + j, b_row, crow + j);
            j += 8;
        }
        if (j + 4 <= n) {
            tile_1_w<4>(kk, arow, a_col, b + j, b_row, crow + j);
            j += 4;
        }
        for (; j < n; ++j) {
            crow[j] = dot_from(crow[j], arow, a_col, b + j, b_row, kk);
        }
    }
}

void gemm_acc_grouped(std::size_t m, std::size_t n, std::size_t kk,
                      const float* a, diff a_row, diff a_col,
                      const float* b, diff b_row,
                      float* c, diff c_row, std::size_t group) {
    if (group == 0 || group >= kk) {
        gemm_acc(m, n, kk, a, a_row, a_col, b, b_row, c, c_row);
        return;
    }
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + static_cast<diff>(i) * a_row;
        float* crow = c + static_cast<diff>(i) * c_row;
        std::size_t j = 0;
        for (; j + kNR <= n; j += kNR) {
            tile_1_w_grouped<kNR>(kk, arow, a_col, b + j, b_row, crow + j, group);
        }
        for (; j < n; ++j) {
            crow[j] = dot_from_grouped(crow[j], arow, a_col, b + j, b_row, kk, group);
        }
    }
}

/// Bias-seeded grouped GEMM: C = bias (broadcast per row) + per-group
/// partial sums — one `gemm_part_pass` per K-slice, so every slice gets the
/// full register blocking.
static void gemm_bias_grouped(std::size_t m, std::size_t n, std::size_t kk,
                              const float* a, diff a_row, diff a_col,
                              const float* b, diff b_row,
                              float* c, diff c_row, std::size_t group,
                              const float* bias) {
    if (group == 0 || group > kk) group = kk;
    bool first = true;
    for (std::size_t k0 = 0; k0 < kk; k0 += group, first = false) {
        const std::size_t ks = std::min(group, kk - k0);
        const float* a_g = a + static_cast<diff>(k0) * a_col;
        const float* b_g = b + static_cast<diff>(k0) * b_row;
        if (first) {
            gemm_part_pass<true>(m, n, ks, a_g, a_row, a_col, b_g, b_row, c, c_row,
                                 bias);
        } else {
            gemm_part_pass<false>(m, n, ks, a_g, a_row, a_col, b_g, b_row, c, c_row,
                                  bias);
        }
    }
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

void im2col(const float* x, const ConvShape& s, float* col) {
    const std::size_t oh = s.out_h();
    const std::size_t ow = s.out_w();
    float* out = col;
    for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        const float* xmap = x + ic * s.h * s.w;
        for (std::size_t ky = 0; ky < s.kh; ++ky) {
            for (std::size_t kx = 0; kx < s.kw; ++kx) {
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const diff iy = static_cast<diff>(oy * s.stride_h + ky)
                                    - static_cast<diff>(s.pad_h);
                    float* orow = out + oy * ow;
                    if (iy < 0 || iy >= static_cast<diff>(s.h)) {
                        std::memset(orow, 0, ow * sizeof(float));
                        continue;
                    }
                    const float* xrow = xmap + static_cast<std::size_t>(iy) * s.w;
                    if (s.stride_w == 1) {
                        // Unit stride: the row is one contiguous span with
                        // zero-padded edges.
                        const diff shift =
                            static_cast<diff>(kx) - static_cast<diff>(s.pad_w);
                        const std::size_t lo = std::min<std::size_t>(
                            ow, shift < 0 ? static_cast<std::size_t>(-shift) : 0);
                        const std::size_t hi = std::max<std::size_t>(
                            lo, std::min<std::size_t>(
                                    ow, static_cast<std::size_t>(std::max<diff>(
                                            0, static_cast<diff>(s.w) - shift))));
                        for (std::size_t ox = 0; ox < lo; ++ox) orow[ox] = 0.0F;
                        if (hi > lo) {
                            // Inline vector copy: these spans are a few
                            // dozen floats, below memcpy's call overhead.
                            const float* src = xrow + static_cast<std::size_t>(
                                                   static_cast<diff>(lo) + shift);
                            float* dst = orow + lo;
                            const std::size_t span = hi - lo;
                            FMORE_SIMD
                            for (std::size_t t = 0; t < span; ++t) dst[t] = src[t];
                        }
                        for (std::size_t ox = hi; ox < ow; ++ox) orow[ox] = 0.0F;
                        continue;
                    }
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const diff ix = static_cast<diff>(ox * s.stride_w + kx)
                                        - static_cast<diff>(s.pad_w);
                        orow[ox] = (ix < 0 || ix >= static_cast<diff>(s.w))
                                       ? 0.0F
                                       : xrow[static_cast<std::size_t>(ix)];
                    }
                }
                out += oh * ow;
            }
        }
    }
}

void im2col_t(const float* x, const ConvShape& s, float* colt) {
    const std::size_t oh = s.out_h();
    const std::size_t ow = s.out_w();
    const std::size_t rows = s.col_rows();
    std::size_t row = 0;
    for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        const float* xmap = x + ic * s.h * s.w;
        for (std::size_t ky = 0; ky < s.kh; ++ky) {
            for (std::size_t kx = 0; kx < s.kw; ++kx, ++row) {
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const diff iy = static_cast<diff>(oy * s.stride_h + ky)
                                    - static_cast<diff>(s.pad_h);
                    const bool valid_row = iy >= 0 && iy < static_cast<diff>(s.h);
                    const float* xrow =
                        valid_row ? xmap + static_cast<std::size_t>(iy) * s.w : nullptr;
                    float* orow = colt + oy * ow * rows + row;
                    if (valid_row && s.stride_w == 1) {
                        // Branch-free middle span (strided stores; the
                        // source is contiguous).
                        const diff shift =
                            static_cast<diff>(kx) - static_cast<diff>(s.pad_w);
                        const std::size_t lo = std::min<std::size_t>(
                            ow, shift < 0 ? static_cast<std::size_t>(-shift) : 0);
                        const std::size_t hi = std::max<std::size_t>(
                            lo, std::min<std::size_t>(
                                    ow, static_cast<std::size_t>(std::max<diff>(
                                            0, static_cast<diff>(s.w) - shift))));
                        for (std::size_t ox = 0; ox < lo; ++ox) orow[ox * rows] = 0.0F;
                        const float* src = xrow + static_cast<std::size_t>(
                                               static_cast<diff>(lo) + shift);
                        for (std::size_t t = 0; t < hi - lo; ++t) {
                            orow[(lo + t) * rows] = src[t];
                        }
                        for (std::size_t ox = hi; ox < ow; ++ox) orow[ox * rows] = 0.0F;
                        continue;
                    }
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const diff ix = static_cast<diff>(ox * s.stride_w + kx)
                                        - static_cast<diff>(s.pad_w);
                        const bool valid =
                            valid_row && ix >= 0 && ix < static_cast<diff>(s.w);
                        orow[ox * rows] =
                            valid ? xrow[static_cast<std::size_t>(ix)] : 0.0F;
                    }
                }
            }
        }
    }
}

void col2im_add(const float* col, const ConvShape& s, float* gx) {
    const std::size_t oh = s.out_h();
    const std::size_t ow = s.out_w();
    const float* in = col;
    for (std::size_t ic = 0; ic < s.in_c; ++ic) {
        float* gxmap = gx + ic * s.h * s.w;
        for (std::size_t ky = 0; ky < s.kh; ++ky) {
            for (std::size_t kx = 0; kx < s.kw; ++kx) {
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const diff iy = static_cast<diff>(oy * s.stride_h + ky)
                                    - static_cast<diff>(s.pad_h);
                    if (iy < 0 || iy >= static_cast<diff>(s.h)) continue;
                    float* gxrow = gxmap + static_cast<std::size_t>(iy) * s.w;
                    const float* irow = in + oy * ow;
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const diff ix = static_cast<diff>(ox * s.stride_w + kx)
                                        - static_cast<diff>(s.pad_w);
                        if (ix < 0 || ix >= static_cast<diff>(s.w)) continue;
                        gxrow[static_cast<std::size_t>(ix)] += irow[ox];
                    }
                }
                in += oh * ow;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Convolution on top of the kernels
// ---------------------------------------------------------------------------

void conv2d_forward_gemm(const float* x, const float* weight, const float* bias,
                         std::size_t out_c, const ConvShape& s, float* col, float* y) {
    im2col(x, s, col);
    const std::size_t rows = s.col_rows();
    const std::size_t cols = s.col_cols();
    gemm_bias_grouped(out_c, cols, rows,
                      weight, static_cast<diff>(rows), 1,
                      col, static_cast<diff>(cols),
                      y, static_cast<diff>(cols), s.kh * s.kw, bias);
}

void conv2d_input_grad(const float* gy, const float* weight, std::size_t out_c,
                       const ConvShape& s, float* gx) {
    const std::size_t oh = s.out_h();
    const std::size_t ow = s.out_w();
    if (s.pad_h == 0 && s.pad_w == 0) {
        // Unpadded fast path (what Conv2d runs): every tap's span is the
        // full output row, so all bounds math hoists out of the loops.
        for (std::size_t oc = 0; oc < out_c; ++oc) {
            const float* gymap = gy + oc * oh * ow;
            for (std::size_t ic = 0; ic < s.in_c; ++ic) {
                const float* ker = weight + (oc * s.in_c + ic) * s.kh * s.kw;
                float* gxmap = gx + ic * s.h * s.w;
                for (std::size_t ky = s.kh; ky-- > 0;) {
                    for (std::size_t kx = s.kw; kx-- > 0;) {
                        const float wv = ker[ky * s.kw + kx];
                        for (std::size_t oy = 0; oy < oh; ++oy) {
                            float* gxrow = gxmap + (oy + ky) * s.w + kx;
                            const float* gyrow = gymap + oy * ow;
                            FMORE_SIMD
                            for (std::size_t t = 0; t < ow; ++t) {
                                gxrow[t] += gyrow[t] * wv;
                            }
                        }
                    }
                }
            }
        }
        return;
    }
    for (std::size_t oc = 0; oc < out_c; ++oc) {
        const float* gymap = gy + oc * oh * ow;
        for (std::size_t ic = 0; ic < s.in_c; ++ic) {
            const float* ker = weight + (oc * s.in_c + ic) * s.kh * s.kw;
            float* gxmap = gx + ic * s.h * s.w;
            // Descending (ky, kx) is the reference loops' ascending
            // output-pixel order per input pixel — see the header note.
            for (std::size_t ky = s.kh; ky-- > 0;) {
                for (std::size_t kx = s.kw; kx-- > 0;) {
                    const float wv = ker[ky * s.kw + kx];
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const diff iy = static_cast<diff>(oy + ky)
                                        - static_cast<diff>(s.pad_h);
                        if (iy < 0 || iy >= static_cast<diff>(s.h)) continue;
                        // Valid ox range: ix = ox + kx - pad_w in [0, w).
                        const diff shift =
                            static_cast<diff>(kx) - static_cast<diff>(s.pad_w);
                        const std::size_t ox_lo =
                            shift < 0 ? static_cast<std::size_t>(-shift) : 0;
                        const std::size_t ox_hi = std::min<std::size_t>(
                            ow, static_cast<std::size_t>(std::max<diff>(
                                    0, static_cast<diff>(s.w) - shift)));
                        if (ox_lo >= ox_hi) continue;
                        float* gxrow = gxmap + static_cast<std::size_t>(iy) * s.w
                                       + static_cast<std::size_t>(
                                           static_cast<diff>(ox_lo) + shift);
                        const float* gyrow = gymap + oy * ow + ox_lo;
                        const std::size_t span = ox_hi - ox_lo;
                        FMORE_SIMD
                        for (std::size_t t = 0; t < span; ++t) {
                            gxrow[t] += gyrow[t] * wv;
                        }
                    }
                }
            }
        }
    }
}

} // namespace fmore::ml
