#pragma once

#include <functional>
#include <vector>

namespace fmore::numeric {

/// Right-hand side of a scalar first-order ODE y' = f(x, y).
using OdeRhs = std::function<double(double x, double y)>;

/// One (x, y) sample of an ODE trajectory.
struct OdePoint {
    double x;
    double y;
};

/// Explicit (forward) Euler integration of y' = f(x, y) from x0 to x1 with
/// `steps` uniform steps, starting at y(x0) = y0.
///
/// This is the method the paper prescribes for edge nodes (Section IV,
/// Eq. 13-14): "we can use classic numerical methods, e.g., the Euler method
/// ... to get the result of p^s(theta) ... with the complexity of linear
/// time". The returned trajectory has steps+1 points including both ends.
/// x1 may be smaller than x0 (integration runs backwards).
std::vector<OdePoint> euler(const OdeRhs& f, double x0, double x1, double y0,
                            std::size_t steps);

/// Classic fourth-order Runge-Kutta with the same interface; the paper also
/// names "the Runge-Kutte method" as an option. Used in ablations to show
/// Euler's linear-time accuracy is adequate.
std::vector<OdePoint> runge_kutta4(const OdeRhs& f, double x0, double x1, double y0,
                                   std::size_t steps);

/// Convenience: final value only.
double euler_final(const OdeRhs& f, double x0, double x1, double y0, std::size_t steps);
double runge_kutta4_final(const OdeRhs& f, double x0, double x1, double y0,
                          std::size_t steps);

} // namespace fmore::numeric
