#pragma once

#include <functional>
#include <optional>

namespace fmore::numeric {

/// Bisection root of f on [lo, hi]; requires a sign change. Returns nullopt
/// if f(lo) and f(hi) have the same sign.
std::optional<double> bisect(const std::function<double(double)>& f, double lo, double hi,
                             double tol = 1e-12, std::size_t max_iter = 200);

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
/// Same contract as `bisect`, converges much faster on smooth functions.
std::optional<double> brent(const std::function<double(double)>& f, double lo, double hi,
                            double tol = 1e-12, std::size_t max_iter = 200);

} // namespace fmore::numeric
