#pragma once

#include <vector>

namespace fmore::numeric {

/// Piecewise-linear interpolant over strictly increasing knots.
///
/// The equilibrium solver tabulates the type-to-score map u0(theta) on a
/// grid and needs both u0 and its inverse as functions; this class provides
/// the forward map, and a second instance built on swapped (monotone)
/// samples provides the inverse.
class LinearInterpolator {
public:
    /// xs must be strictly increasing and the same length as ys (>= 2).
    LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

    /// Evaluate at x, clamping to the end values outside the knot range.
    [[nodiscard]] double operator()(double x) const;

    [[nodiscard]] double x_min() const { return xs_.front(); }
    [[nodiscard]] double x_max() const { return xs_.back(); }
    [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
    [[nodiscard]] const std::vector<double>& ys() const { return ys_; }

    /// Build the inverse interpolant of a strictly monotone function given
    /// as (xs, ys) samples; works for increasing or decreasing ys.
    static LinearInterpolator inverse_of(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

} // namespace fmore::numeric
