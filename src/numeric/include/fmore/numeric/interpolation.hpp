#pragma once

#include <vector>

namespace fmore::numeric {

/// Piecewise-linear interpolant over strictly increasing knots.
///
/// The equilibrium solver tabulates the type-to-score map u0(theta) on a
/// grid and needs both u0 and its inverse as functions; this class provides
/// the forward map, and a second instance built on swapped (monotone)
/// samples provides the inverse.
///
/// Evaluation is O(1) on (near-)uniform knot grids — the solver's theta and
/// u tabulations — via an index guess plus an exact fix-up that lands on
/// the same segment `std::upper_bound` would pick, so results are
/// bit-identical to the binary-search path. Million-bid rounds evaluate
/// these curves a few times per node, which is why the lookup matters.
class LinearInterpolator {
public:
    /// xs must be strictly increasing and the same length as ys (>= 2).
    LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

    /// Evaluate at x, clamping to the end values outside the knot range.
    [[nodiscard]] double operator()(double x) const;

    [[nodiscard]] double x_min() const { return xs_.front(); }
    [[nodiscard]] double x_max() const { return xs_.back(); }
    [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
    [[nodiscard]] const std::vector<double>& ys() const { return ys_; }

    /// Build the inverse interpolant of a strictly monotone function given
    /// as (xs, ys) samples; works for increasing or decreasing ys.
    static LinearInterpolator inverse_of(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

    /// Segment lookup for families of interpolants tabulated on ONE shared
    /// knot grid (the equilibrium solver's per-dimension quality curves):
    /// find the segment once on any member, evaluate every member with
    /// `eval_segment`. Requires x_min() < x < x_max(); returns hi with
    /// xs[hi-1] <= x < xs[hi] — exactly what operator() uses internally,
    /// so eval_segment(segment_for(x), x) == operator()(x) bit-for-bit.
    [[nodiscard]] std::size_t segment_for(double x) const;
    [[nodiscard]] double eval_segment(std::size_t hi, double x) const {
        const std::size_t lo = hi - 1;
        const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
        return ys_[lo] + t * (ys_[hi] - ys_[lo]);
    }

private:
    std::vector<double> xs_;
    std::vector<double> ys_;
    /// Grid step (and its reciprocal) when the knots are numerically
    /// uniform, else 0 (binary search). Only ever an index GUESS — the
    /// fix-up loop guarantees the exact upper_bound segment regardless of
    /// rounding, so the faster multiply-by-reciprocal is safe.
    double uniform_step_ = 0.0;
    double inv_uniform_step_ = 0.0;
};

} // namespace fmore::numeric
