#pragma once

#include <functional>
#include <vector>

namespace fmore::numeric {

using Integrand = std::function<double(double)>;

/// Composite trapezoid rule over [a, b] with `panels` uniform panels.
/// a may exceed b; the result is signed like a Riemann integral.
double trapezoid(const Integrand& f, double a, double b, std::size_t panels);

/// Composite Simpson rule; `panels` is rounded up to even.
double simpson(const Integrand& f, double a, double b, std::size_t panels);

/// Trapezoid rule over pre-tabulated samples (x ascending). This is what the
/// equilibrium solver uses: the integrand is only known on the theta grid.
double trapezoid_tabulated(const std::vector<double>& xs, const std::vector<double>& ys);

/// Cumulative trapezoid: out[i] = integral from xs[0] to xs[i]. out[0] = 0.
std::vector<double> cumulative_trapezoid(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

} // namespace fmore::numeric
