#pragma once

#include <functional>
#include <vector>

namespace fmore::numeric {

/// Result of a scalar maximization.
struct ScalarOptimum {
    double x;
    double value;
};

/// Result of a multivariate maximization.
struct VectorOptimum {
    std::vector<double> x;
    double value;
};

/// Golden-section search for the maximum of a unimodal f on [lo, hi].
/// `tol` is the final bracket width on x.
ScalarOptimum golden_section_maximize(const std::function<double(double)>& f, double lo,
                                      double hi, double tol = 1e-9);

/// Robust global-ish maximizer: coarse grid scan followed by golden-section
/// refinement around the best grid cell. Handles the possibly multi-modal
/// s(q) - c(q, theta) objectives the quality-choice step can face.
ScalarOptimum grid_refine_maximize(const std::function<double(double)>& f, double lo,
                                   double hi, std::size_t grid_points = 64,
                                   double tol = 1e-9);

/// Coordinate-ascent maximizer over a box [lo_i, hi_i]^m for the
/// multi-dimensional quality choice (Proposition 3): repeatedly optimize one
/// coordinate with grid_refine while holding the others fixed, until the
/// objective improves by less than `tol` or `max_sweeps` is hit.
VectorOptimum coordinate_ascent_maximize(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& lo, const std::vector<double>& hi,
    std::size_t grid_points = 32, std::size_t max_sweeps = 24, double tol = 1e-10);

} // namespace fmore::numeric
