#include "fmore/numeric/quadrature.hpp"

#include <stdexcept>

namespace fmore::numeric {

double trapezoid(const Integrand& f, double a, double b, std::size_t panels) {
    if (panels == 0) throw std::invalid_argument("trapezoid: panels must be > 0");
    const double h = (b - a) / static_cast<double>(panels);
    double total = 0.5 * (f(a) + f(b));
    for (std::size_t i = 1; i < panels; ++i) {
        total += f(a + static_cast<double>(i) * h);
    }
    return total * h;
}

double simpson(const Integrand& f, double a, double b, std::size_t panels) {
    if (panels == 0) throw std::invalid_argument("simpson: panels must be > 0");
    if (panels % 2 != 0) ++panels;
    const double h = (b - a) / static_cast<double>(panels);
    double total = f(a) + f(b);
    for (std::size_t i = 1; i < panels; ++i) {
        const double x = a + static_cast<double>(i) * h;
        total += (i % 2 == 0 ? 2.0 : 4.0) * f(x);
    }
    return total * h / 3.0;
}

double trapezoid_tabulated(const std::vector<double>& xs, const std::vector<double>& ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("trapezoid_tabulated: size mismatch");
    if (xs.size() < 2)
        throw std::invalid_argument("trapezoid_tabulated: need at least 2 samples");
    double total = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
        total += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    return total;
}

std::vector<double> cumulative_trapezoid(const std::vector<double>& xs,
                                         const std::vector<double>& ys) {
    if (xs.size() != ys.size())
        throw std::invalid_argument("cumulative_trapezoid: size mismatch");
    if (xs.empty()) return {};
    std::vector<double> out(xs.size(), 0.0);
    for (std::size_t i = 1; i < xs.size(); ++i) {
        out[i] = out[i - 1] + 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    return out;
}

} // namespace fmore::numeric
