#include "fmore/numeric/root_finding.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::numeric {

std::optional<double> bisect(const std::function<double(double)>& f, double lo, double hi,
                             double tol, std::size_t max_iter) {
    if (!(lo <= hi)) throw std::invalid_argument("bisect: lo > hi");
    double fa = f(lo);
    double fb = f(hi);
    if (fa == 0.0) return lo;
    if (fb == 0.0) return hi;
    if ((fa > 0.0) == (fb > 0.0)) return std::nullopt;
    double a = lo;
    double b = hi;
    for (std::size_t it = 0; it < max_iter && (b - a) > tol; ++it) {
        const double mid = 0.5 * (a + b);
        const double fm = f(mid);
        if (fm == 0.0) return mid;
        if ((fm > 0.0) == (fa > 0.0)) {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    return 0.5 * (a + b);
}

std::optional<double> brent(const std::function<double(double)>& f, double lo, double hi,
                            double tol, std::size_t max_iter) {
    double a = lo;
    double b = hi;
    double fa = f(a);
    double fb = f(b);
    if (fa == 0.0) return a;
    if (fb == 0.0) return b;
    if ((fa > 0.0) == (fb > 0.0)) return std::nullopt;
    if (std::fabs(fa) < std::fabs(fb)) {
        std::swap(a, b);
        std::swap(fa, fb);
    }
    double c = a;
    double fc = fa;
    bool used_bisection = true;
    double d = 0.0;
    for (std::size_t it = 0; it < max_iter; ++it) {
        if (fb == 0.0 || std::fabs(b - a) < tol) return b;
        double s;
        if (fa != fc && fb != fc) {
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc)) + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            // Secant step.
            s = b - fb * (b - a) / (fb - fa);
        }
        const double lo_bound = (3.0 * a + b) / 4.0;
        const bool out_of_range = !((s > std::min(lo_bound, b)) && (s < std::max(lo_bound, b)));
        const bool slow_prev = used_bisection ? std::fabs(s - b) >= std::fabs(b - c) / 2.0
                                              : std::fabs(s - b) >= std::fabs(c - d) / 2.0;
        const bool tiny_prev = used_bisection ? std::fabs(b - c) < tol : std::fabs(c - d) < tol;
        if (out_of_range || slow_prev || tiny_prev) {
            s = 0.5 * (a + b);
            used_bisection = true;
        } else {
            used_bisection = false;
        }
        const double fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if ((fa > 0.0) != (fs > 0.0)) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if (std::fabs(fa) < std::fabs(fb)) {
            std::swap(a, b);
            std::swap(fa, fb);
        }
    }
    return b;
}

} // namespace fmore::numeric
