#include "fmore/numeric/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fmore::numeric {

LinearInterpolator::LinearInterpolator(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    if (xs_.size() != ys_.size())
        throw std::invalid_argument("LinearInterpolator: size mismatch");
    if (xs_.size() < 2) throw std::invalid_argument("LinearInterpolator: need >= 2 knots");
    for (std::size_t i = 1; i < xs_.size(); ++i) {
        if (!(xs_[i] > xs_[i - 1]))
            throw std::invalid_argument("LinearInterpolator: xs must be strictly increasing");
    }
    // Uniform-grid detection (conservative): when every knot sits within a
    // tiny relative tolerance of the linspace prediction, segment lookup
    // can start from an O(1) index guess. The tolerance only gates the
    // OPTIMIZATION — the fix-up in operator() makes the selected segment
    // exact either way.
    const double step =
        (xs_.back() - xs_.front()) / static_cast<double>(xs_.size() - 1);
    const double tolerance =
        1e-9 * std::max(std::abs(xs_.front()), std::abs(xs_.back()));
    bool uniform = step > 0.0;
    for (std::size_t i = 1; uniform && i + 1 < xs_.size(); ++i) {
        const double predicted = xs_.front() + static_cast<double>(i) * step;
        if (std::abs(xs_[i] - predicted) > tolerance) uniform = false;
    }
    if (uniform) {
        uniform_step_ = step;
        inv_uniform_step_ = 1.0 / step;
    }
}

std::size_t LinearInterpolator::segment_for(double x) const {
    std::size_t hi;
    if (uniform_step_ > 0.0) {
        // O(1) guess, then walk to the unique segment with
        // xs_[hi-1] <= x < xs_[hi] — exactly upper_bound's answer. The
        // caller's range guards bound both loops: xs_.back() > x stops the
        // ascent, xs_.front() < x stops the descent.
        const std::size_t guess =
            static_cast<std::size_t>((x - xs_.front()) * inv_uniform_step_) + 1;
        hi = std::clamp<std::size_t>(guess, 1, xs_.size() - 1);
        while (xs_[hi] <= x) ++hi;
        while (xs_[hi - 1] > x) --hi;
    } else {
        const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
        hi = static_cast<std::size_t>(it - xs_.begin());
    }
    return hi;
}

double LinearInterpolator::operator()(double x) const {
    if (x <= xs_.front()) return ys_.front();
    if (x >= xs_.back()) return ys_.back();
    return eval_segment(segment_for(x), x);
}

LinearInterpolator LinearInterpolator::inverse_of(const std::vector<double>& xs,
                                                  const std::vector<double>& ys) {
    if (xs.size() != ys.size() || xs.size() < 2)
        throw std::invalid_argument("inverse_of: bad sample arrays");
    const bool increasing = ys.back() > ys.front();
    std::vector<double> inv_x = ys;
    std::vector<double> inv_y = xs;
    if (!increasing) {
        std::reverse(inv_x.begin(), inv_x.end());
        std::reverse(inv_y.begin(), inv_y.end());
    }
    // Collapse numerically-equal neighbours so the knot sequence is strictly
    // increasing; the function must be monotone for the inverse to exist.
    std::vector<double> cx;
    std::vector<double> cy;
    cx.reserve(inv_x.size());
    cy.reserve(inv_y.size());
    for (std::size_t i = 0; i < inv_x.size(); ++i) {
        if (!cx.empty() && inv_x[i] <= cx.back()) {
            if (inv_x[i] < cx.back() - 1e-12)
                throw std::invalid_argument("inverse_of: samples are not monotone");
            continue;
        }
        cx.push_back(inv_x[i]);
        cy.push_back(inv_y[i]);
    }
    if (cx.size() < 2) throw std::invalid_argument("inverse_of: degenerate monotone range");
    return LinearInterpolator(std::move(cx), std::move(cy));
}

} // namespace fmore::numeric
