#include "fmore/numeric/interpolation.hpp"

#include <algorithm>
#include <stdexcept>

namespace fmore::numeric {

LinearInterpolator::LinearInterpolator(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    if (xs_.size() != ys_.size())
        throw std::invalid_argument("LinearInterpolator: size mismatch");
    if (xs_.size() < 2) throw std::invalid_argument("LinearInterpolator: need >= 2 knots");
    for (std::size_t i = 1; i < xs_.size(); ++i) {
        if (!(xs_[i] > xs_[i - 1]))
            throw std::invalid_argument("LinearInterpolator: xs must be strictly increasing");
    }
}

double LinearInterpolator::operator()(double x) const {
    if (x <= xs_.front()) return ys_.front();
    if (x >= xs_.back()) return ys_.back();
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const auto hi = static_cast<std::size_t>(it - xs_.begin());
    const std::size_t lo = hi - 1;
    const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
    return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

LinearInterpolator LinearInterpolator::inverse_of(const std::vector<double>& xs,
                                                  const std::vector<double>& ys) {
    if (xs.size() != ys.size() || xs.size() < 2)
        throw std::invalid_argument("inverse_of: bad sample arrays");
    const bool increasing = ys.back() > ys.front();
    std::vector<double> inv_x = ys;
    std::vector<double> inv_y = xs;
    if (!increasing) {
        std::reverse(inv_x.begin(), inv_x.end());
        std::reverse(inv_y.begin(), inv_y.end());
    }
    // Collapse numerically-equal neighbours so the knot sequence is strictly
    // increasing; the function must be monotone for the inverse to exist.
    std::vector<double> cx;
    std::vector<double> cy;
    cx.reserve(inv_x.size());
    cy.reserve(inv_y.size());
    for (std::size_t i = 0; i < inv_x.size(); ++i) {
        if (!cx.empty() && inv_x[i] <= cx.back()) {
            if (inv_x[i] < cx.back() - 1e-12)
                throw std::invalid_argument("inverse_of: samples are not monotone");
            continue;
        }
        cx.push_back(inv_x[i]);
        cy.push_back(inv_y[i]);
    }
    if (cx.size() < 2) throw std::invalid_argument("inverse_of: degenerate monotone range");
    return LinearInterpolator(std::move(cx), std::move(cy));
}

} // namespace fmore::numeric
