#include "fmore/numeric/optimize.hpp"

#include <cmath>
#include <stdexcept>

namespace fmore::numeric {

ScalarOptimum golden_section_maximize(const std::function<double(double)>& f, double lo,
                                      double hi, double tol) {
    if (!(lo <= hi)) throw std::invalid_argument("golden_section: lo > hi");
    constexpr double inv_phi = 0.6180339887498949; // 1/golden ratio
    double a = lo;
    double b = hi;
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    while (b - a > tol) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = f(x1);
        }
    }
    const double x = 0.5 * (a + b);
    return {x, f(x)};
}

ScalarOptimum grid_refine_maximize(const std::function<double(double)>& f, double lo,
                                   double hi, std::size_t grid_points, double tol) {
    if (!(lo <= hi)) throw std::invalid_argument("grid_refine: lo > hi");
    if (grid_points < 2) grid_points = 2;
    double best_x = lo;
    double best_v = f(lo);
    const double h = (hi - lo) / static_cast<double>(grid_points - 1);
    for (std::size_t i = 1; i < grid_points; ++i) {
        const double x = lo + static_cast<double>(i) * h;
        const double v = f(x);
        if (v > best_v) {
            best_v = v;
            best_x = x;
        }
    }
    // Refine inside the neighbouring cells of the best grid point.
    const double a = std::max(lo, best_x - h);
    const double b = std::min(hi, best_x + h);
    const ScalarOptimum refined = golden_section_maximize(f, a, b, tol);
    return refined.value >= best_v ? refined : ScalarOptimum{best_x, best_v};
}

VectorOptimum coordinate_ascent_maximize(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& lo, const std::vector<double>& hi, std::size_t grid_points,
    std::size_t max_sweeps, double tol) {
    if (lo.size() != hi.size())
        throw std::invalid_argument("coordinate_ascent: bound size mismatch");
    if (lo.empty()) throw std::invalid_argument("coordinate_ascent: empty bounds");
    const std::size_t m = lo.size();
    std::vector<double> x(m);
    for (std::size_t i = 0; i < m; ++i) {
        if (!(lo[i] <= hi[i]))
            throw std::invalid_argument("coordinate_ascent: lo > hi in some dimension");
        x[i] = 0.5 * (lo[i] + hi[i]);
    }
    double best = f(x);
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        const double before = best;
        for (std::size_t d = 0; d < m; ++d) {
            auto slice = [&](double xi) {
                std::vector<double> probe = x;
                probe[d] = xi;
                return f(probe);
            };
            const ScalarOptimum opt = grid_refine_maximize(slice, lo[d], hi[d], grid_points);
            if (opt.value > best) {
                best = opt.value;
                x[d] = opt.x;
            }
        }
        if (best - before < tol) break;
    }
    return {x, best};
}

} // namespace fmore::numeric
