#include "fmore/numeric/ode.hpp"

#include <stdexcept>

namespace fmore::numeric {

std::vector<OdePoint> euler(const OdeRhs& f, double x0, double x1, double y0,
                            std::size_t steps) {
    if (steps == 0) throw std::invalid_argument("euler: steps must be > 0");
    std::vector<OdePoint> out;
    out.reserve(steps + 1);
    const double h = (x1 - x0) / static_cast<double>(steps);
    double x = x0;
    double y = y0;
    out.push_back({x, y});
    for (std::size_t i = 0; i < steps; ++i) {
        y += h * f(x, y);
        x = x0 + static_cast<double>(i + 1) * h;
        out.push_back({x, y});
    }
    return out;
}

std::vector<OdePoint> runge_kutta4(const OdeRhs& f, double x0, double x1, double y0,
                                   std::size_t steps) {
    if (steps == 0) throw std::invalid_argument("runge_kutta4: steps must be > 0");
    std::vector<OdePoint> out;
    out.reserve(steps + 1);
    const double h = (x1 - x0) / static_cast<double>(steps);
    double x = x0;
    double y = y0;
    out.push_back({x, y});
    for (std::size_t i = 0; i < steps; ++i) {
        const double k1 = f(x, y);
        const double k2 = f(x + 0.5 * h, y + 0.5 * h * k1);
        const double k3 = f(x + 0.5 * h, y + 0.5 * h * k2);
        const double k4 = f(x + h, y + h * k3);
        y += (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        x = x0 + static_cast<double>(i + 1) * h;
        out.push_back({x, y});
    }
    return out;
}

double euler_final(const OdeRhs& f, double x0, double x1, double y0, std::size_t steps) {
    return euler(f, x0, x1, y0, steps).back().y;
}

double runge_kutta4_final(const OdeRhs& f, double x0, double x1, double y0,
                          std::size_t steps) {
    return runge_kutta4(f, x0, x1, y0, steps).back().y;
}

} // namespace fmore::numeric
