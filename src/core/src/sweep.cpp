#include "fmore/core/sweep.hpp"

#include <stdexcept>

namespace fmore::core {

SweepAxis parse_sweep_axis(const std::string& text) {
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("sweep axis '" + text
                                    + "': expected key=value1,value2,...");
    SweepAxis axis;
    axis.key = text.substr(0, eq);
    std::size_t start = eq + 1;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string token = text.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!token.empty()) axis.values.push_back(token);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (axis.values.empty())
        throw std::invalid_argument("sweep axis '" + text + "': no values after '='");
    return axis;
}

std::vector<SweepPoint> zip_sweep(const ExperimentSpec& base,
                                  const std::vector<SweepAxis>& axes) {
    if (axes.empty()) throw std::invalid_argument("zip_sweep: no axes");
    const std::size_t length = axes.front().values.size();
    for (const SweepAxis& axis : axes) {
        if (axis.values.empty())
            throw std::invalid_argument("zip_sweep: axis '" + axis.key
                                        + "' has no values");
        if (axis.values.size() != length)
            throw std::invalid_argument(
                "zip_sweep: axis '" + axis.key + "' has "
                + std::to_string(axis.values.size()) + " values but axis '"
                + axes.front().key + "' has " + std::to_string(length)
                + " — zipped axes co-vary and must be the same length");
    }
    std::vector<SweepPoint> points;
    points.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        SweepPoint point{"", base};
        for (const SweepAxis& axis : axes) {
            apply_key_value(point.spec, axis.key, axis.values[i]);
            if (!point.label.empty()) point.label += ", ";
            point.label += axis.key + "=" + axis.values[i];
        }
        points.push_back(std::move(point));
    }
    return points;
}

std::string policy_display_name(const std::string& policy) {
    if (policy == "fmore") return "FMore";
    if (policy == "psi_fmore") return "psi-FMore";
    if (policy == "randfl") return "RandFL";
    if (policy == "fixfl") return "FixFL";
    return policy;
}

std::vector<SweepSummary> summarize_points(const std::vector<SweepPoint>& points,
                                           const std::vector<std::string>& policies,
                                           std::size_t trials,
                                           const TrialRunnerOptions& options) {
    if (policies.empty())
        throw std::invalid_argument("summarize_points: no policies");
    std::vector<SweepSummary> summaries;
    summaries.reserve(points.size());
    for (const SweepPoint& point : points) {
        SweepSummary summary;
        summary.label = point.label;
        summary.spec = point.spec;
        for (const std::string& policy : policies) {
            std::vector<fl::RunResult> runs =
                run_experiment_trials(point.spec, policy, trials, options);
            summary.series.push_back(
                NamedSeries{policy_display_name(policy), average_runs(runs)});
            summary.runs.push_back(std::move(runs));
        }
        summaries.push_back(std::move(summary));
    }
    return summaries;
}

std::vector<SweepPoint> expand_sweep(const ExperimentSpec& base,
                                     const std::vector<SweepAxis>& axes) {
    std::vector<SweepPoint> points{SweepPoint{"", base}};
    for (const SweepAxis& axis : axes) {
        if (axis.values.empty())
            throw std::invalid_argument("expand_sweep: axis '" + axis.key
                                        + "' has no values");
        std::vector<SweepPoint> next;
        next.reserve(points.size() * axis.values.size());
        for (const SweepPoint& point : points) {
            for (const std::string& value : axis.values) {
                SweepPoint expanded = point;
                apply_key_value(expanded.spec, axis.key, value);
                if (!expanded.label.empty()) expanded.label += ", ";
                expanded.label += axis.key + "=" + value;
                next.push_back(std::move(expanded));
            }
        }
        points = std::move(next);
    }
    return points;
}

} // namespace fmore::core
