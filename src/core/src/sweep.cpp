#include "fmore/core/sweep.hpp"

#include <stdexcept>

namespace fmore::core {

SweepAxis parse_sweep_axis(const std::string& text) {
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("sweep axis '" + text
                                    + "': expected key=value1,value2,...");
    SweepAxis axis;
    axis.key = text.substr(0, eq);
    std::size_t start = eq + 1;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string token = text.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!token.empty()) axis.values.push_back(token);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (axis.values.empty())
        throw std::invalid_argument("sweep axis '" + text + "': no values after '='");
    return axis;
}

std::vector<SweepPoint> expand_sweep(const ExperimentSpec& base,
                                     const std::vector<SweepAxis>& axes) {
    std::vector<SweepPoint> points{SweepPoint{"", base}};
    for (const SweepAxis& axis : axes) {
        if (axis.values.empty())
            throw std::invalid_argument("expand_sweep: axis '" + axis.key
                                        + "' has no values");
        std::vector<SweepPoint> next;
        next.reserve(points.size() * axis.values.size());
        for (const SweepPoint& point : points) {
            for (const std::string& value : axis.values) {
                SweepPoint expanded = point;
                apply_key_value(expanded.spec, axis.key, value);
                if (!expanded.label.empty()) expanded.label += ", ";
                expanded.label += axis.key + "=" + value;
                next.push_back(std::move(expanded));
            }
        }
        points = std::move(next);
    }
    return points;
}

} // namespace fmore::core
