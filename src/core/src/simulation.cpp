#include "fmore/core/simulation.hpp"

#include <sstream>
#include <stdexcept>

#include "checkpoint_hooks.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/policy.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::core {

namespace {

/// Split one generated pool into train/test so both share prototypes.
std::pair<ml::Dataset, ml::Dataset> make_dataset(DatasetKind kind, std::size_t train_n,
                                                 std::size_t test_n, stats::Rng& rng) {
    const std::size_t total = train_n + test_n;
    ml::Dataset pool;
    switch (kind) {
        case DatasetKind::mnist_o:
            pool = ml::make_synthetic_images(ml::mnist_o_spec(total), rng);
            break;
        case DatasetKind::mnist_f:
            pool = ml::make_synthetic_images(ml::mnist_f_spec(total), rng);
            break;
        case DatasetKind::cifar10:
            pool = ml::make_synthetic_images(ml::cifar10_spec(total), rng);
            break;
        case DatasetKind::hpnews:
            pool = ml::make_synthetic_text(ml::hpnews_spec(total), rng);
            break;
    }
    const std::size_t vol = pool.sample_volume();
    ml::Dataset train;
    train.sample_shape = pool.sample_shape;
    train.num_classes = pool.num_classes;
    train.features.assign(pool.features.begin(),
                          pool.features.begin() + static_cast<std::ptrdiff_t>(train_n * vol));
    train.labels.assign(pool.labels.begin(),
                        pool.labels.begin() + static_cast<std::ptrdiff_t>(train_n));
    ml::Dataset test;
    test.sample_shape = pool.sample_shape;
    test.num_classes = pool.num_classes;
    test.features.assign(pool.features.begin() + static_cast<std::ptrdiff_t>(train_n * vol),
                         pool.features.end());
    test.labels.assign(pool.labels.begin() + static_cast<std::ptrdiff_t>(train_n),
                       pool.labels.end());
    return {std::move(train), std::move(test)};
}

/// Every input of the simulator's equilibrium tabulation, hex-exact.
std::string equilibrium_cache_key(const SimulationConfig& config) {
    std::ostringstream key;
    key << std::hexfloat << "sim|alpha=" << config.alpha
        << "|beta_data=" << config.beta_data << "|beta_category=" << config.beta_category
        << "|data_hi=" << static_cast<double>(config.data_hi)
        << "|theta=" << config.theta_lo << ',' << config.theta_hi
        << "|N=" << config.num_nodes << "|K=" << config.winners
        << "|win_model=" << static_cast<int>(config.win_model);
    return key.str();
}

} // namespace

SimulationConfig default_simulation(DatasetKind dataset) {
    SimulationConfig config;
    config.dataset = dataset;
    if (dataset == DatasetKind::hpnews) {
        // Plain SGD on the LSTM needs a bigger step and more local work per
        // round to land in the paper's Fig. 7 accuracy band.
        config.learning_rate = 0.40;
        config.local_epochs = 3;
    }
    return config;
}

std::string to_string(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::mnist_o: return "MNIST-O";
        case DatasetKind::mnist_f: return "MNIST-F";
        case DatasetKind::cifar10: return "CIFAR-10";
        case DatasetKind::hpnews: return "HPNews";
    }
    return "?";
}

std::string to_string(Strategy strategy) {
    switch (strategy) {
        case Strategy::fmore: return "FMore";
        case Strategy::psi_fmore: return "psi-FMore";
        case Strategy::randfl: return "RandFL";
        case Strategy::fixfl: return "FixFL";
    }
    return "?";
}

SimulationTrial::SimulationTrial(const SimulationConfig& config, std::size_t trial_index)
    : config_(config),
      trial_index_(trial_index),
      trial_seed_(config.seed + 1000003ULL * (trial_index + 1)) {
    stats::Rng rng(trial_seed_);

    stats::Rng data_rng = rng.split();
    auto [train, test] = make_dataset(config_.dataset, config_.train_samples,
                                      config_.test_samples, data_rng);
    train_ = std::move(train);
    test_ = std::move(test);

    stats::Rng part_rng = rng.split();
    shards_ = ml::partition_non_iid_variable(train_, config_.num_nodes, config_.shards_lo,
                                             config_.shards_hi, part_rng);
    ml::resize_shards(shards_, train_, config_.data_lo, config_.data_hi, part_rng);

    theta_dist_ = std::make_unique<stats::UniformDistribution>(config_.theta_lo,
                                                               config_.theta_hi);

    // The tabulated strategy depends only on the config (never the trial
    // index), so a multi-trial sweep solves it once and shares the bundle.
    solved_ = EquilibriumCache::instance().get_or_solve(
        equilibrium_cache_key(config_), [this] {
            // Scoring of Section V.A: S(q1, q2, p) = alpha * q1 * q2 - p
            // with the data dimension min-max normalized over the
            // advertised range.
            const auto data_hi = static_cast<double>(config_.data_hi);
            std::vector<stats::MinMaxNormalizer> norms;
            norms.emplace_back(0.0, data_hi);
            norms.emplace_back(0.0, 1.0);
            auto scoring = std::make_unique<auction::ScaledProductScoring>(config_.alpha,
                                                                           2, norms);
            // Additive cost over the same units: beta_data is quoted per
            // normalized data unit, so divide by the range to price raw
            // sample counts.
            auto cost = std::make_unique<auction::AdditiveCost>(std::vector<double>{
                config_.beta_data / data_hi, config_.beta_category});
            auto theta = std::make_unique<stats::UniformDistribution>(config_.theta_lo,
                                                                      config_.theta_hi);

            auction::EquilibriumConfig eq;
            eq.num_bidders = config_.num_nodes;
            eq.num_winners = config_.winners;
            eq.win_model = config_.win_model;
            const auction::EquilibriumSolver solver(*scoring, *cost, *theta, {1.0, 0.05},
                                                    {data_hi, 1.0}, eq);
            auction::EquilibriumStrategy strategy = solver.solve();
            return std::make_shared<const SolvedEquilibrium>(
                std::move(scoring), std::move(cost), std::move(theta),
                std::move(strategy));
        });

    rebuild_population();
}

namespace {

SimulationConfig validated_config(const ExperimentSpec& spec) {
    validate_or_throw(spec);
    return to_simulation_config(spec);
}

} // namespace

SimulationTrial::SimulationTrial(const ExperimentSpec& spec, std::size_t trial_index)
    : SimulationTrial(validated_config(spec), trial_index) {}

void SimulationTrial::rebuild_population() {
    stats::Rng pop_rng(trial_seed_ ^ 0xabcdef12345ULL);
    mec::PopulationSpec spec;
    spec.dynamics.resource_jitter = config_.resource_jitter;
    spec.dynamics.theta_jitter = config_.theta_jitter;
    population_ = std::make_unique<mec::MecPopulation>(shards_, train_.num_classes,
                                                       *theta_dist_, spec, pop_rng);
}

ml::Model SimulationTrial::make_model(std::uint64_t seed) const {
    switch (config_.dataset) {
        case DatasetKind::mnist_o:
        case DatasetKind::mnist_f: {
            ml::ImageSpec spec{1, 12, 12, train_.num_classes};
            return ml::make_cnn(spec, seed);
        }
        case DatasetKind::cifar10: {
            ml::ImageSpec spec{3, 14, 14, train_.num_classes};
            return ml::make_cnn_deep(spec, seed);
        }
        case DatasetKind::hpnews: {
            const ml::TextDatasetSpec text = ml::hpnews_spec(1);
            ml::TextSpec spec{text.vocab, text.seq_len, train_.num_classes};
            return ml::make_lstm_classifier(spec, seed);
        }
    }
    throw std::logic_error("SimulationTrial: unknown dataset");
}

fl::RunResult SimulationTrial::run(const std::string& policy_name) {
    return run_resumable(policy_name, nullptr);
}

fl::RunResult SimulationTrial::run_resumable(const std::string& policy_name,
                                             const RunCheckpoint* resume_from) {
    // Fresh population state per policy so each sees the same dynamics.
    rebuild_population();
    ml::Model model = make_model(trial_seed_ ^ 0x5151ULL);

    fl::CoordinatorConfig cc;
    cc.rounds = config_.rounds;
    cc.winners_per_round = config_.winners;
    cc.local_epochs = config_.local_epochs;
    cc.batch_size = config_.batch_size;
    cc.learning_rate = config_.learning_rate;
    cc.eval_cap = config_.eval_cap;
    fl::Coordinator coordinator(model, train_, test_, shards_, cc);

    fl::PolicyContext context;
    context.num_clients = config_.num_nodes;
    context.winners = config_.winners;
    context.trial_seed = trial_seed_;
    context.make_auction_selector =
        [this](const fl::PolicyContext& ctx) -> std::unique_ptr<fl::ClientSelector> {
        auction::WinnerDeterminationConfig wd;
        wd.mechanism = config_.mechanism;
        wd.num_winners = config_.winners;
        wd.payment_rule = config_.payment_rule;
        wd.psi = ctx.probabilistic_acceptance ? config_.psi : 1.0;
        if (ctx.probabilistic_acceptance) wd.psi_per_node = config_.psi_per_node;
        wd.budget = config_.budget;
        wd.full_ranking = config_.full_scoreboard;
        // No wall clock in the simulator: the latency table stays empty, so
        // the discount subtracts 0 and first/second pricing is unchanged.
        wd.latency_discount = config_.latency_discount;
        if (config_.market_shards > 1) {
            // Sharded market: same winners, payments and metrics as the
            // monolithic selector by construction (shard_equivalence_test).
            auto sharded = std::make_unique<mec::ShardedAuctionSelector>(
                *population_, *solved_->scoring, solved_->strategy, wd,
                mec::QualityLayout{mec::ResourceDim::data_size,
                                   mec::ResourceDim::category_proportion},
                /*data_dimension=*/0, config_.market_shards);
            sharded->set_shard_timeout(config_.shard_timeout_s);
            if (!config_.fault_plan.empty()) {
                // Coordinator-only plans (ckill/ckill_mid) leave the shard
                // workers alone, so the selector runs exactly as without a
                // plan — what the crash harness's uninterrupted twin needs.
                const util::FaultInjector faults =
                    util::FaultInjector::from_spec(config_.fault_plan);
                if (faults.has_shard_faults()) sharded->set_fault_injector(faults);
            }
            if (config_.shard_quorum > 0)
                sharded->set_min_live_shards(config_.shard_quorum);
            return sharded;
        }
        return std::make_unique<mec::AuctionSelector>(
            *population_, *solved_->scoring, solved_->strategy, wd,
            mec::data_category_extractor(), /*data_dimension=*/0);
    };

    const std::unique_ptr<fl::SelectionPolicy> policy = fl::make_policy(policy_name);
    const std::unique_ptr<fl::ClientSelector> selector = policy->make_selector(context);

    stats::Rng run_rng(trial_seed_ ^ 0xf00dULL);

    // Durable-run harness: restore checkpointed state (the selector and
    // model were just rebuilt exactly as a fresh run builds them, so
    // restored state + identical construction = identical draws), then
    // arrange checkpoint writes on the configured cadence.
    fl::RunControl control;
    if (resume_from) {
        population_->restore(resume_from->population);
        selector->restore_checkpoint(detail::make_selector_checkpoint(*resume_from));
        detail::restore_rng(run_rng, resume_from->rng_state);
        control = detail::make_resume_control(*resume_from);
    }
    detail::CheckpointWriter writer;
    // The coordinator-kill fault is one-shot: only a FRESH run arms it.
    // A resumed run may re-execute the kill round (mid-write kills tear
    // the checkpoint before it lands), so re-arming would crash-loop the
    // recovery instead of converging on the uninterrupted twin's tape.
    if (!resume_from && !config_.fault_plan.empty()) {
        const util::FaultInjector faults =
            util::FaultInjector::from_spec(config_.fault_plan);
        writer.ckill_round = faults.coordinator_kill_round();
        writer.ckill_mid_round = faults.coordinator_kill_mid_write_round();
    }
    const bool durable = config_.checkpoint_every > 0 || writer.ckill_round > 0
                         || writer.ckill_mid_round > 0;
    if (durable) {
        writer.every = config_.checkpoint_every;
        writer.dir = checkpoint_run_dir(config_.checkpoint_dir, policy_name,
                                        trial_index_);
        writer.keep = config_.checkpoint_keep;
        writer.total_rounds = config_.rounds;
        writer.spec_text = to_text(from_simulation_config(config_));
        writer.policy = policy_name;
        writer.trial_index = trial_index_;
        writer.run_rng = &run_rng;
        writer.population = population_.get();
        writer.selector = selector.get();
        control.on_round = std::cref(writer);
    }
    const fl::RunControl* control_ptr = (resume_from || durable) ? &control : nullptr;

    fl::RunResult result = coordinator.run(*selector, run_rng, nullptr, control_ptr);
    if (!result.rounds.empty()
        && !result.rounds.back().selection.all_scores.empty()) {
        last_all_scores_ = result.rounds.back().selection.all_scores;
    }
    return result;
}

fl::RunResult SimulationTrial::run(Strategy strategy) {
    return run(to_policy_name(strategy));
}

} // namespace fmore::core
