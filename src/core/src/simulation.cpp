#include "fmore/core/simulation.hpp"

#include <stdexcept>

#include "fmore/fl/selection.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::core {

namespace {

/// Split one generated pool into train/test so both share prototypes.
std::pair<ml::Dataset, ml::Dataset> make_dataset(DatasetKind kind, std::size_t train_n,
                                                 std::size_t test_n, stats::Rng& rng) {
    const std::size_t total = train_n + test_n;
    ml::Dataset pool;
    switch (kind) {
        case DatasetKind::mnist_o:
            pool = ml::make_synthetic_images(ml::mnist_o_spec(total), rng);
            break;
        case DatasetKind::mnist_f:
            pool = ml::make_synthetic_images(ml::mnist_f_spec(total), rng);
            break;
        case DatasetKind::cifar10:
            pool = ml::make_synthetic_images(ml::cifar10_spec(total), rng);
            break;
        case DatasetKind::hpnews:
            pool = ml::make_synthetic_text(ml::hpnews_spec(total), rng);
            break;
    }
    const std::size_t vol = pool.sample_volume();
    ml::Dataset train;
    train.sample_shape = pool.sample_shape;
    train.num_classes = pool.num_classes;
    train.features.assign(pool.features.begin(),
                          pool.features.begin() + static_cast<std::ptrdiff_t>(train_n * vol));
    train.labels.assign(pool.labels.begin(),
                        pool.labels.begin() + static_cast<std::ptrdiff_t>(train_n));
    ml::Dataset test;
    test.sample_shape = pool.sample_shape;
    test.num_classes = pool.num_classes;
    test.features.assign(pool.features.begin() + static_cast<std::ptrdiff_t>(train_n * vol),
                         pool.features.end());
    test.labels.assign(pool.labels.begin() + static_cast<std::ptrdiff_t>(train_n),
                       pool.labels.end());
    return {std::move(train), std::move(test)};
}

} // namespace

SimulationConfig default_simulation(DatasetKind dataset) {
    SimulationConfig config;
    config.dataset = dataset;
    if (dataset == DatasetKind::hpnews) {
        // Plain SGD on the LSTM needs a bigger step and more local work per
        // round to land in the paper's Fig. 7 accuracy band.
        config.learning_rate = 0.40;
        config.local_epochs = 3;
    }
    return config;
}

std::string to_string(DatasetKind kind) {
    switch (kind) {
        case DatasetKind::mnist_o: return "MNIST-O";
        case DatasetKind::mnist_f: return "MNIST-F";
        case DatasetKind::cifar10: return "CIFAR-10";
        case DatasetKind::hpnews: return "HPNews";
    }
    return "?";
}

std::string to_string(Strategy strategy) {
    switch (strategy) {
        case Strategy::fmore: return "FMore";
        case Strategy::psi_fmore: return "psi-FMore";
        case Strategy::randfl: return "RandFL";
        case Strategy::fixfl: return "FixFL";
    }
    return "?";
}

SimulationTrial::SimulationTrial(const SimulationConfig& config, std::size_t trial_index)
    : config_(config),
      trial_seed_(config.seed + 1000003ULL * (trial_index + 1)) {
    stats::Rng rng(trial_seed_);

    stats::Rng data_rng = rng.split();
    auto [train, test] = make_dataset(config_.dataset, config_.train_samples,
                                      config_.test_samples, data_rng);
    train_ = std::move(train);
    test_ = std::move(test);

    stats::Rng part_rng = rng.split();
    shards_ = ml::partition_non_iid_variable(train_, config_.num_nodes, config_.shards_lo,
                                             config_.shards_hi, part_rng);
    ml::resize_shards(shards_, train_, config_.data_lo, config_.data_hi, part_rng);

    theta_dist_ = std::make_unique<stats::UniformDistribution>(config_.theta_lo,
                                                               config_.theta_hi);

    // Scoring of Section V.A: S(q1, q2, p) = alpha * q1 * q2 - p with the
    // data dimension min-max normalized over the advertised range.
    const auto data_hi = static_cast<double>(config_.data_hi);
    std::vector<stats::MinMaxNormalizer> norms;
    norms.emplace_back(0.0, data_hi);
    norms.emplace_back(0.0, 1.0);
    scoring_ = std::make_unique<auction::ScaledProductScoring>(config_.alpha, 2, norms);

    // Additive cost over the same units: beta_data is quoted per normalized
    // data unit, so divide by the range to price raw sample counts.
    cost_ = std::make_unique<auction::AdditiveCost>(
        std::vector<double>{config_.beta_data / data_hi, config_.beta_category});

    auction::EquilibriumConfig eq;
    eq.num_bidders = config_.num_nodes;
    eq.num_winners = config_.winners;
    eq.win_model = config_.win_model;
    const auction::EquilibriumSolver solver(*scoring_, *cost_, *theta_dist_,
                                            {1.0, 0.05}, {data_hi, 1.0}, eq);
    equilibrium_ = std::make_unique<auction::EquilibriumStrategy>(solver.solve());

    rebuild_population();
}

void SimulationTrial::rebuild_population() {
    stats::Rng pop_rng(trial_seed_ ^ 0xabcdef12345ULL);
    mec::PopulationSpec spec;
    spec.dynamics.resource_jitter = config_.resource_jitter;
    spec.dynamics.theta_jitter = config_.theta_jitter;
    population_ = std::make_unique<mec::MecPopulation>(shards_, train_.num_classes,
                                                       *theta_dist_, spec, pop_rng);
}

ml::Model SimulationTrial::make_model(std::uint64_t seed) const {
    switch (config_.dataset) {
        case DatasetKind::mnist_o:
        case DatasetKind::mnist_f: {
            ml::ImageSpec spec{1, 12, 12, train_.num_classes};
            return ml::make_cnn(spec, seed);
        }
        case DatasetKind::cifar10: {
            ml::ImageSpec spec{3, 14, 14, train_.num_classes};
            return ml::make_cnn_deep(spec, seed);
        }
        case DatasetKind::hpnews: {
            const ml::TextDatasetSpec text = ml::hpnews_spec(1);
            ml::TextSpec spec{text.vocab, text.seq_len, train_.num_classes};
            return ml::make_lstm_classifier(spec, seed);
        }
    }
    throw std::logic_error("SimulationTrial: unknown dataset");
}

fl::RunResult SimulationTrial::run(Strategy strategy) {
    // Fresh population state per strategy so each sees the same dynamics.
    rebuild_population();
    ml::Model model = make_model(trial_seed_ ^ 0x5151ULL);

    fl::CoordinatorConfig cc;
    cc.rounds = config_.rounds;
    cc.winners_per_round = config_.winners;
    cc.local_epochs = config_.local_epochs;
    cc.batch_size = config_.batch_size;
    cc.learning_rate = config_.learning_rate;
    cc.eval_cap = config_.eval_cap;
    fl::Coordinator coordinator(model, train_, test_, shards_, cc);

    stats::Rng run_rng(trial_seed_ ^ 0xf00dULL);
    auction::WinnerDeterminationConfig wd;
    wd.num_winners = config_.winners;
    wd.payment_rule = config_.payment_rule;
    wd.psi = strategy == Strategy::psi_fmore ? config_.psi : 1.0;
    wd.budget = config_.budget;

    fl::RunResult result;
    switch (strategy) {
        case Strategy::fmore:
        case Strategy::psi_fmore: {
            mec::AuctionSelector selector(*population_, *scoring_, *equilibrium_, wd,
                                          mec::data_category_extractor(),
                                          /*data_dimension=*/0);
            result = coordinator.run(selector, run_rng);
            if (!result.rounds.empty()) {
                last_all_scores_ = result.rounds.back().selection.all_scores;
            }
            break;
        }
        case Strategy::randfl: {
            fl::RandomSelector selector(config_.num_nodes);
            result = coordinator.run(selector, run_rng);
            break;
        }
        case Strategy::fixfl: {
            stats::Rng fix_rng(trial_seed_ ^ 0xf1f1ULL);
            fl::FixedSelector selector(config_.num_nodes, config_.winners, fix_rng);
            result = coordinator.run(selector, run_rng);
            break;
        }
    }
    return result;
}

} // namespace fmore::core
