#include "fmore/core/equilibrium_cache.hpp"

#include <future>
#include <map>
#include <mutex>
#include <stdexcept>

namespace fmore::core {

struct EquilibriumCache::Impl {
    // Each entry is a shared_future so a miss publishes its slot before
    // solving: same-key waiters block on the future (one solve per key)
    // while different-key solves run concurrently — the map mutex is never
    // held across a tabulation.
    using Entry = std::shared_future<std::shared_ptr<const SolvedEquilibrium>>;
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
    std::size_t hits = 0;
    std::size_t misses = 0;
};

EquilibriumCache::Impl& EquilibriumCache::impl() const {
    static Impl impl;
    return impl;
}

EquilibriumCache& EquilibriumCache::instance() {
    static EquilibriumCache cache;
    return cache;
}

std::shared_ptr<const SolvedEquilibrium>
EquilibriumCache::get_or_solve(const std::string& key, const Builder& build) {
    if (!build) throw std::invalid_argument("EquilibriumCache: null builder");
    Impl& state = impl();
    std::promise<std::shared_ptr<const SolvedEquilibrium>> promise;
    Impl::Entry published;
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        const auto it = state.entries.find(key);
        if (it != state.entries.end()) {
            ++state.hits;
            published = it->second;
        } else {
            ++state.misses;
            state.entries.emplace(key, promise.get_future().share());
        }
    }
    // Wait (if the first solve is still running) outside the lock so hits
    // never serialize other keys behind an in-flight tabulation.
    if (published.valid()) return published.get();
    try {
        std::shared_ptr<const SolvedEquilibrium> solved = build();
        if (!solved)
            throw std::logic_error("EquilibriumCache: builder returned null for key '"
                                   + key + "'");
        promise.set_value(solved);
        return solved;
    } catch (...) {
        // Un-publish the failed slot so a later call can retry, and wake any
        // waiters with the error.
        promise.set_exception(std::current_exception());
        const std::lock_guard<std::mutex> lock(state.mutex);
        state.entries.erase(key);
        throw;
    }
}

EquilibriumCacheStats EquilibriumCache::stats() const {
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    return EquilibriumCacheStats{state.hits, state.misses, state.entries.size()};
}

void EquilibriumCache::clear() {
    Impl& state = impl();
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.entries.clear();
    state.hits = 0;
    state.misses = 0;
}

} // namespace fmore::core
