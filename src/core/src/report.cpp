#include "fmore/core/report.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fmore::core {

TablePrinter::TablePrinter(std::ostream& out, std::vector<std::string> headers,
                           std::size_t column_width)
    : out_(out), columns_(headers.size()), width_(column_width) {
    if (columns_ == 0) throw std::invalid_argument("TablePrinter: no columns");
    row(headers);
    std::vector<std::string> rule(columns_);
    for (std::string& cell : rule) cell = std::string(width_ - 2, '-');
    row(rule);
}

void TablePrinter::row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_)
        throw std::invalid_argument("TablePrinter: wrong cell count");
    for (const std::string& cell : cells) {
        out_ << std::setw(static_cast<int>(width_)) << cell;
    }
    out_ << '\n';
}

void TablePrinter::row(const std::vector<double>& cells, int precision) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (const double value : cells) text.push_back(fixed(value, precision));
    row(text);
}

std::string fixed(double value, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

std::string percent(double fraction, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
    return ss.str();
}

void write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& columns) {
    if (headers.size() != columns.size())
        throw std::invalid_argument("write_csv: header/column mismatch");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("write_csv: cannot open " + path);
    for (std::size_t c = 0; c < headers.size(); ++c) {
        file << headers[c] << (c + 1 == headers.size() ? '\n' : ',');
    }
    std::size_t rows = 0;
    for (const auto& col : columns) rows = std::max(rows, col.size());
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (r < columns[c].size()) file << columns[c][r];
            file << (c + 1 == columns.size() ? '\n' : ',');
        }
    }
}

} // namespace fmore::core
