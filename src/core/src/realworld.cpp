#include "fmore/core/realworld.hpp"

#include <sstream>
#include <stdexcept>

#include "checkpoint_hooks.hpp"
#include "fmore/core/experiment.hpp"
#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/async_coordinator.hpp"
#include "fmore/fl/policy.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/auction_selector.hpp"
#include "fmore/mec/sharded_selector.hpp"
#include "fmore/mec/streaming_selector.hpp"
#include "fmore/ml/model_zoo.hpp"
#include "fmore/ml/partition.hpp"
#include "fmore/ml/synthetic.hpp"
#include "fmore/stats/normalizer.hpp"

namespace fmore::core {

namespace {

/// Every input of the testbed's equilibrium tabulation, hex-exact. Note
/// `data_cap` (the largest shard) is trial-dependent, so cross-trial hits
/// happen only when the partition landed on the same cap — unlike the
/// simulator the testbed key is not purely config-derived.
std::string equilibrium_cache_key(const RealWorldConfig& config, double data_cap) {
    std::ostringstream key;
    key << std::hexfloat << "testbed|alpha=" << config.alpha_cpu << ','
        << config.alpha_bandwidth << ',' << config.alpha_data
        << "|cpu_hi=" << config.cpu_hi << "|bandwidth_hi=" << config.bandwidth_hi
        << "|data_cap=" << data_cap << "|theta=" << config.theta_lo << ','
        << config.theta_hi << "|N=" << config.num_nodes << "|K=" << config.winners
        << "|win_model=" << static_cast<int>(config.win_model);
    return key.str();
}

} // namespace

RealWorldTrial::RealWorldTrial(const RealWorldConfig& config, std::size_t trial_index)
    : config_(config),
      trial_index_(trial_index),
      trial_seed_(config.seed + 7000003ULL * (trial_index + 1)) {
    stats::Rng rng(trial_seed_);

    // The testbed trains CIFAR-10 (Fig. 12); the proxy dataset mirrors it.
    stats::Rng data_rng = rng.split();
    const std::size_t total = config_.train_samples + config_.test_samples;
    ml::Dataset pool;
    if (config_.dataset == DatasetKind::hpnews) {
        pool = ml::make_synthetic_text(ml::hpnews_spec(total), data_rng);
    } else {
        // Harder than the simulator's CIFAR proxy: the real testbed trains
        // actual CIFAR-10, which stays data-hungry for all 20 rounds (the
        // paper's RandFL only reaches ~41%). The extra noise/overlap keeps
        // the proxy in that regime so per-round data volume — what FMore
        // buys — remains the binding constraint.
        ml::ImageDatasetSpec spec = ml::cifar10_spec(total);
        spec.noise = 0.85;
        spec.prototype_overlap = 0.35;
        pool = ml::make_synthetic_images(spec, data_rng);
    }
    const std::size_t vol = pool.sample_volume();
    train_.sample_shape = pool.sample_shape;
    train_.num_classes = pool.num_classes;
    train_.features.assign(
        pool.features.begin(),
        pool.features.begin() + static_cast<std::ptrdiff_t>(config_.train_samples * vol));
    train_.labels.assign(pool.labels.begin(),
                         pool.labels.begin()
                             + static_cast<std::ptrdiff_t>(config_.train_samples));
    test_.sample_shape = pool.sample_shape;
    test_.num_classes = pool.num_classes;
    test_.features.assign(
        pool.features.begin() + static_cast<std::ptrdiff_t>(config_.train_samples * vol),
        pool.features.end());
    test_.labels.assign(pool.labels.begin()
                            + static_cast<std::ptrdiff_t>(config_.train_samples),
                        pool.labels.end());

    // Unlike the simulator, the testbed is NOT label-sharded: Section V.A
    // only describes non-IID splits for the simulator, while the testbed
    // "allocates data size over the range [2000, 10000]". Nodes therefore
    // hold IID subsets of heterogeneous SIZE — per-round data volume, which
    // FMore's scoring buys, is the binding resource (the paper's testbed
    // accuracy story), not label coverage.
    stats::Rng part_rng = rng.split();
    shards_ = ml::partition_iid(train_, config_.num_nodes, part_rng);
    ml::resize_shards(shards_, train_, config_.data_lo, config_.data_hi, part_rng);
    std::size_t max_shard = 1;
    for (const auto& shard : shards_) {
        max_shard = std::max(max_shard, shard.indices.size());
    }
    data_cap_ = static_cast<double>(max_shard);

    theta_dist_ = std::make_unique<stats::UniformDistribution>(config_.theta_lo,
                                                               config_.theta_hi);

    solved_ = EquilibriumCache::instance().get_or_solve(
        equilibrium_cache_key(config_, data_cap_), [this] {
            // Section V.A testbed scoring:
            // S = 0.4 q_cpu + 0.3 q_bw + 0.3 q_data - p with each dimension
            // min-max normalized over its advertised range.
            std::vector<stats::MinMaxNormalizer> norms;
            norms.emplace_back(0.0, config_.cpu_hi);
            norms.emplace_back(0.0, config_.bandwidth_hi);
            norms.emplace_back(0.0, data_cap_);
            auto scoring = std::make_unique<auction::AdditiveScoring>(
                std::vector<double>{config_.alpha_cpu, config_.alpha_bandwidth,
                                    config_.alpha_data},
                norms);

            // Costs are quoted per normalized unit; convert to raw-resource
            // prices. Each beta is kept below alpha_d / theta_hi so
            // providing every resource stays profitable for all types —
            // otherwise high-theta nodes would bid the data floor and train
            // on nothing.
            auto cost = std::make_unique<auction::AdditiveCost>(std::vector<double>{
                0.15 / config_.cpu_hi, 0.10 / config_.bandwidth_hi, 0.20 / data_cap_});
            auto theta = std::make_unique<stats::UniformDistribution>(config_.theta_lo,
                                                                      config_.theta_hi);

            auction::EquilibriumConfig eq;
            eq.num_bidders = config_.num_nodes;
            eq.num_winners = config_.winners;
            eq.win_model = config_.win_model;
            const auction::EquilibriumSolver solver(
                *scoring, *cost, *theta, {0.25, 1.0, 1.0},
                {config_.cpu_hi, config_.bandwidth_hi, data_cap_}, eq);
            auction::EquilibriumStrategy strategy = solver.solve();
            return std::make_shared<const SolvedEquilibrium>(
                std::move(scoring), std::move(cost), std::move(theta),
                std::move(strategy));
        });

    rebuild_population();
}

namespace {

RealWorldConfig validated_config(const ExperimentSpec& spec) {
    validate_or_throw(spec);
    return to_realworld_config(spec);
}

} // namespace

RealWorldTrial::RealWorldTrial(const ExperimentSpec& spec, std::size_t trial_index)
    : RealWorldTrial(validated_config(spec), trial_index) {}

std::vector<double> RealWorldTrial::bid_latency_table() const {
    mec::ClusterTimeConfig tc;
    tc.model_bytes = config_.model_bytes;
    tc.seconds_per_sample_core = config_.seconds_per_sample_core;
    tc.round_overhead_s = config_.round_overhead_s;
    tc.latency_spread = config_.latency_spread;
    tc.dropout_prob = config_.dropout_prob;
    // Same seed as run()'s wall-clock model, so a fresh generator here
    // reproduces the exact straggler factors without touching its stream.
    stats::Rng factor_rng(trial_seed_ ^ 0x57a991e2ULL);
    const mec::ClusterTimeModel time_model(*population_, tc, /*auction_round=*/true,
                                           factor_rng);
    std::vector<double> latencies(config_.num_nodes);
    for (std::size_t i = 0; i < latencies.size(); ++i)
        latencies[i] = time_model.latency_factor(i) * tc.auction_overhead_s;
    return latencies;
}

void RealWorldTrial::rebuild_population() {
    stats::Rng pop_rng(trial_seed_ ^ 0xabcdef12345ULL);
    mec::PopulationSpec spec;
    spec.cpu_lo = config_.cpu_lo;
    spec.cpu_hi = config_.cpu_hi;
    spec.bandwidth_lo = config_.bandwidth_lo;
    spec.bandwidth_hi = config_.bandwidth_hi;
    spec.dynamics.resource_jitter = config_.resource_jitter;
    spec.dynamics.theta_jitter = config_.theta_jitter;
    population_ = std::make_unique<mec::MecPopulation>(shards_, train_.num_classes,
                                                       *theta_dist_, spec, pop_rng);
}

ml::Model RealWorldTrial::make_model(std::uint64_t seed) const {
    if (config_.dataset == DatasetKind::hpnews) {
        const ml::TextDatasetSpec text = ml::hpnews_spec(1);
        return ml::make_lstm_classifier(
            ml::TextSpec{text.vocab, text.seq_len, train_.num_classes}, seed);
    }
    return ml::make_cnn_deep(ml::ImageSpec{3, 14, 14, train_.num_classes}, seed);
}

fl::RunResult RealWorldTrial::run(const std::string& policy_name) {
    return run_resumable(policy_name, nullptr);
}

fl::RunResult RealWorldTrial::run_resumable(const std::string& policy_name,
                                            const RunCheckpoint* resume_from) {
    rebuild_population();
    ml::Model model = make_model(trial_seed_ ^ 0x5151ULL);

    fl::CoordinatorConfig cc;
    cc.rounds = config_.rounds;
    cc.winners_per_round = config_.winners;
    cc.local_epochs = config_.local_epochs;
    cc.batch_size = config_.batch_size;
    cc.learning_rate = config_.learning_rate;
    cc.eval_cap = config_.eval_cap;

    fl::PolicyContext context;
    context.num_clients = config_.num_nodes;
    context.winners = config_.winners;
    context.trial_seed = trial_seed_;
    context.make_auction_selector =
        [this](const fl::PolicyContext& ctx) -> std::unique_ptr<fl::ClientSelector> {
        auction::WinnerDeterminationConfig wd;
        wd.mechanism = config_.mechanism;
        wd.num_winners = config_.winners;
        wd.payment_rule = config_.payment_rule;
        wd.psi = ctx.probabilistic_acceptance ? config_.psi : 1.0;
        if (ctx.probabilistic_acceptance) wd.psi_per_node = config_.psi_per_node;
        wd.budget = config_.budget;
        wd.full_ranking = config_.full_scoreboard;
        wd.latency_discount = config_.latency_discount;
        if (wd.latency_discount > 0.0 || config_.mechanism == "latency_discounted")
            wd.expected_latency_s = bid_latency_table();
        if (config_.streaming) {
            // Streaming market: bids trickle in on the virtual clock and the
            // round closes on deadline/quorum; the closed set ranks exactly
            // as the batch selector would (streaming_equivalence_test).
            mec::StreamingRoundConfig sc;
            sc.deadline_s = config_.round_deadline_s;
            sc.quorum = config_.min_updates;
            sc.process = config_.arrival_process;
            sc.arrival_rate_hz = config_.arrival_rate_hz;
            sc.bid_latencies_s = bid_latency_table();
            // Sharded streaming closes through the head-merge composition;
            // winners stay bit-identical to the monolithic close.
            sc.shards = config_.market_shards;
            sc.adaptive_quorum = config_.adaptive_quorum;
            return std::make_unique<mec::StreamingAuctionSelector>(
                *population_, *solved_->scoring, solved_->strategy, wd,
                mec::QualityLayout{mec::ResourceDim::cpu, mec::ResourceDim::bandwidth,
                                   mec::ResourceDim::data_size},
                /*data_dimension=*/2, std::move(sc));
        }
        if (config_.market_shards > 1) {
            // Sharded market: same winners, payments and metrics as the
            // monolithic selector by construction (shard_equivalence_test).
            auto sharded = std::make_unique<mec::ShardedAuctionSelector>(
                *population_, *solved_->scoring, solved_->strategy, wd,
                mec::QualityLayout{mec::ResourceDim::cpu, mec::ResourceDim::bandwidth,
                                   mec::ResourceDim::data_size},
                /*data_dimension=*/2, config_.market_shards);
            sharded->set_shard_timeout(config_.shard_timeout_s);
            if (!config_.fault_plan.empty()) {
                // Coordinator-only plans (ckill/ckill_mid) leave the shard
                // workers alone, so the selector runs exactly as without a
                // plan — what the crash harness's uninterrupted twin needs.
                const util::FaultInjector faults =
                    util::FaultInjector::from_spec(config_.fault_plan);
                if (faults.has_shard_faults()) sharded->set_fault_injector(faults);
            }
            if (config_.shard_quorum > 0)
                sharded->set_min_live_shards(config_.shard_quorum);
            return sharded;
        }
        return std::make_unique<mec::AuctionSelector>(
            *population_, *solved_->scoring, solved_->strategy, wd,
            mec::cpu_bandwidth_data_extractor(), /*data_dimension=*/2);
    };

    const std::unique_ptr<fl::SelectionPolicy> policy = fl::make_policy(policy_name);
    const std::unique_ptr<fl::ClientSelector> selector = policy->make_selector(context);

    // The wall-clock model: auction-selected rounds ship only the purchased
    // data volume; baseline rounds ship whole shards. Straggler factors are
    // drawn from a fixed trial stream so every policy faces the same slow
    // nodes.
    mec::ClusterTimeConfig tc;
    tc.model_bytes = config_.model_bytes;
    tc.seconds_per_sample_core = config_.seconds_per_sample_core;
    tc.round_overhead_s = config_.round_overhead_s;
    tc.latency_spread = config_.latency_spread;
    tc.dropout_prob = config_.dropout_prob;
    const bool is_auction = selector->contracts_data_volume();
    stats::Rng factor_rng(trial_seed_ ^ 0x57a991e2ULL);
    const mec::ClusterTimeModel time_model(*population_, tc, is_auction, factor_rng);

    stats::Rng run_rng(trial_seed_ ^ 0xf00dULL);

    // Durable-run harness: restore checkpointed state (the selector, time
    // model and model weights were just rebuilt exactly as a fresh run
    // builds them, so restored state + identical construction = identical
    // draws), then arrange checkpoint writes on the configured cadence.
    fl::RunControl control;
    if (resume_from) {
        population_->restore(resume_from->population);
        selector->restore_checkpoint(detail::make_selector_checkpoint(*resume_from));
        detail::restore_rng(run_rng, resume_from->rng_state);
        control = detail::make_resume_control(*resume_from);
    }
    detail::CheckpointWriter writer;
    // One-shot coordinator-kill: a resumed run never re-arms it (see the
    // twin comment in simulation.cpp — recovery must converge).
    if (!resume_from && !config_.fault_plan.empty()) {
        const util::FaultInjector faults =
            util::FaultInjector::from_spec(config_.fault_plan);
        writer.ckill_round = faults.coordinator_kill_round();
        writer.ckill_mid_round = faults.coordinator_kill_mid_write_round();
    }
    const bool durable = config_.checkpoint_every > 0 || writer.ckill_round > 0
                         || writer.ckill_mid_round > 0;
    if (durable) {
        writer.every = config_.checkpoint_every;
        writer.dir = checkpoint_run_dir(config_.checkpoint_dir, policy_name,
                                        trial_index_);
        writer.keep = config_.checkpoint_keep;
        writer.total_rounds = config_.rounds;
        writer.spec_text = to_text(from_realworld_config(config_));
        writer.policy = policy_name;
        writer.trial_index = trial_index_;
        writer.run_rng = &run_rng;
        writer.population = population_.get();
        writer.selector = selector.get();
        control.on_round = std::cref(writer);
    }
    const fl::RunControl* control_ptr = (resume_from || durable) ? &control : nullptr;

    fl::RunResult result;
    if (config_.round_mode == fl::RoundMode::sync) {
        fl::Coordinator coordinator(model, train_, test_, shards_, cc);
        result = coordinator.run(*selector, run_rng, time_model.as_time_model(),
                                 control_ptr);
    } else {
        fl::AsyncCoordinatorConfig ac;
        ac.mode = config_.round_mode;
        ac.min_updates = config_.min_updates;
        // Deadlines are a semi_sync concept; the spec layer keeps the knob
        // mode-agnostic (sweepable), the strict engine API does not.
        ac.round_deadline_s =
            config_.round_mode == fl::RoundMode::semi_sync ? config_.round_deadline_s
                                                           : 0.0;
        ac.staleness_alpha = config_.staleness_alpha;
        ac.max_staleness = config_.max_staleness;
        ac.round_overhead_s = config_.round_overhead_s;
        ac.auction_overhead_s = is_auction ? tc.auction_overhead_s : 0.0;
        fl::AsyncCoordinator async_coordinator(model, train_, test_, shards_, cc, ac);
        result = async_coordinator.run_async(*selector, run_rng,
                                             time_model.as_client_time_model(),
                                             control_ptr);
    }
    if (!result.rounds.empty()
        && !result.rounds.back().selection.all_scores.empty()) {
        last_all_scores_ = result.rounds.back().selection.all_scores;
    }
    return result;
}

fl::RunResult RealWorldTrial::run(Strategy strategy) {
    return run(to_policy_name(strategy));
}

} // namespace fmore::core
