#pragma once

/// @file checkpoint_hooks.hpp (internal to fmore_core)
/// Shared plumbing between SimulationTrial and RealWorldTrial for durable
/// runs: RNG state (de)serialization, RunControl seeding from a loaded
/// core::RunCheckpoint, and the on_round hook that writes checkpoints on
/// the timing.checkpoint_every cadence — and fires the deterministic
/// coordinator-kill faults of the crash-recovery harness.

#include <csignal>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fmore/core/run_checkpoint.hpp"
#include "fmore/fl/run_state.hpp"
#include "fmore/fl/selection.hpp"
#include "fmore/mec/population.hpp"
#include "fmore/stats/rng.hpp"
#include "fmore/util/snapshot.hpp"

namespace fmore::core::detail {

/// mt19937_64 state in its stream text form — exact by the standard.
inline std::string serialize_rng(stats::Rng& rng) {
    std::ostringstream out;
    out << rng.engine();
    return out.str();
}

inline void restore_rng(stats::Rng& rng, const std::string& state) {
    std::istringstream in(state);
    in >> rng.engine();
    if (in.fail())
        throw util::SnapshotError(
            "checkpoint rng_state does not parse as mt19937_64 state text");
}

/// Selector-side restore state. The adaptive-quorum replay lives on the
/// checkpointed metrics tape: every streaming round recorded its close
/// reason and close time, which is exactly the observation sequence the
/// controller is a pure function of.
inline fl::SelectorCheckpoint make_selector_checkpoint(const RunCheckpoint& ckpt) {
    fl::SelectorCheckpoint sel;
    sel.banned_nodes = ckpt.banned_nodes;
    for (const fl::RoundMetrics& round : ckpt.rounds)
        if (!round.selection.close_reason.empty())
            sel.close_replay.emplace_back(round.selection.close_reason,
                                          round.selection.close_time_s);
    return sel;
}

/// Prior-tape / model / async-carry seeding for a resumed run. The caller
/// wires `on_round` separately.
inline fl::RunControl make_resume_control(const RunCheckpoint& ckpt) {
    fl::RunControl control;
    control.start_round = ckpt.completed_rounds + 1;
    control.prior_rounds = ckpt.rounds;
    control.global = ckpt.model_params;
    control.flight = ckpt.flight;
    control.next_seq = ckpt.next_seq;
    return control;
}

/// The on_round hook: assemble and atomically write a checkpoint every
/// `every` rounds (plus the final round, so a finished run always leaves a
/// complete checkpoint), prune to the newest `keep`, then deliver any
/// scheduled coordinator-kill fault. A kill round forces a save first —
/// "SIGKILL right after round R's checkpoint saved" is the contract the
/// crash harness tests — and `ckill_mid` kills from inside the write via
/// the mid_write hook, leaving a torn `.tmp` behind.
///
/// Captures references owned by the enclosing run; must not outlive it.
struct CheckpointWriter {
    std::size_t every = 0;
    std::string dir; ///< per-(policy, trial) run directory
    std::size_t keep = 3;
    std::size_t total_rounds = 0;
    std::size_t ckill_round = 0;
    std::size_t ckill_mid_round = 0;
    std::string spec_text;
    std::string policy;
    std::size_t trial_index = 0;
    stats::Rng* run_rng = nullptr;
    mec::MecPopulation* population = nullptr;
    fl::ClientSelector* selector = nullptr;

    void operator()(std::size_t round, const std::vector<fl::RoundMetrics>& rounds,
                    const std::vector<float>& global,
                    const std::vector<fl::InFlightUpdate>& flight,
                    std::uint64_t next_seq) const {
        const bool kill_now = round == ckill_round && ckill_round > 0;
        const bool kill_mid = round == ckill_mid_round && ckill_mid_round > 0;
        const bool save_now =
            every > 0
            && (round % every == 0 || round == total_rounds || kill_now || kill_mid);
        if (save_now) {
            RunCheckpoint ckpt;
            ckpt.spec_text = spec_text;
            ckpt.policy = policy;
            ckpt.trial_index = trial_index;
            ckpt.completed_rounds = round;
            ckpt.rng_state = serialize_rng(*run_rng);
            ckpt.model_params = global;
            ckpt.population = population->snapshot();
            fl::SelectorCheckpoint sel;
            selector->save_checkpoint(sel);
            ckpt.banned_nodes = std::move(sel.banned_nodes);
            ckpt.rounds = rounds;
            ckpt.flight = flight;
            ckpt.next_seq = next_seq;
            ensure_checkpoint_dir(dir);
            save_checkpoint(ckpt, dir + "/" + checkpoint_filename(round),
                            kill_mid
                                ? std::function<void()>([] { std::raise(SIGKILL); })
                                : std::function<void()>());
            prune_checkpoints(dir, keep);
        }
        if (kill_now) std::raise(SIGKILL);
    }
};

} // namespace fmore::core::detail
