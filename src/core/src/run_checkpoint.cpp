#include "fmore/core/run_checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "fmore/util/snapshot.hpp"

namespace fmore::core {

namespace fs = std::filesystem;
using util::ByteReader;
using util::ByteWriter;
using util::SnapshotError;
using util::SnapshotReader;
using util::SnapshotWriter;

namespace {

// Section tags. New sections get new tags; existing payload layouts are
// frozen — change them only with a SnapshotWriter::kVersion bump.
constexpr std::uint32_t kSecMeta = 1;        // spec/policy/trial/rounds done
constexpr std::uint32_t kSecRng = 2;         // run RNG stream state
constexpr std::uint32_t kSecModel = 3;       // global parameters
constexpr std::uint32_t kSecPopulation = 4;  // columns + salt history
constexpr std::uint32_t kSecBlacklist = 5;   // banned node ids
constexpr std::uint32_t kSecMetrics = 6;     // full per-round tape
constexpr std::uint32_t kSecFlight = 7;      // async in-flight carry

void put_selection(ByteWriter& w, const fl::SelectionRecord& sel) {
    w.put_u64(sel.selected.size());
    for (const fl::SelectedClient& c : sel.selected) {
        w.put_u64(c.client);
        w.put_f64(c.payment);
        w.put_f64(c.score);
        w.put_u32(c.train_samples.has_value() ? 1 : 0);
        w.put_u64(c.train_samples.value_or(0));
    }
    w.put_f64_vec(sel.all_scores);
    w.put_f64_vec(sel.scores_by_node);
    std::vector<std::uint64_t> dropped(sel.dropped_shards.begin(),
                                       sel.dropped_shards.end());
    w.put_u64_vec(dropped);
    w.put_u64(sel.shard_health.live_shards);
    w.put_u64(sel.shard_health.corrupt_frames);
    w.put_u64(sel.shard_health.frame_retries);
    w.put_u64(sel.shard_health.evictions);
    w.put_u64(sel.shard_health.respawns);
    w.put_str(sel.close_reason);
    w.put_f64(sel.close_time_s);
    w.put_u64(sel.arrived_bids);
    w.put_u64(sel.bid_quorum);
}

fl::SelectionRecord get_selection(ByteReader& r) {
    fl::SelectionRecord sel;
    const std::uint64_t n = r.get_u64();
    sel.selected.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        fl::SelectedClient c;
        c.client = r.get_u64();
        c.payment = r.get_f64();
        c.score = r.get_f64();
        const bool has_samples = r.get_u32() != 0;
        const std::uint64_t samples = r.get_u64();
        if (has_samples) c.train_samples = samples;
        sel.selected.push_back(c);
    }
    sel.all_scores = r.get_f64_vec();
    sel.scores_by_node = r.get_f64_vec();
    for (std::uint64_t shard : r.get_u64_vec())
        sel.dropped_shards.push_back(static_cast<std::size_t>(shard));
    sel.shard_health.live_shards = r.get_u64();
    sel.shard_health.corrupt_frames = r.get_u64();
    sel.shard_health.frame_retries = r.get_u64();
    sel.shard_health.evictions = r.get_u64();
    sel.shard_health.respawns = r.get_u64();
    sel.close_reason = r.get_str();
    sel.close_time_s = r.get_f64();
    sel.arrived_bids = r.get_u64();
    sel.bid_quorum = r.get_u64();
    return sel;
}

void put_round(ByteWriter& w, const fl::RoundMetrics& m) {
    w.put_u64(m.round);
    w.put_f64(m.test_accuracy);
    w.put_f64(m.test_loss);
    w.put_f64(m.train_loss);
    w.put_f64(m.mean_winner_payment);
    w.put_f64(m.mean_winner_score);
    w.put_f64(m.round_seconds);
    w.put_u64(m.aggregated_updates);
    w.put_f64(m.mean_staleness);
    w.put_u64(m.dropped_shards);
    put_selection(w, m.selection);
}

fl::RoundMetrics get_round(ByteReader& r) {
    fl::RoundMetrics m;
    m.round = r.get_u64();
    m.test_accuracy = r.get_f64();
    m.test_loss = r.get_f64();
    m.train_loss = r.get_f64();
    m.mean_winner_payment = r.get_f64();
    m.mean_winner_score = r.get_f64();
    m.round_seconds = r.get_f64();
    m.aggregated_updates = r.get_u64();
    m.mean_staleness = r.get_f64();
    m.dropped_shards = r.get_u64();
    m.selection = get_selection(r);
    return m;
}

/// Round index encoded in a checkpoint filename, or nullopt for files the
/// retention/resume scans should ignore.
std::optional<std::size_t> round_of(const std::string& filename) {
    constexpr const char* prefix = "ckpt_round_";
    constexpr const char* suffix = ".fmsnap";
    if (filename.size() <= std::strlen(prefix) + std::strlen(suffix)) return {};
    if (filename.rfind(prefix, 0) != 0) return {};
    if (filename.size() < std::strlen(suffix)
        || filename.compare(filename.size() - std::strlen(suffix),
                            std::strlen(suffix), suffix)
               != 0)
        return {};
    const std::string digits = filename.substr(
        std::strlen(prefix),
        filename.size() - std::strlen(prefix) - std::strlen(suffix));
    if (digits.empty()
        || digits.find_first_not_of("0123456789") != std::string::npos)
        return {};
    return static_cast<std::size_t>(std::stoull(digits));
}

/// (round, path) for every well-named checkpoint file in `dir`,
/// round-descending. Missing directory reads as empty.
std::vector<std::pair<std::size_t, std::string>>
list_checkpoints(const std::string& dir) {
    std::vector<std::pair<std::size_t, std::string>> found;
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::optional<std::size_t> round =
            round_of(entry.path().filename().string());
        if (round) found.emplace_back(*round, entry.path().string());
    }
    std::sort(found.begin(), found.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    return found;
}

} // namespace

std::string checkpoint_filename(std::size_t round) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "ckpt_round_%06zu.fmsnap", round);
    return buf;
}

std::string checkpoint_run_dir(const std::string& base, const std::string& policy,
                               std::size_t trial_index) {
    return base + "/" + policy + "-t" + std::to_string(trial_index);
}

void ensure_checkpoint_dir(const std::string& dir) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        throw SnapshotError("checkpoint: cannot create directory '" + dir
                            + "': " + ec.message());
}

void save_checkpoint(const RunCheckpoint& ckpt, const std::string& path,
                     const std::function<void()>& mid_write) {
    SnapshotWriter writer;
    {
        ByteWriter w;
        w.put_str(ckpt.spec_text);
        w.put_str(ckpt.policy);
        w.put_u64(ckpt.trial_index);
        w.put_u64(ckpt.completed_rounds);
        writer.add_section(kSecMeta, w.take());
    }
    {
        ByteWriter w;
        w.put_str(ckpt.rng_state);
        writer.add_section(kSecRng, w.take());
    }
    {
        ByteWriter w;
        w.put_f32_vec(ckpt.model_params);
        writer.add_section(kSecModel, w.take());
    }
    {
        ByteWriter w;
        w.put_u64(ckpt.population.node_offset);
        w.put_u64_vec(ckpt.population.salt_history);
        w.put_u64(ckpt.population.columns.size());
        for (const std::vector<double>& col : ckpt.population.columns)
            w.put_f64_vec(col);
        writer.add_section(kSecPopulation, w.take());
    }
    {
        ByteWriter w;
        w.put_u64_vec(ckpt.banned_nodes);
        writer.add_section(kSecBlacklist, w.take());
    }
    {
        ByteWriter w;
        w.put_u64(ckpt.rounds.size());
        for (const fl::RoundMetrics& m : ckpt.rounds) put_round(w, m);
        writer.add_section(kSecMetrics, w.take());
    }
    {
        ByteWriter w;
        w.put_u64(ckpt.next_seq);
        w.put_u64(ckpt.flight.size());
        for (const fl::InFlightUpdate& u : ckpt.flight) {
            w.put_u64(u.seq);
            w.put_u64(u.base_round);
            w.put_f64(u.weight);
            w.put_f64(u.arrival);
            w.put_u32(u.dropped ? 1 : 0);
            w.put_f32_vec(u.params);
            w.put_f64(u.stats.mean_loss);
            w.put_u64(u.stats.samples);
        }
        writer.add_section(kSecFlight, w.take());
    }
    writer.write_file(path, mid_write);
}

RunCheckpoint load_checkpoint(const std::string& path) {
    const SnapshotReader reader = SnapshotReader::from_file(path);
    RunCheckpoint ckpt;
    {
        ByteReader r = reader.open_section(kSecMeta);
        ckpt.spec_text = r.get_str();
        ckpt.policy = r.get_str();
        ckpt.trial_index = r.get_u64();
        ckpt.completed_rounds = r.get_u64();
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecRng);
        ckpt.rng_state = r.get_str();
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecModel);
        ckpt.model_params = r.get_f32_vec();
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecPopulation);
        ckpt.population.node_offset = r.get_u64();
        ckpt.population.salt_history = r.get_u64_vec();
        const std::uint64_t cols = r.get_u64();
        ckpt.population.columns.reserve(cols);
        for (std::uint64_t i = 0; i < cols; ++i)
            ckpt.population.columns.push_back(r.get_f64_vec());
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecBlacklist);
        ckpt.banned_nodes = r.get_u64_vec();
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecMetrics);
        const std::uint64_t rounds = r.get_u64();
        ckpt.rounds.reserve(rounds);
        for (std::uint64_t i = 0; i < rounds; ++i)
            ckpt.rounds.push_back(get_round(r));
        r.expect_end();
    }
    {
        ByteReader r = reader.open_section(kSecFlight);
        ckpt.next_seq = r.get_u64();
        const std::uint64_t entries = r.get_u64();
        ckpt.flight.reserve(entries);
        for (std::uint64_t i = 0; i < entries; ++i) {
            fl::InFlightUpdate u;
            u.seq = r.get_u64();
            u.base_round = r.get_u64();
            u.weight = r.get_f64();
            u.arrival = r.get_f64();
            u.dropped = r.get_u32() != 0;
            u.params = r.get_f32_vec();
            u.stats.mean_loss = r.get_f64();
            u.stats.samples = r.get_u64();
            ckpt.flight.push_back(std::move(u));
        }
        r.expect_end();
    }
    if (ckpt.completed_rounds != ckpt.rounds.size())
        throw SnapshotError("checkpoint: '" + path + "': completed_rounds = "
                            + std::to_string(ckpt.completed_rounds)
                            + " but the metrics tape holds "
                            + std::to_string(ckpt.rounds.size()) + " rounds");
    return ckpt;
}

std::optional<RunCheckpoint> find_latest_valid(const std::string& dir) {
    for (const auto& entry : list_checkpoints(dir)) {
        try {
            return load_checkpoint(entry.second);
        } catch (const SnapshotError&) {
            // Torn or corrupted — skip to the previous one, never consume.
        }
    }
    return std::nullopt;
}

void prune_checkpoints(const std::string& dir, std::size_t keep) {
    if (keep == 0) return;
    const auto found = list_checkpoints(dir);
    std::error_code ec;
    for (std::size_t i = keep; i < found.size(); ++i)
        fs::remove(found[i].second, ec);
    // Interrupted writes leave `.tmp` files the reader never looks at;
    // retention sweeps them so checkpoint dirs stay bounded.
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
    }
}

} // namespace fmore::core
